"""E8 — §4.5 Challenge 3: products used in combination.

Etisalat's box is a Blue Coat ProxySG whose filtering decisions come
from SmartFilter. Consequences the benchmark verifies:

- §3 identification sees Blue Coat in Etisalat's AS (the appliance);
- submitting to Blue Coat's database changes nothing (Table 3: 0/3);
- submitting the same kind of content to SmartFilter flips it to
  blocked — resolving the apparent contradiction.
"""

from __future__ import annotations

from repro import ConfirmationConfig, ConfirmationStudy, FullStudy, build_scenario
from repro.world.content import ContentClass


def _proxy_case(product_name: str, submit: int, total: int) -> ConfirmationConfig:
    return ConfirmationConfig(
        product_name=product_name,
        isp_name="etisalat",
        content_class=ContentClass.PROXY_ANONYMIZER,
        category_label="Proxy Avoidance"
        if product_name == "Blue Coat"
        else "Anonymizers",
        requested_category="Proxy Avoidance"
        if product_name == "Blue Coat"
        else "Anonymizers",
        total_domains=total,
        submit_count=submit,
    )


def test_stacked_deployment_resolves_contradiction(benchmark):
    def run_both():
        scenario = build_scenario()
        world = scenario.world
        bluecoat_study = ConfirmationStudy(
            world, scenario.bluecoat, scenario.hosting_asns[0]
        )
        bluecoat_result = bluecoat_study.run(_proxy_case("Blue Coat", 3, 6))
        smartfilter_study = ConfirmationStudy(
            world, scenario.smartfilter, scenario.hosting_asns[0]
        )
        smartfilter_result = smartfilter_study.run(
            _proxy_case("McAfee SmartFilter", 5, 10)
        )
        return scenario, bluecoat_result, smartfilter_result

    scenario, bluecoat_result, smartfilter_result = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    print(
        f"\nBlue Coat submissions:   {bluecoat_result.blocked_submitted}/"
        f"{len(bluecoat_result.submitted_outcomes)} blocked "
        f"(confirmed={bluecoat_result.confirmed})"
    )
    print(
        f"SmartFilter submissions: {smartfilter_result.blocked_submitted}/"
        f"{len(smartfilter_result.submitted_outcomes)} blocked "
        f"(confirmed={smartfilter_result.confirmed})"
    )

    # Blue Coat's database was updated (the vendor accepted the sites) —
    # yet nothing in Etisalat consults it.
    accepted = [
        s for s in bluecoat_result.submissions if s.status.value == "accepted"
    ]
    assert len(accepted) == 3
    assert bluecoat_result.blocked_submitted == 0
    assert not bluecoat_result.confirmed

    assert smartfilter_result.blocked_submitted == 5
    assert smartfilter_result.confirmed

    # The block pages testers saw are SmartFilter's, not Blue Coat's.
    vendors = smartfilter_result.detected_vendors
    assert vendors.get("McAfee SmartFilter", 0) >= 5
    assert "Blue Coat" not in vendors


def test_identification_sees_the_appliance(benchmark, session_scenario):
    report = benchmark.pedantic(
        FullStudy(session_scenario).run_identification, rounds=1, iterations=1
    )
    etisalat_installs = [
        inst for inst in report.installations if inst.asn == 5384
    ]
    products = {inst.product for inst in etisalat_installs}
    # The box advertises both surfaces: the ProxySG appliance and the
    # MWG engine living on it.
    assert "Blue Coat" in products
    assert "McAfee SmartFilter" in products

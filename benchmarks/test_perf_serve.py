"""Perf bench — the read-only serving API over a three-epoch store.

Measures requests/sec over real HTTP against a populated results store,
the read-through cache hit rate under a steady request mix, and the
cached-path speedup over cold rendering. The budget: serving a cached
response must be at least 5x faster than rendering it cold (segment
read + decompress + render), or the LRU is not earning its keep.
Numbers land in ``benchmarks/BENCH_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro.core.pipeline import run_full_study
from repro.serve import ResultsServer, StoreApi
from repro.store import ResultsStore

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")

#: Cached serving must beat cold rendering by at least this factor.
SPEEDUP_BUDGET = 5.0

#: Requests per latency sample; medians keep outliers from deciding.
LATENCY_ROUNDS = 50

HTTP_REQUESTS = 300


def _three_epoch_store(root: Path) -> ResultsStore:
    """One narrowed campaign, the full campaign, and a second seed."""
    from repro.products.registry import SMARTFILTER

    run_full_study(products=[SMARTFILTER], store_dir=root)
    run_full_study(store_dir=root)
    run_full_study(seed=2014, products=[SMARTFILTER], store_dir=root)
    return ResultsStore(root)


def _request_mix(store: ResultsStore):
    epoch = store.epoch_ids()[1]  # the full campaign's epoch
    return [
        "/epochs",
        f"/epochs/{epoch}",
        f"/epochs/{epoch}/records/installations",
        f"/epochs/{epoch}/records/confirmations",
        f"/epochs/{epoch}/tables/table3",
        f"/epochs/{epoch}/tables/table4",
        "/diff",
    ]


def _median_latency(api: StoreApi, targets) -> float:
    samples = []
    for _ in range(LATENCY_ROUNDS):
        for target in targets:
            started = time.perf_counter()
            response = api.handle(target)
            samples.append(time.perf_counter() - started)
            assert response.status == 200
    return statistics.median(samples)


def test_cached_serving_beats_cold_rendering(benchmark):
    root = Path(tempfile.mkdtemp(prefix="bench-serve-"))
    try:
        store = _three_epoch_store(root)
        targets = _request_mix(store)

        # Cold path: no LRU, every request renders from segments.
        cold_api = StoreApi(store, cache_size=0)
        # Cached path: default LRU, primed once.
        warm_api = StoreApi(store)
        for target in targets:
            warm_api.handle(target)

        cold_seconds = benchmark.pedantic(
            lambda: _median_latency(cold_api, targets),
            rounds=1,
            iterations=1,
        )
        warm_seconds = _median_latency(warm_api, targets)
        speedup = cold_seconds / warm_seconds

        total = warm_api.metrics.count("serve.cache.hits") + warm_api.metrics.count(
            "serve.cache.misses"
        )
        hit_rate = warm_api.metrics.count("serve.cache.hits") / total

        # Throughput over real HTTP, warm cache, one keep-alive
        # connection (protocol_version 1.1).
        with ResultsServer(store) as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            started = time.perf_counter()
            for index in range(HTTP_REQUESTS):
                connection.request("GET", targets[index % len(targets)])
                response = connection.getresponse()
                response.read()
                assert response.status == 200
            elapsed = time.perf_counter() - started
            connection.close()
        requests_per_second = HTTP_REQUESTS / elapsed

        payload = {
            "bench": "serve-cache-speedup",
            "epochs": len(store.epoch_ids()),
            "request_mix": len(targets),
            "latency_rounds": LATENCY_ROUNDS,
            "cold_median_seconds": round(cold_seconds, 6),
            "cached_median_seconds": round(warm_seconds, 6),
            "cached_speedup": round(speedup, 2),
            "speedup_budget": SPEEDUP_BUDGET,
            "cache_hit_rate": round(hit_rate, 4),
            "http_requests": HTTP_REQUESTS,
            "http_requests_per_second": round(requests_per_second, 1),
        }
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        print(
            f"\ncold {cold_seconds * 1e6:.0f}us   "
            f"cached {warm_seconds * 1e6:.0f}us   "
            f"speedup {speedup:.1f}x (budget {SPEEDUP_BUDGET:.0f}x)   "
            f"hit rate {hit_rate:.0%}   "
            f"{requests_per_second:.0f} req/s over HTTP"
        )
        assert speedup >= SPEEDUP_BUDGET, (
            f"cached path only {speedup:.1f}x faster than cold rendering; "
            f"budget is {SPEEDUP_BUDGET:.0f}x"
        )
        assert hit_rate > 0.9  # primed cache under a steady mix
    finally:
        shutil.rmtree(root, ignore_errors=True)

"""E5 — Table 3: the ten confirmation case studies.

The calibrated scenario must reproduce every published row exactly:
which cases confirm, which fail, and the blocked-count cells (5/5, 5/6,
6/6, 0/3, 0/5). Controls must stay accessible throughout (the causal
half of the methodology). Benchmarks a single full case study.
"""

from __future__ import annotations

from repro import ConfirmationStudy, build_scenario
from repro.analysis import PAPER_TABLE3, render_table3
from repro.core.pipeline import config_for_row


def test_table3_rows_match_paper(benchmark, full_report):
    report, _scenario = full_report

    def render():
        return render_table3(report.confirmations)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + table)

    assert len(report.confirmations) == len(PAPER_TABLE3)
    for row in PAPER_TABLE3:
        result = report.confirmation_for(row.product, row.isp_key, row.category)
        assert result is not None, f"missing case study: {row}"
        assert result.blocked_submitted == row.blocked, (
            f"{row.product}/{row.isp_key}/{row.category}: measured "
            f"{result.blocked_submitted}, paper {row.blocked}"
        )
        assert result.confirmed == row.confirmed
        assert len(result.submitted_outcomes) == row.submitted
        assert len(result.outcomes) == row.total
        # Held-out controls never flip within the study window.
        assert result.blocked_control == 0, (
            f"{row.isp_key}: {result.blocked_control} control domains blocked"
        )


def test_confirmed_pairs(benchmark, full_report):
    report, _scenario = full_report
    pairs = benchmark.pedantic(report.confirmed_pairs, rounds=1, iterations=1)
    assert ("McAfee SmartFilter", "bayanat") in pairs
    assert ("McAfee SmartFilter", "nournet") in pairs
    assert ("McAfee SmartFilter", "etisalat") in pairs
    assert ("Netsweeper", "du") in pairs
    assert ("Netsweeper", "ooredoo") in pairs
    assert ("Netsweeper", "yemennet") in pairs
    assert ("Blue Coat", "etisalat") not in pairs
    assert ("Blue Coat", "ooredoo") not in pairs


def test_single_case_study_runtime(benchmark):
    """Times one complete §4 case study on a fresh world."""
    row = PAPER_TABLE3[3]  # SmartFilter / Bayanat / 9-2012

    def run_case():
        scenario = build_scenario()
        study = ConfirmationStudy(
            scenario.world,
            scenario.products[row.product],
            scenario.hosting_asns[0],
        )
        return study.run(config_for_row(row))

    result = benchmark.pedantic(run_case, rounds=1, iterations=1)
    assert result.confirmed
    assert result.blocked_submitted == row.blocked

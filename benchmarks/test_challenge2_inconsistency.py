"""E6 — §4.4 Challenge 2: inconsistent blocking and the access queue.

Two effects complicate Netsweeper confirmation in Yemen:

1. **License fail-open flicker** — with offered load near the seat
   count, each (URL, minute) independently sees the filter on or off.
   Single-round retests undercount blocking; the paper's remedy
   (repeat the tests) recovers it. We quantify both.
2. **The access queue** — merely *pre-validating* domains queues them
   for categorization; with a fast queue, held-out control domains end
   up blocked, destroying the causal differential. This is why the
   Netsweeper variant skips pre-validation.
"""

from __future__ import annotations

from repro import build_scenario
from repro.measure.client import MeasurementClient
from repro.measure.domains import TestDomainFactory
from repro.net.url import Url
from repro.world.content import ContentClass
from repro.world.scenario import ScenarioConfig


def _flaky_scenario():
    return build_scenario(
        config=ScenarioConfig(
            yemen_license_seats=2000,
            yemen_license_mean=2000.0,
            yemen_license_stddev=400.0,
        )
    )


def test_single_round_undercounts_blocking(benchmark):
    """Known-blocked URLs flicker accessible under license overflow."""
    scenario = _flaky_scenario()
    world = scenario.world
    blocked_hosts = [
        domain
        for domain in sorted(world.websites)
        if world.websites[domain].content_class is ContentClass.PORNOGRAPHY
    ][:20]
    assert len(blocked_hosts) == 20
    client = MeasurementClient(world.vantage("yemennet"), world.lab_vantage())
    urls = [Url.for_host(host) for host in blocked_hosts]

    def measure_rounds():
        per_round = []
        ever_blocked = set()
        for _round in range(3):
            run = client.run_list(urls)
            blocked_now = {t.url.host for t in run.blocked_tests()}
            per_round.append(len(blocked_now))
            ever_blocked |= blocked_now
            world.advance_days(0.25)
        return per_round, ever_blocked

    per_round, ever_blocked = benchmark.pedantic(
        measure_rounds, rounds=1, iterations=1
    )
    print(f"\nper-round blocked counts: {per_round}; union {len(ever_blocked)}")

    # Flicker: every single round undercounts the union.
    assert max(per_round) < len(ever_blocked)
    # Repetition recovers substantially more of the blocked set than any
    # single round (the paper's "repeat the tests numerous times").
    assert len(ever_blocked) > max(per_round)
    assert len(ever_blocked) >= int(0.55 * len(urls))


def test_flicker_is_per_url_not_global(benchmark):
    """§4.4: 'some proxy URLs are accessible on runs where other proxy
    URLs are blocked' — the failure is per-flow, not a global outage."""
    scenario = _flaky_scenario()
    world = scenario.world
    blocked_hosts = [
        domain
        for domain in sorted(world.websites)
        if world.websites[domain].content_class is ContentClass.PORNOGRAPHY
    ][:30]
    client = MeasurementClient(world.vantage("yemennet"), world.lab_vantage())
    urls = [Url.for_host(host) for host in blocked_hosts]

    run = benchmark.pedantic(client.run_list, args=(urls,), rounds=1, iterations=1)
    blocked = run.blocked_count()
    # Mixed outcomes within one run: neither all blocked nor none.
    assert 0 < blocked < len(urls), (
        f"expected mixed outcomes, got {blocked}/{len(urls)}"
    )


def test_prevalidation_poisons_controls_under_fast_queue(benchmark):
    """Accessing a fresh proxy site queues it; with a fast queue the
    control half gets categorized and blocked without any submission —
    a false confirmation if the methodology pre-validated."""
    scenario = build_scenario(
        config=ScenarioConfig(netsweeper_queue_days=(1.0, 2.0))
    )
    world = scenario.world
    factory = TestDomainFactory(world, scenario.hosting_asns[0])
    domains = factory.create_batch(6, ContentClass.PROXY_ANONYMIZER)
    client = MeasurementClient(world.vantage("du"), world.lab_vantage())
    urls = [d.url for d in domains]

    def pre_validate_then_wait():
        first = client.run_list(urls)  # the forbidden pre-validation
        world.advance_days(5.0)
        second = client.run_list(urls)  # no submissions were ever made!
        return first, second

    first, second = benchmark.pedantic(
        pre_validate_then_wait, rounds=1, iterations=1
    )
    assert first.blocked_count() == 0, "fresh domains start accessible"
    assert second.blocked_count() >= 5, (
        "the access queue alone should have categorized and blocked "
        f"the sites; got {second.blocked_count()}/6"
    )

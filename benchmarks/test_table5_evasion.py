"""E10 — Table 5: evasion tactics vs pipeline stages.

Per tactic (on a fresh world each time), measure whether the Du
Netsweeper deployment is (a) located by keyword search, (b) validated
by WhatWeb, and (c) confirmed via submissions — reproducing Table 5's
qualitative matrix: hiding kills identification, header-stripping kills
validation, while confirmation survives both; submission screening only
works against unlaundered identities.
"""

from __future__ import annotations

from typing import Tuple

from repro import ConfirmationConfig, ConfirmationStudy, FullStudy, build_scenario
from repro.analysis import render_paper_table5, render_table5
from repro.core.evasion import (
    EvasionOutcome,
    hide_installation,
    mask_installation,
    screen_submissions,
)
from repro.products.submission import SubmitterIdentity
from repro.world.content import ContentClass

NAIVE = SubmitterIdentity(
    "research.tester@freemail.example", "203.0.113.50", via_proxy=False
)


def _stage_outcomes(scenario, submitter=None) -> Tuple[bool, bool, bool]:
    report = FullStudy(scenario).run_identification()
    du_installs = [i for i in report.by_product("Netsweeper") if i.asn == 15802]
    located = any(
        c.ip == scenario.deployments["du-netsweeper"].box_ip
        for c in report.candidates
    )
    validated = bool(du_installs)
    kwargs = {"submitter": submitter} if submitter else {}
    study = ConfirmationStudy(
        scenario.world, scenario.netsweeper, scenario.hosting_asns[0], **kwargs
    )
    result = study.run(
        ConfirmationConfig(
            product_name="Netsweeper",
            isp_name="du",
            content_class=ContentClass.PROXY_ANONYMIZER,
            category_label="Proxy anonymizer",
            total_domains=12,
            submit_count=6,
            pre_validate=False,
        )
    )
    return located, validated, result.confirmed


def test_table5_matrix(benchmark):
    def run_matrix():
        outcomes = []

        scenario = build_scenario()
        located, validated, confirmed = _stage_outcomes(scenario)
        outcomes.append(
            EvasionOutcome("baseline", located, validated, confirmed)
        )

        scenario = build_scenario()
        hide_installation(scenario.deployments["du-netsweeper"])
        located, validated, confirmed = _stage_outcomes(scenario)
        outcomes.append(
            EvasionOutcome(
                "hide box (§6.1)", located, validated, confirmed,
                "not externally visible",
            )
        )

        scenario = build_scenario()
        mask_installation(scenario.deployments["du-netsweeper"])
        located, validated, confirmed = _stage_outcomes(scenario)
        outcomes.append(
            EvasionOutcome(
                "strip headers/branding (§6.1)", located, validated, confirmed,
                "signatures removed",
            )
        )

        scenario = build_scenario()
        screen_submissions(
            scenario.deployments["du-netsweeper"],
            distrusted_emails=[NAIVE.email],
            distrusted_ips=[NAIVE.source_ip],
        )
        located, validated, confirmed = _stage_outcomes(scenario, NAIVE)
        outcomes.append(
            EvasionOutcome(
                "screen submissions, naive identity (§6.2)",
                located, validated, confirmed,
                "vendor recognizes submitter",
            )
        )

        scenario = build_scenario()
        screen_submissions(
            scenario.deployments["du-netsweeper"],
            distrusted_emails=[NAIVE.email],
            distrusted_ips=[NAIVE.source_ip],
        )
        located, validated, confirmed = _stage_outcomes(scenario)
        outcomes.append(
            EvasionOutcome(
                "screen submissions, laundered identity (§6.2)",
                located, validated, confirmed,
                "Tor/proxy + webmail",
            )
        )
        return outcomes

    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print("\nPaper Table 5 (claims):")
    print(render_paper_table5())
    print("\nMeasured:")
    print(render_table5(outcomes))

    baseline, hidden, masked, screened, laundered = outcomes
    assert baseline.located and baseline.validated and baseline.confirmed
    assert not hidden.located and not hidden.validated and hidden.confirmed
    assert not masked.validated and masked.confirmed
    assert not screened.confirmed, "screened naive submissions must fail"
    assert laundered.confirmed, "laundered identity must restore the method"

"""Extension bench — §2.2's legacy user-report channel vs. the §3 scan.

Quantifies the paper's motivation for the new methodology: the legacy
channel only sees networks where the project has contacts (MENA bias)
and goes blind the moment vendors strip block-page branding; the scan
pipeline is unaffected by either.
"""

from __future__ import annotations

from repro import FullStudy, build_scenario
from repro.core.legacy import run_legacy_identification

MENA_REPORTERS = ("etisalat", "du", "ooredoo", "bayanat", "nournet", "yemennet")


def test_legacy_channel_region_bias(benchmark, fresh_scenario):
    scenario = fresh_scenario

    legacy = benchmark.pedantic(
        run_legacy_identification,
        args=(scenario.world, list(MENA_REPORTERS)),
        kwargs={"urls_per_reporter": 20},
        rounds=1,
        iterations=1,
    )
    scan = FullStudy(scenario).run_identification()

    legacy_countries = set()
    for product_countries in legacy.country_map().values():
        legacy_countries |= product_countries
    scan_countries = set()
    for product_countries in scan.country_map().values():
        scan_countries |= product_countries

    print(f"\nlegacy channel countries: {sorted(legacy_countries)}")
    print(f"scan pipeline countries:  {sorted(scan_countries)}")

    # Legacy sees only reporter countries; the scan sees the globe.
    assert legacy_countries <= {"ae", "qa", "sa", "ye"}
    assert "us" in scan_countries and "ar" in scan_countries
    assert len(scan_countries) > 2 * len(legacy_countries)

    # Within its reach the legacy channel DOES attribute correctly.
    assert "ae" in legacy.countries("McAfee SmartFilter")
    assert "ye" in legacy.countries("Netsweeper")


def test_branding_removal_blinds_legacy_not_scan(benchmark):
    def run_both():
        scenario = build_scenario()
        # Vendor-wide cosmetic debranding of every Netsweeper block page.
        for box in scenario.deployments.values():
            if box.engine is not None and box.engine.vendor == "Netsweeper":
                box.policy.block_page.show_branding = False
        legacy = run_legacy_identification(
            scenario.world, list(MENA_REPORTERS), urls_per_reporter=20
        )
        scan = FullStudy(scenario).run_identification()
        return legacy, scan

    legacy, scan = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nunattributed legacy reports: {legacy.unattributed_reports}; "
        f"legacy Netsweeper countries: {sorted(legacy.countries('Netsweeper'))}; "
        f"scan Netsweeper countries: {sorted(scan.countries('Netsweeper'))}"
    )
    # Users still report blocks, but the analyst can no longer say whose.
    assert legacy.unattributed_reports > 0
    assert legacy.countries("Netsweeper") == set()
    # The scan pipeline fingerprints the admin surface, not block pages.
    assert scan.countries("Netsweeper") == {"ae", "qa", "us", "ye"}

"""E4 — §3.2's network-diversity narrative.

The US installations must span the kinds of organizations the paper
names: two Texas utilities on Websense, education networks on
Netsweeper, large ISPs on Netsweeper and Blue Coat, and a military
network (USAISC) on Blue Coat. Benchmarks the whois-backed aggregation.
"""

from __future__ import annotations

from repro import FullStudy
from repro.world.entities import OrgKind


def test_us_network_diversity(benchmark, fresh_scenario):
    study = FullStudy(fresh_scenario)
    report = benchmark.pedantic(study.run_identification, rounds=1, iterations=1)

    us_installs = report.installations_in("us")
    assert us_installs, "no US installations identified"

    print("\nUS installations by organization:")
    for inst in sorted(us_installs, key=lambda i: (i.product, i.org_name)):
        kind = inst.org_kind.value if inst.org_kind else "?"
        print(f"  {inst.product:20s} AS{inst.asn:<6d} {inst.org_name} [{kind}]")

    websense_kinds = report.org_kinds("Websense")
    assert websense_kinds.get(OrgKind.UTILITY, 0) == 2, (
        "paper: Websense in two Texas utilities"
    )

    netsweeper_us = [i for i in us_installs if i.product == "Netsweeper"]
    edu = [i for i in netsweeper_us if i.org_kind is OrgKind.EDUCATION]
    isp = [i for i in netsweeper_us if i.org_kind is OrgKind.ISP]
    assert len(edu) == 3, "paper: Netsweeper in WV/OK/MO education networks"
    assert len(isp) == 4, (
        "paper: Netsweeper in Global Crossing, AT&T, Verizon, BellSouth"
    )
    isp_names = {i.org_name for i in isp}
    assert {"Global Crossing", "AT&T Services"} <= isp_names

    bluecoat_us = [i for i in us_installs if i.product == "Blue Coat"]
    assert any(i.org_kind is OrgKind.MILITARY for i in bluecoat_us), (
        "paper: Blue Coat on a USAISC address"
    )
    assert sum(1 for i in bluecoat_us if i.org_kind is OrgKind.ISP) == 2, (
        "paper: Blue Coat in Comcast and Sprint"
    )

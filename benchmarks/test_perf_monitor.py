"""Perf bench — the always-on monitoring control plane.

Three numbers, written to ``benchmarks/BENCH_monitor.json``:

1. **Scheduler overhead per round**: the control-plane work the monitor
   adds around each confirmation round (priority-heap pop/reinsert,
   interval bookkeeping, alert-engine fold) versus the cost of the bare
   ConfirmationStudy round it wraps. Budget: < 5%. The control plane
   must never be the reason a round is slow.
2. **Durability overhead**: a full :class:`MonitorService` run (journal
   + per-round snapshot + store commits, ``checkpoint_every=1``) versus
   the bare store-backed ConfirmationStudy loop it supersedes
   (``LongitudinalMonitor`` with a store). Recorded for trend-watching;
   dominated by fsync/pickle at the toy round sizes used here, so it is
   bounded loosely rather than by the 5% budget.
3. **Kill-to-resumed recovery**: after a simulated kill mid-run, the
   wall-clock cost of resuming (journal replay + snapshot restore +
   re-running at most ``checkpoint_every`` rounds) must stay bounded.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro import build_scenario
from repro.cli import PAPER_TABLE3, config_for_row
from repro.core.monitor import LongitudinalMonitor
from repro.monitor import (
    AlertConfig,
    AlertEngine,
    MonitorConfig,
    MonitorService,
    MonitorTarget,
    PriorityScheduler,
    ScheduleConfig,
    SupervisorConfig,
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_monitor.json")

#: Median-of-N keeps a single noisy run from deciding the verdict.
REPEATS = 3
ROUNDS = 12

#: The control plane may add at most this fraction to a bare round.
SCHEDULER_BUDGET = 0.05
#: Resuming after a kill must complete well inside this bound.
RECOVERY_BUDGET_SECONDS = 10.0

_ROW = next(
    row for row in PAPER_TABLE3 if row.product == "McAfee SmartFilter"
)
_SCHEDULE = ScheduleConfig(
    base_interval_days=10.0, min_interval_days=2.0, max_interval_days=40.0
)


def _monitor_config() -> MonitorConfig:
    return MonitorConfig(
        schedule=_SCHEDULE,
        supervisor=SupervisorConfig(max_retries=1),
        alerts=AlertConfig(),
        checkpoint_every=1,
    )


def _timed_bare():
    """The PR-3 durable path: ConfirmationStudy loop + epoch commits."""
    config = config_for_row(_ROW)
    scenario = build_scenario()
    directory = Path(tempfile.mkdtemp(prefix="bench-monitor-bare-"))
    try:
        started = time.perf_counter()
        monitor = LongitudinalMonitor(
            scenario.world,
            scenario.products[config.product_name],
            scenario.hosting_asns[0],
            config,
            store=str(directory / "store"),
        )
        monitor.run(rounds=ROUNDS, interval_days=10)
        return time.perf_counter() - started
    finally:
        shutil.rmtree(directory)


def _timed_monitored():
    config = config_for_row(_ROW)
    directory = Path(tempfile.mkdtemp(prefix="bench-monitor-full-"))
    try:
        service = MonitorService(
            directory / "mon",
            directory / "store",
            scenario_factory=build_scenario,
            targets=[MonitorTarget(config)],
            config=_monitor_config(),
        )
        service.scenario  # build outside the clock: both paths pay it
        started = time.perf_counter()
        service.run(rounds=ROUNDS)
        return time.perf_counter() - started
    finally:
        shutil.rmtree(directory)


def _scheduler_seconds_per_round(reps: int = 200) -> float:
    """Pure control-plane cost of one round: heap pop, interval
    bookkeeping, alert fold. No I/O, no measurement."""
    started = time.perf_counter()
    for rep in range(reps):
        scheduler = PriorityScheduler(_SCHEDULE)
        scheduler.add(
            "pair",
            product="product",
            isp="isp",
            category="category",
            first_due_minutes=0,
        )
        engine = AlertEngine(AlertConfig())
        for index in range(ROUNDS):
            target = scheduler.pop()
            scheduler.record_success(
                target.key,
                confirmed=index % 3 == 0,  # include transition work
                now_minutes=target.next_due_minutes,
            )
            engine.observe(
                "product",
                "isp",
                confirmed=index % 3 == 0,
                round_index=index,
                at_minutes=target.next_due_minutes,
            )
    return (time.perf_counter() - started) / (reps * ROUNDS)


class _Kill(BaseException):
    pass


def _timed_recovery():
    """Kill the monitor mid-run (after the 7th journal record), then
    time the resumed run to completion."""
    config = config_for_row(_ROW)
    directory = Path(tempfile.mkdtemp(prefix="bench-monitor-recover-"))

    def kill(record):
        if record.seq >= 7:
            raise _Kill()

    try:
        victim = MonitorService(
            directory / "mon",
            directory / "store",
            scenario_factory=build_scenario,
            targets=[MonitorTarget(config)],
            config=_monitor_config(),
            after_write=kill,
        )
        try:
            victim.run(rounds=ROUNDS)
        except _Kill:
            pass
        survivor = MonitorService(
            directory / "mon",
            directory / "store",
            scenario_factory=build_scenario,
            targets=[MonitorTarget(config)],
            config=_monitor_config(),
        )
        started = time.perf_counter()
        summary = survivor.run(rounds=ROUNDS, resume=True)
        elapsed = time.perf_counter() - started
        assert summary.rounds_total == ROUNDS
        return elapsed
    finally:
        shutil.rmtree(directory)


def test_monitor_overhead_and_recovery(benchmark):
    bare_runs = [_timed_bare() for _ in range(REPEATS)]
    bare_seconds = statistics.median(bare_runs)
    bare_round_seconds = bare_seconds / ROUNDS

    monitored = benchmark.pedantic(
        lambda: [_timed_monitored() for _ in range(REPEATS)],
        rounds=1,
        iterations=1,
    )
    monitored_seconds = statistics.median(monitored)

    scheduler_round_seconds = _scheduler_seconds_per_round()
    scheduler_overhead = scheduler_round_seconds / bare_round_seconds
    durable_overhead = monitored_seconds / bare_seconds - 1.0

    recovery_seconds = min(_timed_recovery() for _ in range(REPEATS))

    payload = {
        "bench": "monitor-control-plane",
        "rounds": ROUNDS,
        "repeats": REPEATS,
        "bare_seconds": round(bare_seconds, 3),
        "monitored_seconds": round(monitored_seconds, 3),
        "scheduler_us_per_round": round(scheduler_round_seconds * 1e6, 1),
        "scheduler_overhead_fraction": round(scheduler_overhead, 5),
        "scheduler_budget": SCHEDULER_BUDGET,
        "durable_overhead_fraction": round(durable_overhead, 4),
        "recovery_seconds": round(recovery_seconds, 3),
        "recovery_budget_seconds": RECOVERY_BUDGET_SECONDS,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\nbare: {bare_seconds:.2f}s   monitored: {monitored_seconds:.2f}s   "
        f"scheduler {scheduler_round_seconds * 1e6:.0f}us/round "
        f"({scheduler_overhead:.2%} of a bare round, "
        f"budget {SCHEDULER_BUDGET:.0%})   "
        f"durability {durable_overhead:+.1%}   "
        f"recovery {recovery_seconds:.2f}s"
    )
    assert scheduler_overhead < SCHEDULER_BUDGET, (
        f"control plane cost {scheduler_overhead:.2%} of a bare round, "
        f"over the {SCHEDULER_BUDGET:.0%} budget"
    )
    # Durability I/O (fsync + snapshots) must stay in the same ballpark
    # as the measurement it protects, even at this bench's small round
    # size where fixed I/O costs weigh heaviest.
    assert durable_overhead < 1.0, (
        f"durable monitoring more than doubled the bare loop "
        f"({durable_overhead:+.1%})"
    )
    assert recovery_seconds < RECOVERY_BUDGET_SECONDS, (
        f"kill-to-resumed recovery took {recovery_seconds:.1f}s, over the "
        f"{RECOVERY_BUDGET_SECONDS:.0f}s bound"
    )

"""Perf bench — the search-based discovery workload.

Three numbers, written to ``benchmarks/BENCH_discover.json``:

1. **Index build time**: constructing the simulated search engine's
   inverted index over every woven page in the default world. One-time
   cost paid before the first query; must stay well under the crawl it
   serves.
2. **Crawl throughput (rounds/sec)**: a full discovery run on the
   default scenario — probe batches through the verdict engine, link
   and keyword extraction, ranked queries — divided by the number of
   rounds it took to converge. The crawl loop must never be the
   bottleneck next to the measurements it orchestrates.
3. **Coverage gain**: discovered blocked URLs over the static-list
   baseline. The whole point of the workload — anything under the 2x
   acceptance floor means discovery is not earning its keep.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro import build_scenario
from repro.discover import (
    CoverageReport,
    DiscoveryEngine,
    SearchIndex,
    static_baseline,
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_discover.json")

#: Median-of-N keeps a single noisy run from deciding the verdict.
REPEATS = 3
VANTAGE = "etisalat"

#: Index construction must stay a small fraction of a crawl.
INDEX_BUDGET_SECONDS = 5.0
#: The round loop's floor — well below this and the orchestration
#: overhead, not the probing, dominates the crawl.
ROUNDS_PER_SECOND_FLOOR = 2.0
#: The acceptance gate: discovery must at least double the static lists.
GAIN_FLOOR = 2.0


def _timed_index_build():
    world = build_scenario().world
    started = time.perf_counter()
    index = SearchIndex.build(world)
    elapsed = time.perf_counter() - started
    return elapsed, index.page_count


def _timed_crawl():
    scenario = build_scenario()
    world = scenario.world
    baseline = static_baseline(world, VANTAGE)
    engine = DiscoveryEngine(world, VANTAGE)
    started = time.perf_counter()
    result = engine.run(baseline[:5])
    elapsed = time.perf_counter() - started
    assert result.converged, "default scenario must converge"
    report = CoverageReport.evaluate(result, baseline)
    return elapsed, result, report


def test_discover_throughput_and_coverage(benchmark):
    index_runs = [_timed_index_build() for _ in range(REPEATS)]
    index_seconds = statistics.median(seconds for seconds, _ in index_runs)
    page_count = index_runs[0][1]

    crawls = benchmark.pedantic(
        lambda: [_timed_crawl() for _ in range(REPEATS)],
        rounds=1,
        iterations=1,
    )
    crawl_seconds = statistics.median(seconds for seconds, _, _ in crawls)
    _, result, report = crawls[0]
    rounds_per_second = len(result.rounds) / crawl_seconds

    payload = {
        "bench": "discover-workload",
        "repeats": REPEATS,
        "index_pages": page_count,
        "index_build_seconds": round(index_seconds, 3),
        "index_budget_seconds": INDEX_BUDGET_SECONDS,
        "crawl_seconds": round(crawl_seconds, 3),
        "rounds": len(result.rounds),
        "rounds_per_second": round(rounds_per_second, 2),
        "rounds_per_second_floor": ROUNDS_PER_SECOND_FLOOR,
        "probes": len(result.candidates),
        "static_blocked": report.static_blocked,
        "discovered_blocked": report.discovered_blocked,
        "coverage_gain": round(report.gain_ratio, 2),
        "gain_floor": GAIN_FLOOR,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\nindex: {index_seconds:.2f}s ({page_count} pages)   "
        f"crawl: {crawl_seconds:.2f}s over {len(result.rounds)} rounds "
        f"({rounds_per_second:.1f} rounds/s)   "
        f"coverage {report.static_blocked} static -> "
        f"{report.discovered_blocked} discovered "
        f"({report.gain_ratio:.1f}x, floor {GAIN_FLOOR:.0f}x)"
    )
    assert index_seconds < INDEX_BUDGET_SECONDS, (
        f"index build took {index_seconds:.1f}s, over the "
        f"{INDEX_BUDGET_SECONDS:.0f}s budget"
    )
    assert rounds_per_second > ROUNDS_PER_SECOND_FLOOR, (
        f"crawl managed only {rounds_per_second:.1f} rounds/s, under the "
        f"{ROUNDS_PER_SECOND_FLOOR:.0f}/s floor"
    )
    assert report.gain_ratio >= GAIN_FLOOR, (
        f"coverage gain {report.gain_ratio:.1f}x is under the "
        f"{GAIN_FLOOR:.0f}x acceptance floor"
    )


def test_bench_discover_json_schema():
    """The committed BENCH_discover.json must carry the full schema."""
    with open(BENCH_PATH, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["bench"] == "discover-workload"
    for key in (
        "index_build_seconds",
        "rounds_per_second",
        "coverage_gain",
        "rounds",
        "static_blocked",
        "discovered_blocked",
    ):
        assert key in payload, f"BENCH_discover.json missing {key}"
    assert payload["coverage_gain"] >= payload["gain_floor"]

"""Streaming scan engine benchmarks: speedup curve, throughput, memory.

The tentpole targets: a 1M-host identify pass at >= 6x speedup on 8
workers vs 1 (the scan is latency-bound — ``LATENCY`` models the
per-batch network round trip that parallel workers overlap), with peak
memory independent of host count (the population is generated lazily
and results stream straight to store segments, so nothing scales with
N). Results land in ``BENCH_scan.json``.

The million-host pass is marked ``slow`` and excluded from tier-1; the
10k smoke test and the committed-artifact schema check run in the CI
scan-smoke job (`pytest benchmarks/test_perf_scan.py`).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.exec.executor import Executor, StreamStats
from repro.scan.stream import StreamingScan
from repro.store import ResultsStore
from repro.world.population import ShardedPopulationConfig

SEED = 41
MILLION = 1_000_000
BATCH_SIZE = 1000
#: Simulated per-batch network RTT. Real banner grabs wait on the
#: network, not the CPU; this is the cost the worker pool amortizes.
LATENCY = 0.15
WORKER_CURVE = (1, 2, 4, 8)
BENCH_FILE = Path(__file__).parent / "BENCH_scan.json"

#: Keys the scan-smoke CI job requires of the committed artifact.
BENCH_SCHEMA_KEYS = (
    "hosts",
    "batch_size",
    "latency_seconds",
    "curve",
    "speedup_8_workers",
    "peak_rss_kb",
    "epoch",
)


def _run_scan(
    hosts: int,
    workers: int,
    *,
    latency: float,
    shards: int = 64,
    backend: str = "thread",
    batch_size: int = BATCH_SIZE,
    window: int = None,
):
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultsStore(Path(tmp))
        scan = StreamingScan(
            SEED,
            ShardedPopulationConfig(host_count=hosts, shard_count=shards),
            batch_size=batch_size,
            latency=latency,
        )
        stats = StreamStats()
        started = time.perf_counter()
        summary = scan.run(
            store,
            Executor(workers=workers, backend=backend),
            window=window,
            stats=stats,
        )
        return summary, time.perf_counter() - started


#: Child process for peak-RSS probes: ru_maxrss is a process-lifetime
#: high-water mark, so each host count must be measured in a fresh
#: interpreter.
_RSS_PROBE = """
import resource, sys, tempfile
from pathlib import Path
sys.path.insert(0, {src!r})
from repro.exec.executor import Executor
from repro.scan.stream import StreamingScan
from repro.store import ResultsStore
from repro.world.population import ShardedPopulationConfig

hosts = int(sys.argv[1])
with tempfile.TemporaryDirectory() as tmp:
    scan = StreamingScan(
        {seed}, ShardedPopulationConfig(host_count=hosts, shard_count=64),
        batch_size={batch},
    )
    summary = scan.run(
        ResultsStore(Path(tmp)), Executor(workers=4), window=8
    )
    assert summary.scanned == hosts
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _peak_rss_kb(hosts: int) -> int:
    src = str(Path(__file__).resolve().parent.parent / "src")
    probe = _RSS_PROBE.format(src=src, seed=SEED, batch=BATCH_SIZE)
    output = subprocess.run(
        [sys.executable, "-c", probe, str(hosts)],
        check=True,
        capture_output=True,
        text=True,
    ).stdout.strip()
    return int(output)


@pytest.mark.slow
def test_million_host_speedup_and_memory(write_bench):
    """The acceptance run: curve over workers, then RSS at two sizes."""
    curve = []
    epoch_ids = set()
    for workers in WORKER_CURVE:
        summary, elapsed = _run_scan(MILLION, workers, latency=LATENCY)
        assert summary.scanned == MILLION
        epoch_ids.add(summary.epoch_id)
        curve.append(
            {
                "workers": workers,
                "seconds": round(elapsed, 3),
                "hosts_per_second": round(MILLION / elapsed, 1),
            }
        )
    # Determinism first: every worker count commits the same epoch.
    assert len(epoch_ids) == 1, f"epoch ids diverged: {epoch_ids}"
    baseline = curve[0]["seconds"]
    for point in curve:
        point["speedup"] = round(baseline / point["seconds"], 2)
    speedup_8 = curve[-1]["speedup"]

    rss = {
        str(hosts): _peak_rss_kb(hosts) for hosts in (100_000, MILLION)
    }

    write_bench(
        BENCH_FILE.name,
        {
            "hosts": MILLION,
            "batch_size": BATCH_SIZE,
            "latency_seconds": LATENCY,
            "curve": curve,
            "speedup_8_workers": speedup_8,
            "peak_rss_kb": rss,
            "epoch": next(iter(epoch_ids)),
        },
    )

    assert speedup_8 >= 6.0, f"8-worker speedup {speedup_8} < 6x"
    # Peak memory must not scale with host count: 10x the hosts may
    # cost at most 30% more RSS (interpreter noise), or 20 MB absolute.
    small, large = rss["100000"], rss[str(MILLION)]
    assert large <= max(small * 1.3, small + 20_000), (
        f"peak RSS grew with host count: {small} KB -> {large} KB"
    )


def test_scan_smoke_10k_invariance():
    """CI scan-smoke: sharded 10k pass, invariant across backends."""
    base, _ = _run_scan(10_000, 1, latency=0.0, shards=8, batch_size=500)
    assert base.scanned == 10_000
    assert base.hits > 0
    for workers, backend in ((4, "thread"), (4, "process")):
        summary, _ = _run_scan(
            10_000, workers, latency=0.0, shards=8,
            batch_size=500, backend=backend,
        )
        assert summary.epoch_id == base.epoch_id
        assert summary.hits == base.hits


def test_bench_scan_artifact_schema():
    """The committed BENCH_scan.json carries the fields CI checks."""
    document = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
    for key in BENCH_SCHEMA_KEYS:
        assert key in document, f"BENCH_scan.json missing {key!r}"
    assert document["hosts"] == MILLION
    curve = document["curve"]
    assert [point["workers"] for point in curve] == list(WORKER_CURVE)
    for point in curve:
        assert point["hosts_per_second"] > 0
    assert document["speedup_8_workers"] >= 6.0
    assert len(document["epoch"]) == 64

"""Distributed scan coordinator benchmarks: throughput and recovery.

Two questions the coordinator PR must answer with numbers, committed to
``BENCH_coord.json``:

- what does fanning one scan out over N independent worker *processes*
  buy against the single-process streaming baseline (the scan is
  latency-bound, so real concurrency should approach linear); and
- how long does the queue take to notice a SIGKILLed worker and get its
  leased shard re-scanned by a survivor (recovery latency is bounded by
  the lease TTL plus one shard's scan time, not by luck).

The measuring run is ``slow``-marked (it sleeps through simulated
network latency); tier-1 and the CI coord-chaos job run the committed
artifact's schema check.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.coord import Coordinator, spawn_workers
from repro.exec.executor import Executor
from repro.scan.stream import StreamingScan
from repro.store import ResultsStore
from repro.world.population import ShardedPopulationConfig

SEED = 47
HOSTS = 10_000
SHARDS = 10
BATCH_SIZE = 500
#: Simulated per-batch network RTT (what worker processes overlap).
LATENCY = 0.15
WORKER_CURVE = (1, 2, 4)
BENCH_FILE = Path(__file__).parent / "BENCH_coord.json"

#: Keys the CI coord-chaos job requires of the committed artifact.
BENCH_SCHEMA_KEYS = (
    "hosts",
    "shards",
    "batch_size",
    "latency_seconds",
    "single_process_seconds",
    "curve",
    "recovery",
    "epoch",
)


def _scan(latency: float = LATENCY) -> StreamingScan:
    config = ShardedPopulationConfig(host_count=HOSTS, shard_count=SHARDS)
    return StreamingScan(SEED, config, batch_size=BATCH_SIZE, latency=latency)


def _single_process(tmp: Path):
    store = ResultsStore(tmp / "single")
    started = time.perf_counter()
    summary = _scan().run(store, Executor(1, backend="thread"))
    return summary, time.perf_counter() - started


def _distributed(tmp: Path, workers: int):
    coordinator = Coordinator(
        tmp / f"coord-{workers}", _scan(), lease_ttl=30.0
    )
    store = ResultsStore(tmp / f"dist-{workers}")
    fleet = spawn_workers(tmp / f"coord-{workers}", workers, poll=0.02)
    started = time.perf_counter()
    try:
        outcome = coordinator.run(store, poll=0.05, timeout=300.0)
    finally:
        for proc in fleet:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
    return outcome, time.perf_counter() - started


def _recovery(tmp: Path):
    """SIGKILL one of three workers mid-lease; time the re-scan.

    Returns (kill_to_shard_done, kill_to_terminal, epoch_id).
    """
    lease_ttl = 2.0
    coordinator = Coordinator(
        tmp / "coord-recovery", _scan(), lease_ttl=lease_ttl, max_attempts=5
    )
    store = ResultsStore(tmp / "recovery")
    fleet = spawn_workers(tmp / "coord-recovery", 3, poll=0.02)
    victim = fleet[0]
    try:
        deadline = time.monotonic() + 15.0
        victim_shards = ()
        while time.monotonic() < deadline and not victim_shards:
            victim_shards = tuple(
                lease.shard
                for lease in coordinator.status().leases
                if lease.worker == victim.name
            )
            time.sleep(0.02)
        assert victim_shards, "victim never acquired a lease"
        os.kill(victim.pid, signal.SIGKILL)
        killed_at = time.monotonic()
        shard_done_at = None
        while shard_done_at is None:
            snapshot = coordinator.status()
            if all(s in snapshot.done for s in victim_shards):
                shard_done_at = time.monotonic()
            coordinator.queue.reap()
            time.sleep(0.05)
        outcome = coordinator.run(store, poll=0.05, timeout=300.0)
        terminal_at = time.monotonic()
    finally:
        for proc in fleet:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
    assert outcome.complete
    return (
        shard_done_at - killed_at,
        terminal_at - killed_at,
        outcome.epoch_id,
        lease_ttl,
    )


@pytest.mark.slow
def test_distributed_throughput_and_recovery(tmp_path, write_bench):
    """The measuring run: worker curve, baseline, kill recovery."""
    single, single_seconds = _single_process(tmp_path)
    curve = []
    epoch_ids = {single.epoch_id}
    for workers in WORKER_CURVE:
        outcome, elapsed = _distributed(tmp_path, workers)
        assert outcome.complete
        epoch_ids.add(outcome.epoch_id)
        curve.append(
            {
                "workers": workers,
                "seconds": round(elapsed, 3),
                "hosts_per_second": round(HOSTS / elapsed, 1),
                "speedup_vs_single": round(single_seconds / elapsed, 2),
            }
        )
    # Every arrangement commits the identical epoch.
    assert len(epoch_ids) == 1, f"epoch ids diverged: {epoch_ids}"

    recovery_shard, recovery_total, recovery_epoch, lease_ttl = _recovery(
        tmp_path
    )
    assert recovery_epoch in epoch_ids
    # One shard costs (HOSTS/SHARDS)/BATCH_SIZE batches of LATENCY each;
    # detection costs at most the lease TTL. Allow generous scheduling
    # slack on top.
    shard_seconds = (HOSTS / SHARDS) / BATCH_SIZE * LATENCY
    assert recovery_shard <= lease_ttl + 3 * shard_seconds + 5.0, (
        f"recovery took {recovery_shard:.1f}s"
    )

    write_bench(
        BENCH_FILE.name,
        {
            "hosts": HOSTS,
            "shards": SHARDS,
            "batch_size": BATCH_SIZE,
            "latency_seconds": LATENCY,
            "single_process_seconds": round(single_seconds, 3),
            "curve": curve,
            "recovery": {
                "workers": 3,
                "lease_ttl_seconds": lease_ttl,
                "kill_to_shard_rescanned_seconds": round(recovery_shard, 3),
                "kill_to_terminal_seconds": round(recovery_total, 3),
            },
            "epoch": next(iter(epoch_ids)),
        },
    )

    # 4 process workers over a latency-bound scan must actually win.
    assert curve[-1]["speedup_vs_single"] >= 2.0


def test_bench_coord_artifact_schema():
    """The committed BENCH_coord.json carries the fields CI checks."""
    document = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
    for key in BENCH_SCHEMA_KEYS:
        assert key in document, f"BENCH_coord.json missing {key!r}"
    assert document["hosts"] == HOSTS
    curve = document["curve"]
    assert [point["workers"] for point in curve] == list(WORKER_CURVE)
    for point in curve:
        assert point["hosts_per_second"] > 0
    recovery = document["recovery"]
    assert recovery["kill_to_shard_rescanned_seconds"] > 0
    assert (
        recovery["kill_to_terminal_seconds"]
        >= recovery["kill_to_shard_rescanned_seconds"]
    )
    assert len(document["epoch"]) == 64

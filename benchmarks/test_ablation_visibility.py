"""E11 — ablation: identification recall vs. scanner coverage.

§6's limitation quantified: the scan-based method only sees what the
scanner has indexed. Sweeping the Shodan coverage fraction shows recall
(validated installations / visible ground truth) degrading, while
precision (validation) stays at 1.0 — the "high confidence subset"
framing of §1. Also compares the capped Shodan index against an
uncapped Internet-Census sweep.
"""

from __future__ import annotations

from repro import FullStudy, build_scenario
from repro.scan.census import run_census
from repro.scan.signatures import SHODAN_KEYWORDS


def _visible_ground_truth(scenario) -> int:
    return sum(
        1
        for box in scenario.deployments.values()
        if box.externally_visible and box.enabled
    )


def test_recall_vs_coverage(benchmark):
    def sweep():
        rows = []
        for coverage in (1.0, 0.75, 0.5, 0.25):
            scenario = build_scenario()
            truth = _visible_ground_truth(scenario)
            report = FullStudy(
                scenario, shodan_coverage=coverage
            ).run_identification()
            found = len(report.installations)
            rows.append((coverage, found, truth, found / truth))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ncoverage  found  truth  recall")
    for coverage, found, truth, recall in rows:
        print(f"  {coverage:4.2f}    {found:4d}  {truth:4d}   {recall:.2f}")

    recalls = [recall for _c, _f, _t, recall in rows]
    assert recalls[0] >= 0.95, "full coverage should find ~everything visible"
    assert recalls[-1] < recalls[0], "recall must degrade with coverage"
    # Monotone non-increasing within tolerance.
    for earlier, later in zip(recalls, recalls[1:]):
        assert later <= earlier + 0.05


def test_census_beats_capped_shodan(benchmark, session_scenario):
    """The uncapped census grep returns at least as many hits per
    keyword as a capped Shodan query (the §3.1 motivation for moving to
    Internet Census data)."""
    scenario = session_scenario
    world = scenario.world

    census = benchmark.pedantic(run_census, args=(world,), rounds=1, iterations=1)

    from repro.scan.banner import scan_world
    from repro.scan.shodan import ShodanIndex

    shodan = ShodanIndex(scan_world(world), result_cap=5)
    for keywords in SHODAN_KEYWORDS.values():
        for keyword in keywords:
            bare = keyword.strip('"')
            capped = len(shodan.search(keyword))
            uncapped = len(census.grep(bare))
            assert uncapped >= capped


def test_cctld_expansion_defeats_result_cap(benchmark, session_scenario):
    """§3.1: keyword x ccTLD expansion recovers results a capped single
    query drops."""
    scenario = session_scenario
    world = scenario.world
    from repro.net.url import COUNTRY_CODE_TLDS
    from repro.scan.banner import scan_world
    from repro.scan.shodan import ShodanIndex

    records = scan_world(world)

    def expanded_vs_capped():
        tight = ShodanIndex(records, result_cap=3)
        single = len(tight.search("proxysg"))
        expanded = len(
            tight.search_expanded("proxysg", sorted(COUNTRY_CODE_TLDS))
        )
        return single, expanded

    single, expanded = benchmark.pedantic(
        expanded_vs_capped, rounds=1, iterations=1
    )
    print(f"\nsingle capped query: {single} hits; expanded: {expanded} hits")
    assert expanded > single

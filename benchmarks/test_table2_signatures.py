"""E2 — Table 2: keywords and WhatWeb signatures discriminate products.

Every externally visible installation must (a) be surfaced by at least
one of its product's Shodan keywords and (b) validate under its
product's WhatWeb signature; the keyword-colliding noise hosts must be
surfaced by keywords yet REJECTED by validation — the two-stage design
the paper relies on. Benchmarks the WhatWeb engine over all candidates.
"""

from __future__ import annotations

from repro.analysis import render_table2
from repro.geo.maxmind import GeoDatabase
from repro.scan.banner import scan_world
from repro.scan.shodan import ShodanIndex
from repro.scan.signatures import SHODAN_KEYWORDS
from repro.scan.whatweb import WhatWebEngine, world_probe


def test_table2_signatures(benchmark, session_scenario):
    scenario = session_scenario
    world = scenario.world
    print("\n" + render_table2())

    records = scan_world(world)
    geo = GeoDatabase.build_from_world(world)
    shodan = ShodanIndex(records, geolocate=geo.country_code)
    whatweb = WhatWebEngine(world_probe(world))

    visible = [
        box
        for box in scenario.deployments.values()
        if box.externally_visible and box.enabled
    ]
    assert visible

    # (a) Shodan keywords surface each visible appliance.
    for box in visible:
        vendor = box.appliance.vendor
        surfaced = any(
            any(record.ip == box.box_ip for record in shodan.search(keyword))
            for keyword in SHODAN_KEYWORDS[vendor]
        )
        assert surfaced, f"{box.name} not surfaced by {vendor} keywords"

    # (b) WhatWeb validates each visible appliance...
    def validate_all():
        return [whatweb.identify(box.box_ip) for box in visible]

    reports = benchmark.pedantic(validate_all, rounds=1, iterations=1)
    for box, report in zip(visible, reports):
        assert report.matched(box.appliance.vendor), (
            f"{box.name}: WhatWeb missed {box.appliance.vendor}; "
            f"matched {report.products}"
        )

    # ... and rejects the keyword-colliding noise hosts.
    noise_ips = [
        host.ip for host in world.hosts.values() if "noise" in host.tags
    ]
    assert noise_ips, "scenario should contain noise hosts"
    for ip in noise_ips:
        report = whatweb.identify(ip)
        assert not report.matches, (
            f"noise host {ip} wrongly validated as {report.products}"
        )


def test_stacked_box_shows_both_surfaces(benchmark, session_scenario):
    """§4.5: the Etisalat box validates as Blue Coat AND SmartFilter."""
    scenario = session_scenario
    world = scenario.world
    whatweb = WhatWebEngine(world_probe(world))
    stack = scenario.deployments["etisalat-stack"]

    report = benchmark.pedantic(
        whatweb.identify, args=(stack.box_ip,), rounds=1, iterations=1
    )
    assert report.matched("Blue Coat")
    assert report.matched("McAfee SmartFilter")

"""E3 — Figure 1: countries where each product's installations are found.

The identification pipeline (scan → keyword x ccTLD → WhatWeb →
MaxMind/Cymru) must re-derive the paper's per-product country map from
the world's banners alone. Benchmarks the full §3 pipeline.
"""

from __future__ import annotations

from repro import FullStudy
from repro.analysis import PAPER_FIGURE1, render_figure1


def test_figure1_country_map(benchmark, fresh_scenario):
    study = FullStudy(fresh_scenario)
    report = benchmark.pedantic(study.run_identification, rounds=1, iterations=1)

    print("\n" + render_figure1(report))

    measured = report.country_map()
    for product, expected in PAPER_FIGURE1.items():
        assert measured[product] == set(expected), (
            f"{product}: measured {sorted(measured[product])} "
            f"!= paper {sorted(expected)}"
        )

    # The keyword stage is deliberately non-conservative: validation
    # must be doing real work (§3.1).
    assert report.rejected, "expected keyword false positives to be rejected"
    assert 0.5 < report.precision < 1.0


def test_hidden_installations_are_missed(benchmark, session_scenario):
    """The stated limitation: only externally visible installations are
    identifiable. The hidden SmartFilter region (IR/BH/OM/TN) must NOT
    appear in Figure 1."""
    scenario = session_scenario
    report = benchmark.pedantic(
        FullStudy(scenario).run_identification, rounds=1, iterations=1
    )
    smartfilter_countries = report.countries("McAfee SmartFilter")
    for hidden in ("ir", "bh", "om", "tn"):
        assert hidden not in smartfilter_countries

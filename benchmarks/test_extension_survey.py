"""Extension bench — E18: the §7 global confirmation survey.

Generalizes Table 3 from ten hand-picked case studies to every
identified installation with a vantage point. The survey must confirm
censorship use wherever a deployment blocks on-ladder content — and its
non-confirmations must be exactly the deployments the methodology
*should* miss: the two inert Blue Coat proxies (Table 3's negatives,
explained by §4.5 stacking) and networks blocking only off-ladder
categories (the §7 category-knowledge caveat).
"""

from __future__ import annotations

from repro import FullStudy
from repro.core.survey import GlobalSurvey


def test_global_survey(benchmark, fresh_scenario):
    scenario = fresh_scenario
    identification = FullStudy(scenario).run_identification()
    survey = GlobalSurvey(
        scenario.world, scenario.products, scenario.hosting_asns[0]
    )
    targets = survey.plan(identification)

    report = benchmark.pedantic(survey.run, args=(targets,), rounds=1, iterations=1)

    print(f"\n{len(targets)} targets surveyed, {report.confirmed_count()} confirmed:")
    for line in report.summary_lines():
        print(f"  {line}")

    confirmed = set(report.confirmed_pairs())
    not_confirmed = {
        (e.target.product_name, e.target.isp_name)
        for e in report.entries
        if not e.confirmed
    }

    # Every Table 3 positive generalizes...
    for pair in (
        ("McAfee SmartFilter", "etisalat"),
        ("McAfee SmartFilter", "bayanat"),
        ("McAfee SmartFilter", "nournet"),
        ("Netsweeper", "ooredoo"),
        ("Netsweeper", "yemennet"),
    ):
        assert pair in confirmed, pair
    # ...and so do both Table 3 negatives (§4.5 stacking).
    assert ("Blue Coat", "etisalat") in not_confirmed
    assert ("Blue Coat", "ooredoo") in not_confirmed

    # Beyond the paper: the survey confirms networks ONI never tested.
    assert ("McAfee SmartFilter", "pk-ptcl") in confirmed
    assert ("Websense", "tx-utility-1") in confirmed
    assert ("Blue Coat", "sy-isp") in confirmed

    # §7 caveat: off-ladder policies (phishing/malware-only) are missed.
    assert ("Blue Coat", "comcast") in not_confirmed
    assert ("Blue Coat", "usaisc") in not_confirmed

    # Aggregate shape: the vast majority of real censoring deployments
    # confirm; only the stacked proxies and off-ladder policies do not.
    assert report.confirmed_count() >= len(targets) - 6

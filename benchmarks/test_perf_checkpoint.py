"""Perf bench — the crash-safe journal and snapshot layer.

Times the full default campaign plain vs journaled (write-ahead record
per unit event, fsync on every append, an atomic snapshot after every
unit) and writes the numbers to ``benchmarks/BENCH_checkpoint.json``.
Durability must stay cheap relative to the campaign it protects: the
budget is < 5% wall-clock overhead at the default snapshot cadence, and
the journaled report must stay byte-identical to the plain one.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro import run_full_study
from repro.analysis.export import to_json
from repro.analysis.report import write_markdown_report
from repro.exec.journal import JOURNAL_FILENAME, read_journal

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_checkpoint.json")

#: Median-of-N keeps a single noisy run from deciding the verdict.
ROUNDS = 3

#: Wall-clock overhead budget for full durability at default cadence.
OVERHEAD_BUDGET = 0.05


def _timed_plain():
    started = time.perf_counter()
    report = run_full_study()
    return report, time.perf_counter() - started


def _timed_journaled(checkpoint_every=1):
    directory = Path(tempfile.mkdtemp(prefix="bench-journal-"))
    try:
        started = time.perf_counter()
        report = run_full_study(
            journal_dir=directory, checkpoint_every=checkpoint_every
        )
        elapsed = time.perf_counter() - started
        records, _ = read_journal(directory / JOURNAL_FILENAME)
        snapshot_bytes = sum(
            path.stat().st_size for path in directory.glob("snapshot-*.ckpt")
        )
        journal_bytes = (directory / JOURNAL_FILENAME).stat().st_size
        return report, elapsed, len(records), journal_bytes, snapshot_bytes
    finally:
        shutil.rmtree(directory)


def test_journal_overhead_under_budget(benchmark):
    plain_runs = [_timed_plain() for _ in range(ROUNDS)]
    plain_report = plain_runs[0][0]
    plain_seconds = statistics.median(seconds for _, seconds in plain_runs)

    journaled = benchmark.pedantic(
        lambda: [_timed_journaled() for _ in range(ROUNDS)],
        rounds=1,
        iterations=1,
    )
    journal_report = journaled[0][0]
    journal_seconds = statistics.median(run[1] for run in journaled)
    record_count, journal_bytes, snapshot_bytes = journaled[0][2:]

    # Durability must never change the science.
    assert write_markdown_report(
        journal_report, seed=2013
    ) == write_markdown_report(plain_report, seed=2013)
    assert to_json(journal_report) == to_json(plain_report)

    overhead = journal_seconds / plain_seconds - 1.0
    payload = {
        "bench": "checkpoint-journal-overhead",
        "rounds": ROUNDS,
        "checkpoint_every": 1,
        "plain_seconds": round(plain_seconds, 3),
        "journaled_seconds": round(journal_seconds, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "journal_records": record_count,
        "journal_bytes": journal_bytes,
        "snapshot_bytes_total": snapshot_bytes,
        "reports_identical": True,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\nplain: {plain_seconds:.2f}s   journaled: {journal_seconds:.2f}s   "
        f"overhead {overhead:+.1%} (budget {OVERHEAD_BUDGET:.0%})   "
        f"{record_count} records, {snapshot_bytes / 1024:.0f} KiB snapshots"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"journaling cost {overhead:.1%}, over the {OVERHEAD_BUDGET:.0%} "
        "budget"
    )

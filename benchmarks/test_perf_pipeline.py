"""Perf bench — the parallel campaign executor.

Times the full campaign at workers=1 vs workers=8 under a modelled
field-link RTT (the cost the executor's fan-out amortizes, mirroring
§6.1: concurrent campaigns make wall clock the max, not the sum), checks
the two runs produce byte-identical reports, and writes the numbers to
``benchmarks/BENCH_pipeline.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro import Metrics, run_full_study
from repro.analysis.export import to_json
from repro.analysis.report import write_markdown_report

#: Per-request field RTT. 1.5 ms is far below any real in-country link
#: but large enough that fan-out, not Python overhead, dominates.
LINK_LATENCY = 0.0015
PARALLEL_WORKERS = 8

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_pipeline.json")


def _timed_study(workers, metrics=None):
    started = time.perf_counter()
    report = run_full_study(
        workers=workers, link_latency=LINK_LATENCY, metrics=metrics
    )
    return report, time.perf_counter() - started


def test_parallel_study_faster_and_identical(benchmark):
    sequential_report, sequential_seconds = _timed_study(workers=1)

    metrics = Metrics()
    parallel_report, parallel_seconds = benchmark.pedantic(
        lambda: _timed_study(PARALLEL_WORKERS, metrics), rounds=1, iterations=1
    )

    # Determinism first: parallelism must never change the science.
    assert write_markdown_report(
        sequential_report, seed=2013
    ) == write_markdown_report(parallel_report, seed=2013)
    assert to_json(sequential_report) == to_json(parallel_report)

    speedup = sequential_seconds / parallel_seconds
    counters = metrics.as_dict()["counters"]
    fanout_tasks = {
        name: count
        for name, count in counters.items()
        if name.endswith(".tasks")
    }
    payload = {
        "bench": "pipeline-parallel-executor",
        "link_latency_seconds": LINK_LATENCY,
        "workers_sequential": 1,
        "workers_parallel": PARALLEL_WORKERS,
        "sequential_seconds": round(sequential_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "reports_identical": True,
        "fanout_tasks": fanout_tasks,
        "cache": {
            name: counters.get(f"cache.{name}.hits", 0)
            for name in ("geo", "asn", "dns", "banner")
        },
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\nworkers=1: {sequential_seconds:.2f}s   "
        f"workers={PARALLEL_WORKERS}: {parallel_seconds:.2f}s   "
        f"speedup {speedup:.2f}x"
    )
    # The pool must beat sequential by a clear margin, not noise.
    assert speedup > 1.2, (
        f"parallel run not faster: {sequential_seconds:.2f}s -> "
        f"{parallel_seconds:.2f}s"
    )


def test_lookup_caches_carry_real_traffic():
    metrics = Metrics()
    run_full_study(workers=1, metrics=metrics)
    hits = {
        name: metrics.count(f"cache.{name}.hits")
        for name in ("geo", "asn", "dns")
    }
    print(f"\ncache hits: {hits}")
    # The identification stage re-geolocates candidate IPs the banner
    # index already mapped, and every fetch hop re-resolves its host.
    assert hits["geo"] > 100
    assert hits["dns"] > 100

"""Extension bench — E16: longitudinal re-confirmation.

Reproduces the paper's temporal claims as measurements: Etisalat's
SmartFilter confirms in 9/2012 AND 4/2013 (Table 3 has both rows), and
a vendor that withdraws update support (§2.2's Websense-Yemen decision)
flips a previously confirmed deployment to not-confirmed — the
observable policy outcome the paper's advocacy aims at.
"""

from __future__ import annotations

from repro import ConfirmationConfig, build_scenario
from repro.core.monitor import LongitudinalMonitor, TransitionKind, UsageState
from repro.world.content import ContentClass


def test_stable_use_reconfirms_across_quarters(benchmark, fresh_scenario):
    scenario = fresh_scenario
    monitor = LongitudinalMonitor(
        scenario.world,
        scenario.smartfilter,
        scenario.hosting_asns[0],
        ConfirmationConfig(
            product_name="McAfee SmartFilter",
            isp_name="etisalat",
            content_class=ContentClass.PROXY_ANONYMIZER,
            category_label="Anonymizers",
            requested_category="Anonymizers",
        ),
    )
    series = benchmark.pedantic(
        monitor.run, args=(3, 90.0), rounds=1, iterations=1
    )
    print("\nround states:", [s.value for s in series.states()])
    assert series.states() == [UsageState.CONFIRMED] * 3
    assert series.transitions() == []


def test_vendor_withdrawal_flips_confirmation(benchmark):
    def run_arc():
        scenario = build_scenario()
        world = scenario.world
        box = scenario.deployments["tx-utility-1-websense"]
        monitor = LongitudinalMonitor(
            world,
            scenario.websense,
            scenario.hosting_asns[0],
            ConfirmationConfig(
                product_name="Websense",
                isp_name="tx-utility-1",
                content_class=ContentClass.PROXY_ANONYMIZER,
                category_label="Proxy Avoidance",
                requested_category="Proxy Avoidance",
            ),
        )
        monitor.run_round()
        box.subscription.withdraw(world.now)
        world.advance_days(45)
        monitor.run_round()
        return monitor.series

    series = benchmark.pedantic(run_arc, rounds=1, iterations=1)
    print("\nround states:", [s.value for s in series.states()])
    assert series.states() == [
        UsageState.CONFIRMED,
        UsageState.NOT_CONFIRMED,
    ]
    assert [t.kind for t in series.transitions()] == [TransitionKind.WITHDRAWN]

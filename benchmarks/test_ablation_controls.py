"""Ablations of the §4 experiment design itself.

DESIGN.md §5 calls out two load-bearing design choices:

- **Held-out control domains.** Submitting *all* domains removes the
  causal control: any independent blocking mechanism (here Netsweeper's
  fast access queue categorizing everything the testers touch) produces
  a false confirmation. The split design catches it — the controls get
  blocked too, and the verdict correctly fails.
- **Repeat count under inconsistent blocking.** With per-URL license
  flicker, a single retest round undercounts; sweeping rounds shows how
  many are needed for a stable 6/6.
"""

from __future__ import annotations

from repro import ConfirmationConfig, ConfirmationStudy, build_scenario
from repro.products.submission import ReviewPolicy
from repro.world.content import ContentClass
from repro.world.scenario import ScenarioConfig


def _netsweeper_config(
    total: int, submit: int, rounds: int = 1, pre_validate: bool = False
) -> ConfirmationConfig:
    return ConfirmationConfig(
        product_name="Netsweeper",
        isp_name="du",
        content_class=ContentClass.PROXY_ANONYMIZER,
        category_label="Proxy anonymizer",
        total_domains=total,
        submit_count=submit,
        pre_validate=pre_validate,
        retest_rounds=rounds,
        wait_days=6.0,
    )


def test_submit_all_design_false_confirms_under_fast_queue(benchmark):
    """No controls + an independent blocking mechanism = false positive;
    the split design turns the same signal into a correct rejection."""

    def run_both_designs():
        outcomes = {}
        for label, total, submit in (("submit-all", 6, 6), ("split", 12, 6)):
            scenario = build_scenario(
                config=ScenarioConfig(netsweeper_queue_days=(1.0, 2.0))
            )
            # The vendor ignores every submission: ANY blocking observed
            # is caused by the queue, not by the methodology. A naive
            # team pre-validates (accessing the sites), which is exactly
            # what arms the queue (§4.4).
            scenario.netsweeper.portal.policy.base_accept_rate = 0.0
            study = ConfirmationStudy(
                scenario.world, scenario.netsweeper, scenario.hosting_asns[0]
            )
            result = study.run(
                _netsweeper_config(total, submit, pre_validate=True)
            )
            outcomes[label] = result
        return outcomes

    outcomes = benchmark.pedantic(run_both_designs, rounds=1, iterations=1)
    submit_all = outcomes["submit-all"]
    split = outcomes["split"]

    print(
        f"\nsubmit-all: {submit_all.blocked_submitted}/6 blocked, "
        f"confirmed={submit_all.confirmed}  <- FALSE POSITIVE"
    )
    print(
        f"split:      {split.blocked_submitted}/6 blocked, "
        f"{split.blocked_control}/6 controls blocked, "
        f"confirmed={split.confirmed}  <- correctly rejected"
    )

    # The queue blocked everything accessed, with zero accepted submissions.
    assert submit_all.blocked_submitted >= 5
    assert submit_all.confirmed, "no-controls design cannot see the confound"
    assert split.blocked_control >= 5
    assert not split.confirmed, "controls expose the independent mechanism"


def test_retest_rounds_sweep_under_flicker(benchmark):
    """How many repeat rounds a flaky deployment needs for full counts."""

    def sweep():
        rows = []
        for rounds in (1, 2, 3, 4):
            scenario = build_scenario(
                config=ScenarioConfig(
                    yemen_license_seats=2000,
                    yemen_license_mean=2000.0,
                    yemen_license_stddev=350.0,
                )
            )
            # Make vendor review deterministic so flicker is the only noise.
            scenario.netsweeper.portal.policy.base_accept_rate = 1.0
            study = ConfirmationStudy(
                scenario.world, scenario.netsweeper, scenario.hosting_asns[0]
            )
            config = ConfirmationConfig(
                product_name="Netsweeper",
                isp_name="yemennet",
                content_class=ContentClass.PROXY_ANONYMIZER,
                category_label="Proxy anonymizer",
                total_domains=12,
                submit_count=6,
                pre_validate=False,
                retest_rounds=rounds,
                wait_days=6.0,
            )
            result = study.run(config)
            rows.append((rounds, result.blocked_submitted, result.confirmed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nrounds  blocked  confirmed")
    for rounds, blocked, confirmed in rows:
        print(f"   {rounds}      {blocked}/6     {confirmed}")

    blocked_by_rounds = {r: b for r, b, _c in rows}
    # More rounds can only help (blocked = max over rounds per site).
    assert blocked_by_rounds[4] >= blocked_by_rounds[1]
    # With enough repetition the full submitted set is recovered.
    assert blocked_by_rounds[4] >= 5

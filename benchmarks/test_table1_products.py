"""E1 — Table 1: the product inventory and where each was previously seen.

Checks that the scenario's ground truth carries every product the paper
considers, that each product's vendor model exposes the documented
surfaces, and that the previously-observed country sets used by the
scenario match Table 1. Benchmarks scenario construction (the world is
the substrate every other experiment stands on).
"""

from __future__ import annotations

from repro import build_scenario
from repro.analysis import PAPER_TABLE1, render_table1
from repro.products.netsweeper import Netsweeper
from repro.products.websense import Websense


def test_table1_inventory(benchmark, session_scenario):
    scenario = benchmark.pedantic(build_scenario, rounds=1, iterations=1)

    print("\n" + render_table1())

    vendors = set(scenario.products)
    assert vendors == {
        "Blue Coat",
        "McAfee SmartFilter",
        "Netsweeper",
        "Websense",
    }

    # Each product is deployed somewhere in the world.
    for vendor in vendors:
        deployed = [
            box
            for box in scenario.deployments.values()
            if box.appliance.vendor == vendor or (
                box.engine is not None and box.engine.vendor == vendor
            )
        ]
        assert deployed, f"{vendor} has no installations in the scenario"

    # Table 1 previously-observed countries all exist in the world.
    for row in PAPER_TABLE1:
        for code in row.previously_observed:
            assert code in scenario.world.countries, (row.company, code)

    # Product-specific surfaces from Table 1's descriptions.
    assert isinstance(scenario.netsweeper, Netsweeper)
    assert len(scenario.netsweeper.taxonomy) == 66
    assert isinstance(scenario.websense, Websense)
    # Blue Coat in the UAE is a proxy appliance with a SmartFilter engine.
    stack = scenario.deployments["etisalat-stack"]
    assert stack.appliance.vendor == "Blue Coat"
    assert stack.engine is not None and stack.engine.vendor == "McAfee SmartFilter"

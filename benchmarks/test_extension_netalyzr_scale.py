"""Extension bench — §7: proxy-fingerprinting ground truth + scalability.

Two of the paper's forward-looking claims, quantified:

1. The confirmation methodology "can provide a useful ground truth for
   more general identification of transparent proxies (e.g. Netalyzr)":
   in-ISP reference fetches must agree with deployment ground truth.
2. Applying §4 "more widely" without the §3 pre-filter is expensive;
   the identification step cuts the in-country workload by an order of
   magnitude.
"""

from __future__ import annotations

from repro import FullStudy
from repro.core.confirm import ConfirmationConfig
from repro.core.scale import (
    exhaustive_campaign,
    reduction_factor,
    targeted_campaign,
)
from repro.measure.netalyzr import survey_isps
from repro.world.content import ContentClass

PROXY_APPLIANCE_VENDORS = {"Blue Coat", "McAfee SmartFilter", "Websense"}


def test_netalyzr_cross_validation(benchmark, session_scenario):
    scenario = session_scenario
    world = scenario.world
    isp_names = sorted(world.isps)

    reports = benchmark.pedantic(
        survey_isps, args=(world, isp_names), rounds=1, iterations=1
    )

    agreements = 0
    for isp_name, report in reports.items():
        isp = world.isps[isp_name]
        has_proxy = any(
            getattr(device, "appliance", None) is not None
            and device.appliance.vendor in PROXY_APPLIANCE_VENDORS
            and device.enabled
            for device in isp.devices
        )
        assert report.proxy_detected == has_proxy, isp_name
        agreements += 1
    print(f"\nnetalyzr vs ground truth: {agreements}/{len(isp_names)} ISPs agree")
    assert agreements == len(isp_names)

    # Attribution names the right appliance where one exists.
    assert reports["etisalat"].attributed_products == ["Blue Coat"]
    assert reports["tx-utility-1"].attributed_products == ["Websense"]
    assert not reports["du"].proxy_detected  # software filter, no residue


def test_identification_prefilter_cuts_campaign_cost(benchmark, session_scenario):
    scenario = session_scenario
    world = scenario.world
    identification = benchmark.pedantic(
        FullStudy(scenario).run_identification, rounds=1, iterations=1
    )

    template = ConfirmationConfig(
        product_name="Netsweeper",
        isp_name="du",
        content_class=ContentClass.PROXY_ANONYMIZER,
        category_label="Proxy anonymizer",
        total_domains=12,
        submit_count=6,
        pre_validate=False,
    )
    asn_to_isp = {isp.asn: name for name, isp in world.isps.items()}
    everywhere = exhaustive_campaign(sorted(world.isps), template)
    targeted = targeted_campaign(
        identification, "Netsweeper", asn_to_isp.get, template
    )
    factor = reduction_factor(everywhere, targeted)
    print(
        f"\nexhaustive: {everywhere.target_isps} ISPs, "
        f"{everywhere.field_fetches} fetches, "
        f"{everywhere.domains_registered} domains"
    )
    print(
        f"targeted:   {targeted.target_isps} ISPs, "
        f"{targeted.field_fetches} fetches, "
        f"{targeted.domains_registered} domains "
        f"(reduction {factor:.1f}x)"
    )
    assert targeted.target_isps < everywhere.target_isps / 3
    assert factor > 3.0

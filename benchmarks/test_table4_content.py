"""E9 — Table 4: rights-protected content blocked per deployment.

The §5 characterization (global + local lists, block-page regex
attribution) must mark the same Table 4 columns as the documented
reconstruction, and every confirmed deployment must block at least one
rights-protected column — the paper's headline human-rights finding.
Benchmarks one full characterization run.
"""

from __future__ import annotations

from repro import ContentCharacterization, build_scenario
from repro.analysis import PAPER_TABLE4, render_table4


def test_table4_columns_match(benchmark, full_report):
    report, _scenario = full_report
    table = benchmark.pedantic(
        render_table4, args=(report.characterizations,), rounds=1, iterations=1
    )
    print("\n" + table)

    assert set(report.characterizations) == {
        "etisalat", "du", "yemennet", "ooredoo"
    }
    for paper_row in PAPER_TABLE4:
        result = report.characterizations[paper_row.isp_key]
        measured = result.table4_columns()
        assert measured == set(paper_row.columns), (
            f"{paper_row.isp_key}: measured "
            f"{sorted(c.value for c in measured)} != paper "
            f"{sorted(c.value for c in paper_row.columns)}"
        )
        assert result.blocks_rights_protected_content()
        assert result.asn == paper_row.asn
        assert result.country_code == paper_row.country_code


def test_vendor_attribution(benchmark, full_report):
    """Blocked URLs attribute to the product actually doing the
    filtering — SmartFilter in Etisalat (not the Blue Coat appliance),
    Netsweeper elsewhere."""
    report, _scenario = full_report

    def attributions():
        return {
            isp: result.vendor_attribution()
            for isp, result in report.characterizations.items()
        }

    attribution = benchmark.pedantic(attributions, rounds=1, iterations=1)
    assert attribution["etisalat"].get("McAfee SmartFilter", 0) > 0
    assert attribution["etisalat"].get("Blue Coat", 0) == 0
    for isp in ("du", "yemennet", "ooredoo"):
        assert attribution[isp].get("Netsweeper", 0) > 0


def test_characterization_runtime(benchmark):
    scenario = build_scenario()
    characterization = ContentCharacterization(scenario.world)
    result = benchmark.pedantic(
        characterization.run,
        args=("du", "Netsweeper"),
        rounds=1,
        iterations=1,
    )
    assert result.tests, "characterization tested no URLs"
    assert result.blocks_rights_protected_content()

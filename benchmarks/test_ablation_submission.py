"""E12 — ablation: confirmation robustness vs. vendor review behaviour.

Two sweeps over the §4 methodology's moving parts:

- **Retest timing** — retesting before the vendor's review window
  closes yields 0 blocked (a false negative for the method); the §4.2
  "3-5 days" wait is load-bearing.
- **Vendor acceptance rate** — the confirmed verdict survives one
  dropped submission (Table 3's Du row) but collapses as the vendor
  rejects more; quantifies the §6.2 worry.
"""

from __future__ import annotations

from repro import ConfirmationConfig, ConfirmationStudy, build_scenario
from repro.world.content import ContentClass
from repro.world.scenario import ScenarioConfig


def _smartfilter_case(wait_days: float) -> ConfirmationConfig:
    return ConfirmationConfig(
        product_name="McAfee SmartFilter",
        isp_name="bayanat",
        content_class=ContentClass.ADULT_IMAGES,
        category_label="Pornography",
        requested_category="Pornography",
        wait_days=wait_days,
    )


def test_retest_timing_sweep(benchmark):
    def sweep():
        rows = []
        for wait_days in (1.0, 2.0, 3.0, 5.0, 7.0):
            scenario = build_scenario()
            study = ConfirmationStudy(
                scenario.world,
                scenario.smartfilter,
                scenario.hosting_asns[0],
            )
            result = study.run(_smartfilter_case(wait_days))
            rows.append((wait_days, result.blocked_submitted, result.confirmed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nwait_days  blocked  confirmed")
    for wait_days, blocked, confirmed in rows:
        print(f"   {wait_days:4.1f}      {blocked}/5     {confirmed}")

    by_wait = {w: (b, c) for w, b, c in rows}
    # Before the minimum review delay (3 days) nothing is categorized.
    assert by_wait[1.0] == (0, False)
    assert by_wait[2.0] == (0, False)
    # After the maximum review delay (4.5 days) everything accepted is live.
    assert by_wait[5.0] == (5, True)
    assert by_wait[7.0] == (5, True)
    # Blocking is non-decreasing in wait time.
    blocked_series = [b for _w, b, _c in rows]
    assert blocked_series == sorted(blocked_series)


def test_acceptance_rate_sweep(benchmark):
    def sweep():
        rows = []
        for accept_rate in (1.0, 0.9, 0.6, 0.3, 0.0):
            scenario = build_scenario(
                config=ScenarioConfig(netsweeper_accept_rate=accept_rate)
            )
            study = ConfirmationStudy(
                scenario.world,
                scenario.netsweeper,
                scenario.hosting_asns[0],
            )
            result = study.run(
                ConfirmationConfig(
                    product_name="Netsweeper",
                    isp_name="ooredoo",
                    content_class=ContentClass.PROXY_ANONYMIZER,
                    category_label="Proxy anonymizer",
                    total_domains=12,
                    submit_count=6,
                    pre_validate=False,
                )
            )
            rows.append(
                (accept_rate, result.blocked_submitted, result.confirmed)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\naccept_rate  blocked  confirmed")
    for accept_rate, blocked, confirmed in rows:
        print(f"    {accept_rate:4.2f}      {blocked}/6     {confirmed}")

    by_rate = dict((r, (b, c)) for r, b, c in rows)
    assert by_rate[1.0] == (6, True)
    assert by_rate[0.0] == (0, False)
    # Full acceptance blocks at least as much as full rejection, with a
    # generally decreasing trend in between.
    blocked_series = [b for _r, b, _c in rows]
    assert blocked_series[0] >= blocked_series[-1]
    assert blocked_series[0] - blocked_series[-1] == 6

"""E7 — §4.4: the YemenNet denypagetests category probe.

Probing the 66 category test pages from inside YemenNet must find
exactly the paper's five blocked categories (adult images, phishing,
pornography, proxy anonymizers, search keywords) — and, critically,
must NOT see YemenNet's custom-list political blocking, which lives
outside the vendor taxonomy. Benchmarks the 66-URL probe.
"""

from __future__ import annotations

from repro import build_scenario, run_category_probe
from repro.analysis import PAPER_YEMEN_PROBE_CATEGORIES, render_category_probe


def test_yemen_probe_matches_paper(benchmark, fresh_scenario):
    world = fresh_scenario.world
    probe = benchmark.pedantic(
        run_category_probe, args=(world, "yemennet"), rounds=1, iterations=1
    )
    print("\n" + render_category_probe(probe))
    assert probe.tested == 66
    assert set(probe.blocked_names) == set(PAPER_YEMEN_PROBE_CATEGORIES)


def test_probe_blind_to_custom_lists(benchmark, fresh_scenario):
    """YemenNet blocks political hosts via a custom list (Table 4), yet
    the probe enumerates vendor categories only — no 'Politics'."""
    scenario = fresh_scenario
    box = scenario.deployments["yemennet-netsweeper"]
    assert box.policy.custom_blocked_hosts, "scenario should custom-block hosts"
    probe = benchmark.pedantic(
        run_category_probe,
        args=(scenario.world, "yemennet"),
        rounds=1,
        iterations=1,
    )
    assert "Politics" not in probe.blocked_names
    assert "General News" not in probe.blocked_names


def test_probe_useless_when_disabled(benchmark):
    """§4.4: 'only viable in networks where the tool has not been
    disabled'."""
    scenario = build_scenario()
    scenario.deployments[
        "yemennet-netsweeper"
    ].policy.honor_category_test_pages = False
    probe = benchmark.pedantic(
        run_category_probe,
        args=(scenario.world, "yemennet"),
        rounds=1,
        iterations=1,
    )
    assert probe.blocked == []

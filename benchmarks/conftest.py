"""Shared fixtures for the benchmark harness.

The full campaign is expensive (several seconds), so it runs once per
session; individual benchmarks time their own pipeline stage against
fresh worlds with ``benchmark.pedantic`` and then assert the paper's
shape on the shared report.
"""

from __future__ import annotations

import pytest

from repro import FullStudy, build_scenario
from repro.world.scenario import Scenario


@pytest.fixture(scope="session")
def session_scenario() -> Scenario:
    """A scenario reserved for read-only inspection (do not mutate)."""
    return build_scenario()


@pytest.fixture(scope="session")
def full_report():
    """The complete campaign, run once: (report, scenario)."""
    scenario = build_scenario()
    report = FullStudy(scenario).run()
    return report, scenario


@pytest.fixture()
def fresh_scenario() -> Scenario:
    """A brand-new world for benchmarks that mutate state."""
    return build_scenario()

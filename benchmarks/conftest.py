"""Shared fixtures for the benchmark harness.

The full campaign is expensive (several seconds), so it runs once per
session; individual benchmarks time their own pipeline stage against
fresh worlds with ``benchmark.pedantic`` and then assert the paper's
shape on the shared report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro import FullStudy, build_scenario
from repro.world.scenario import Scenario

BENCH_DIR = Path(__file__).parent


@pytest.fixture(scope="session")
def write_bench() -> Callable[[str, Dict], Path]:
    """Writer for committed BENCH_*.json artifacts (stable formatting)."""

    def _write(name: str, payload: Dict) -> Path:
        path = BENCH_DIR / name
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    return _write


@pytest.fixture(scope="session")
def session_scenario() -> Scenario:
    """A scenario reserved for read-only inspection (do not mutate)."""
    return build_scenario()


@pytest.fixture(scope="session")
def full_report():
    """The complete campaign, run once: (report, scenario)."""
    scenario = build_scenario()
    report = FullStudy(scenario).run()
    return report, scenario


@pytest.fixture()
def fresh_scenario() -> Scenario:
    """A brand-new world for benchmarks that mutate state."""
    return build_scenario()

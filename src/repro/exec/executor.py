"""Deterministic parallel executor.

The reproduction must stay a pure function of (seed, config), yet the
measurement stages — banner scans over every host, keyword × ccTLD
queries, WhatWeb validation probes, per-URL field/lab fetch pairs —
are embarrassingly parallel. The executor reconciles the two:

- **Stable merges.** :meth:`Executor.map` always returns results in
  submission order regardless of completion order, and
  :meth:`Executor.run_campaigns` merges campaign outcomes by submission
  order (or an explicit key), never by which thread finished first.
- **Ordered side effects.** Simulation steps that mutate shared world
  state (a fetch through a stateful middlebox consumes RNG draws and
  feeds product queues) are wrapped in a :class:`Sequencer` turnstile:
  threads may overlap freely in their effect-free phases (modelled
  network waits, lab fetches, response comparison) but commit their
  mutating step strictly in submission order, so the world evolves
  exactly as it would under ``workers=1``.
- **Fault semantics.** Each task gets a :class:`RetryPolicy`; a task
  that keeps failing raises (or is collected as) a :class:`TaskFailure`
  without disturbing sibling results, and every retry/failure/timeout is
  visible in :class:`~repro.exec.metrics.Metrics`.

``workers=1`` bypasses the pool entirely and runs tasks inline, which is
both the default and the reference behaviour the parallel paths must
reproduce byte for byte.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exec.metrics import Metrics
from repro.net.errors import NetError

T = TypeVar("T")
R = TypeVar("R")

#: ``on_error`` modes for the fan-out APIs.
RAISE = "raise"
COLLECT = "collect"

#: Executor backends. Threads share the world and suit latency-bound
#: simulated I/O; processes suit CPU-bound work over plain picklable
#: data (signature matching at scan scale) and require module-level
#: task functions.
THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"
BACKENDS = (THREAD_BACKEND, PROCESS_BACKEND)


@dataclass
class StreamStats:
    """Observability for :meth:`Executor.stream` (backpressure proof).

    ``peak_inflight`` is the high-water mark of simultaneously
    outstanding tasks — the soak suite asserts it never exceeds the
    configured window.
    """

    submitted: int = 0
    completed: int = 0
    peak_inflight: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a failing task is re-run before giving up."""

    attempts: int = 1
    backoff_seconds: float = 0.0
    retry_on: Tuple[type, ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether a failure on ``attempt`` (1-based) warrants another try.

        Network errors are classified by their ``transient`` flag: a
        timeout or reset is noise worth re-trying, while NXDOMAIN, a
        malformed URL, or a bad address is an *answer* — retrying it
        would burn the budget re-asking a question already settled.
        Permanent :class:`~repro.net.errors.NetError` subtypes therefore
        never retry, even when ``retry_on`` names a base class that
        matches them.
        """
        if attempt >= self.attempts:
            return False
        if isinstance(exc, NetError) and not exc.transient:
            return False
        return isinstance(exc, self.retry_on)


#: The no-retry default.
NO_RETRY = RetryPolicy()


class TaskFailure(RuntimeError):
    """A task exhausted its retry budget.

    Carries enough context to report the failure without losing sibling
    results: the task label, its submission index, how many attempts
    ran, the final underlying exception (also set as ``__cause__``),
    and — when the task belonged to a named campaign — which campaign,
    so a failure surfacing far from its fan-out is still attributable.

    ``transient`` marks failures of *infrastructure* rather than of the
    task itself — e.g. a pool worker process SIGKILLed out from under
    the task — where re-running the identical input elsewhere could
    well succeed. Callers with their own retry ledgers (the scan
    coordinator) treat transient failures as re-queueable.
    """

    def __init__(
        self,
        label: str,
        index: int,
        attempts: int,
        cause: BaseException,
        campaign: Optional[str] = None,
        transient: bool = False,
    ) -> None:
        super().__init__()
        self.label = label
        self.index = index
        self.attempts = attempts
        self.cause = cause
        self.campaign = campaign
        self.transient = transient
        self.__cause__ = cause

    def _origin(self) -> str:
        origin = f"task {self.label}[{self.index}]"
        if self.campaign:
            origin += f" (campaign {self.campaign!r})"
        return origin

    def __str__(self) -> str:
        return (
            f"{self._origin()} failed after {self.attempts} attempt(s): "
            f"{self.cause!r}"
        )


class TaskTimeout(TaskFailure):
    """A task exceeded its per-task wall-clock budget."""

    def __init__(
        self,
        label: str,
        index: int,
        timeout: float,
        campaign: Optional[str] = None,
    ) -> None:
        cause = TimeoutError(f"exceeded {timeout:.3f}s")
        super().__init__(label, index, 1, cause, campaign=campaign)
        self.timeout = timeout

    def __str__(self) -> str:
        return (
            f"{self._origin()} timed out on attempt {self.attempts}: "
            f"exceeded {self.timeout:.3f}s"
        )


class Sequencer:
    """A turnstile handing out turns in strict submission order.

    Threads call ``with sequencer.turn(index):`` around their mutating
    step; the block runs only once every lower index has completed its
    own block. Effect-free work before/after the block overlaps freely.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._condition = threading.Condition()

    @contextmanager
    def turn(self, index: int) -> Iterator[None]:
        with self._condition:
            while self._next != index:
                self._condition.wait()
        try:
            yield
        finally:
            with self._condition:
                self._next = index + 1
                self._condition.notify_all()

    @property
    def completed(self) -> int:
        """How many turns have fully completed."""
        with self._condition:
            return self._next


@dataclass
class Campaign:
    """One independently runnable unit of campaign work.

    The paper's motivating case: a §4 confirmation campaign in one ISP.
    ``key`` names the campaign for merging and metrics; ``run`` does the
    work.
    """

    key: str
    run: Callable[[], Any]


@dataclass
class CampaignOutcome:
    """What one campaign produced (or how it failed)."""

    key: str
    result: Any = None
    error: Optional[TaskFailure] = None
    attempts: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class Executor:
    """Thread-pool fan-out with deterministic, submission-ordered merges."""

    def __init__(
        self,
        workers: int = 1,
        *,
        backend: str = THREAD_BACKEND,
        metrics: Optional[Metrics] = None,
        name: str = "exec",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; one of {BACKENDS}"
            )
        self.workers = workers
        self.backend = backend
        self.name = name
        self.metrics = metrics if metrics is not None else Metrics()

    # ------------------------------------------------------------ internals
    def _run_once(
        self,
        fn: Callable[[T], R],
        item: T,
        index: int,
        label: str,
        retry: RetryPolicy,
    ) -> Tuple[R, int]:
        """Run one task with retries; returns (result, attempts_used).

        Retry eligibility is delegated to :meth:`RetryPolicy.should_retry`
        so permanent network errors (NXDOMAIN and friends) fail
        immediately even under a generous budget.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(item), attempt
            except retry.retry_on as exc:
                if not retry.should_retry(exc, attempt):
                    self.metrics.incr(f"{label}.failures")
                    raise TaskFailure(label, index, attempt, exc) from exc
                self.metrics.incr(f"{label}.retries")
                if retry.backoff_seconds:
                    time.sleep(retry.backoff_seconds * attempt)

    # ------------------------------------------------------------- fan-out
    def map_unordered(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        label: str = "task",
        retry: RetryPolicy = NO_RETRY,
        timeout: Optional[float] = None,
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, outcome)`` pairs as tasks complete.

        ``outcome`` is the task's return value or a :class:`TaskFailure`
        (including :class:`TaskTimeout`); the caller decides what to do
        with failures. With ``workers=1`` tasks run inline in submission
        order, making this the sequential reference behaviour.
        """
        pending = list(items)
        self.metrics.incr(f"{label}.tasks", len(pending))
        if self.workers == 1 or len(pending) <= 1:
            for index, item in enumerate(pending):
                started = time.perf_counter()
                try:
                    result, _attempts = self._run_once(
                        fn, item, index, label, retry
                    )
                except TaskFailure as failure:
                    yield index, failure
                    continue
                elapsed = time.perf_counter() - started
                if timeout is not None and elapsed > timeout:
                    # Best effort in inline mode: the work already ran,
                    # but the budget violation must still surface.
                    self.metrics.incr(f"{label}.timeouts")
                    yield index, TaskTimeout(label, index, timeout)
                else:
                    yield index, result
            return

        if self.backend == PROCESS_BACKEND:
            yield from self._map_unordered_process(
                fn, pending, label, retry, timeout
            )
            return

        pool_size = min(self.workers, len(pending))
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix=f"{self.name}-{label}"
        ) as pool:
            futures = {
                pool.submit(self._run_once, fn, item, index, label, retry): index
                for index, item in enumerate(pending)
            }
            deadline = (
                time.perf_counter() + timeout if timeout is not None else None
            )
            outstanding = set(futures)
            while outstanding:
                budget = None
                if deadline is not None:
                    budget = max(0.0, deadline - time.perf_counter())
                done, outstanding = wait(
                    outstanding, timeout=budget, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Per-batch budget exhausted: everything still
                    # outstanding times out. Threads cannot be killed;
                    # the futures are abandoned but their effects are
                    # bounded by the Sequencer discipline of callers.
                    for future in outstanding:
                        future.cancel()
                        index = futures[future]
                        self.metrics.incr(f"{label}.timeouts")
                        yield index, TaskTimeout(label, index, timeout or 0.0)
                    return
                for future in done:
                    index = futures[future]
                    try:
                        result, _attempts = future.result()
                    except TaskFailure as failure:
                        yield index, failure
                    else:
                        yield index, result

    def _map_unordered_process(
        self,
        fn: Callable[[T], R],
        pending: List[T],
        label: str,
        retry: RetryPolicy,
        timeout: Optional[float],
    ) -> Iterator[Tuple[int, Any]]:
        """Process-pool fan-out with parent-side retries.

        ``fn`` must be a picklable module-level callable over plain
        data. Retries are orchestrated from the parent (worker processes
        carry no retry state); metrics accounting therefore stays in
        this process, same counters as the thread path.

        A pool worker dying (SIGKILL, OOM) breaks the whole
        ``ProcessPoolExecutor``: every in-flight future is poisoned and
        the pool refuses new submissions. That must not take the fan-out
        down with it — tasks the retry budget still covers re-run in a
        fresh pool; the rest surface as *transient* :class:`TaskFailure`
        values in their own slots, never as a raw ``BrokenProcessPool``.
        """
        pool_size = min(self.workers, len(pending))
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        queue: List[Tuple[int, int, Any]] = [
            (index, 1, item) for index, item in enumerate(pending)
        ]
        while queue:
            pool = ProcessPoolExecutor(max_workers=pool_size)
            futures: Dict[Any, Tuple[int, int, Any]] = {}
            for index, attempt, item in queue:
                futures[pool.submit(fn, item)] = (index, attempt, item)
            queue = []
            broken: Optional[BaseException] = None
            try:
                outstanding = set(futures)
                while outstanding and broken is None:
                    budget = None
                    if deadline is not None:
                        budget = max(0.0, deadline - time.perf_counter())
                    done, outstanding = wait(
                        outstanding,
                        timeout=budget,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        for future in outstanding:
                            future.cancel()
                            index, _attempt, _item = futures[future]
                            self.metrics.incr(f"{label}.timeouts")
                            yield index, TaskTimeout(
                                label, index, timeout or 0.0
                            )
                        return
                    for future in done:
                        entry = futures.pop(future)
                        index, attempt, item = entry
                        try:
                            result = future.result()
                        except BrokenProcessPool as exc:
                            broken = exc
                            futures[future] = entry
                            break
                        except Exception as exc:
                            if retry.should_retry(exc, attempt):
                                self.metrics.incr(f"{label}.retries")
                                if retry.backoff_seconds:
                                    time.sleep(retry.backoff_seconds * attempt)
                                try:
                                    replacement = pool.submit(fn, item)
                                except BrokenProcessPool as pool_exc:
                                    broken = pool_exc
                                    queue.append((index, attempt + 1, item))
                                    break
                                futures[replacement] = (index, attempt + 1, item)
                                outstanding.add(replacement)
                                continue
                            self.metrics.incr(f"{label}.failures")
                            failure = TaskFailure(label, index, attempt, exc)
                            failure.__cause__ = exc
                            yield index, failure
                        else:
                            yield index, result
                if broken is not None:
                    for index, attempt, item in futures.values():
                        if retry.should_retry(broken, attempt):
                            self.metrics.incr(f"{label}.retries")
                            queue.append((index, attempt + 1, item))
                        else:
                            self.metrics.incr(f"{label}.failures")
                            yield index, TaskFailure(
                                label, index, attempt, broken, transient=True
                            )
                    queue.sort()
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------ streaming
    def stream(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        label: str = "task",
        retry: RetryPolicy = NO_RETRY,
        window: Optional[int] = None,
        stats: Optional[StreamStats] = None,
    ) -> Iterator[Tuple[int, Any]]:
        """Submission-ordered streaming fan-out with bounded in-flight.

        Unlike :meth:`map_unordered`, ``items`` is consumed lazily and
        at most ``window`` tasks are outstanding (in flight + buffered
        awaiting their turn) at any moment — backpressure for scans
        whose task list or result volume exceeds memory. Results are
        yielded strictly in submission order; a consumer writing them
        straight to a store segment therefore produces output identical
        to a sequential run at any worker count or backend.

        ``window`` defaults to ``max(2, 2 * workers)``. Failures arrive
        in their slot as :class:`TaskFailure` values, never raised, so
        one dead batch cannot tear down a million-host scan.
        """
        if window is None:
            window = max(2, 2 * self.workers)
        if window < 1:
            raise ValueError("window must be >= 1")
        if stats is None:
            stats = StreamStats()
        iterator = enumerate(items)
        if self.workers == 1:
            for index, item in iterator:
                self.metrics.incr(f"{label}.tasks")
                stats.submitted += 1
                if stats.peak_inflight < 1:
                    stats.peak_inflight = 1
                try:
                    result, _attempts = self._run_once(
                        fn, item, index, label, retry
                    )
                except TaskFailure as failure:
                    outcome: Any = failure
                else:
                    outcome = result
                stats.completed += 1
                yield index, outcome
            return

        process = self.backend == PROCESS_BACKEND
        buffered: Dict[int, Any] = {}
        next_yield = 0
        exhausted = False
        # Tasks pulled off the iterator whose submission itself hit a
        # broken pool — resubmitted (same attempt: they never ran) once
        # the pool has been replaced.
        spilled: List[Tuple[int, int, Any]] = []

        def fill(pool: Any, futures: Dict[Any, Tuple[int, int, Any]]) -> None:
            nonlocal exhausted
            while spilled and len(futures) + len(buffered) < window:
                index, attempt, item = spilled.pop(0)
                futures[pool.submit(fn, item)] = (index, attempt, item)
                if len(futures) > stats.peak_inflight:
                    stats.peak_inflight = len(futures)
            while not exhausted and len(futures) + len(buffered) < window:
                try:
                    index, item = next(iterator)
                except StopIteration:
                    exhausted = True
                    return
                self.metrics.incr(f"{label}.tasks")
                stats.submitted += 1
                if process:
                    try:
                        future = pool.submit(fn, item)
                    except BrokenProcessPool:
                        spilled.append((index, 1, item))
                        raise
                else:
                    future = pool.submit(
                        self._run_once, fn, item, index, label, retry
                    )
                futures[future] = (index, 1, item)
                if len(futures) > stats.peak_inflight:
                    stats.peak_inflight = len(futures)

        def settle(
            pool: Any,
            futures: Dict[Any, Tuple[int, int, Any]],
            future: Any,
        ) -> None:
            index, attempt, item = futures.pop(future)
            try:
                result = future.result()
            except TaskFailure as failure:
                buffered[index] = failure
                stats.completed += 1
            except Exception as exc:
                # Only the process path surfaces raw exceptions here;
                # thread tasks wrap retries inside _run_once.
                if process and isinstance(exc, BrokenProcessPool):
                    # The pool died under this future; hand the slot
                    # back so the recovery path below can requeue or
                    # fail it.
                    futures[future] = (index, attempt, item)
                    raise
                if process and retry.should_retry(exc, attempt):
                    self.metrics.incr(f"{label}.retries")
                    if retry.backoff_seconds:
                        time.sleep(retry.backoff_seconds * attempt)
                    try:
                        replacement = pool.submit(fn, item)
                    except BrokenProcessPool:
                        futures[future] = (index, attempt, item)
                        raise
                    futures[replacement] = (index, attempt + 1, item)
                    return
                self.metrics.incr(f"{label}.failures")
                failure = TaskFailure(label, index, attempt, exc)
                failure.__cause__ = exc
                buffered[index] = failure
                stats.completed += 1
            else:
                if not process:
                    result, _attempts = result
                buffered[index] = result
                stats.completed += 1

        pool_size = min(self.workers, window)
        if process:
            pool: Any = ProcessPoolExecutor(max_workers=pool_size)
        else:
            pool = ThreadPoolExecutor(
                max_workers=pool_size,
                thread_name_prefix=f"{self.name}-{label}",
            )
        futures: Dict[Any, Tuple[int, int, Any]] = {}
        try:
            while True:
                while next_yield in buffered:
                    yield next_yield, buffered.pop(next_yield)
                    next_yield += 1
                try:
                    fill(pool, futures)
                    if not futures:
                        break
                    done, _pending = wait(
                        set(futures), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        settle(pool, futures, future)
                except BrokenProcessPool as exc:
                    # A pool worker died (SIGKILL, OOM) and poisoned
                    # every in-flight future. Replace the pool, requeue
                    # what the retry budget covers, and fail the rest in
                    # their own slots as transient TaskFailures — a dead
                    # worker process must never tear down the stream.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=pool_size)
                    stranded = sorted(futures.values())
                    futures.clear()
                    for index, attempt, item in stranded:
                        if retry.should_retry(exc, attempt):
                            self.metrics.incr(f"{label}.retries")
                            spilled.append((index, attempt + 1, item))
                        else:
                            self.metrics.incr(f"{label}.failures")
                            buffered[index] = TaskFailure(
                                label, index, attempt, exc, transient=True
                            )
                            stats.completed += 1
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        label: str = "task",
        retry: RetryPolicy = NO_RETRY,
        timeout: Optional[float] = None,
        on_error: str = RAISE,
    ) -> List[Any]:
        """Apply ``fn`` to every item; results in submission order.

        ``on_error="raise"`` re-raises the lowest-index failure once all
        tasks have settled (sibling results are never corrupted by a
        failing task). ``on_error="collect"`` leaves each failure in its
        result slot as a :class:`TaskFailure` for the caller to inspect.
        """
        if on_error not in (RAISE, COLLECT):
            raise ValueError(f"unknown on_error mode {on_error!r}")
        pending = list(items)
        slots: List[Any] = [None] * len(pending)
        with self.metrics.timer(label):
            for index, outcome in self.map_unordered(
                fn, pending, label=label, retry=retry, timeout=timeout
            ):
                slots[index] = outcome
        if on_error == RAISE:
            for outcome in slots:
                if isinstance(outcome, TaskFailure):
                    raise outcome
        return slots

    def run_campaigns(
        self,
        campaigns: Sequence[Campaign],
        *,
        label: str = "campaign",
        retry: RetryPolicy = NO_RETRY,
        timeout: Optional[float] = None,
        key: Optional[Callable[[CampaignOutcome], Any]] = None,
    ) -> List[CampaignOutcome]:
        """Run independent campaigns concurrently; merge deterministically.

        Mirrors §6.1: campaigns in different ISPs overlap, wall clock is
        the max rather than the sum. Outcomes come back in submission
        order by default (or sorted by ``key``) — never in completion
        order — so downstream reports are identical at any worker count.
        Failures are collected per campaign, not raised: one ISP's dead
        vantage must not abort the other ISPs' campaigns.
        """

        def run_one(campaign: Campaign) -> Tuple[Any, float]:
            started = time.perf_counter()
            result = campaign.run()
            return result, time.perf_counter() - started

        slots = self.map(
            run_one,
            campaigns,
            label=label,
            retry=retry,
            timeout=timeout,
            on_error=COLLECT,
        )
        outcomes: List[CampaignOutcome] = []
        for campaign, outcome in zip(campaigns, slots):
            if isinstance(outcome, TaskFailure):
                outcome.campaign = campaign.key
                outcomes.append(
                    CampaignOutcome(
                        campaign.key, error=outcome, attempts=outcome.attempts
                    )
                )
            else:
                result, elapsed = outcome
                outcomes.append(
                    CampaignOutcome(
                        campaign.key, result=result, elapsed_seconds=elapsed
                    )
                )
        if key is not None:
            outcomes.sort(key=key)
        return outcomes

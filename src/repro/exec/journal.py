"""Write-ahead study journal: append-only, CRC-protected JSONL.

The confirmation methodology is inherently long-running — submitted
sites are only re-tested after a 3-5 day categorization window (§4.2) —
so a production-scale reproduction must survive process death
mid-campaign. The journal is the durable record of *what the study was
doing*: one line per event (study begin, unit start, unit commit,
snapshot written, study final), each carrying a schema version, a
monotonic sequence number, and a CRC32 over its canonical encoding.

Recovery semantics (shared with :mod:`repro.exec.checkpoint`):

- **Torn tail** — a partially written last line (the classic
  power-loss artifact of an append-only log) is dropped and reported;
  every complete record before it is kept.
- **Corrupt record** — a CRC or JSON failure mid-file invalidates that
  record *and everything after it* (a WAL's suffix is meaningless once
  its prefix is broken); the valid prefix is kept and the damage is
  reported.
- **Version skew** — a record written by a different schema version is
  treated the same way as corruption: the reader keeps the valid
  prefix and reports the skew rather than guessing at field meanings.

None of these degrade to a crash or to silent recomputation: the
reader always returns the longest valid prefix plus a
:class:`RecoveryReport` that says exactly what was discarded and why.
Resume then replays deterministic work from the newest valid snapshot
(see :mod:`repro.exec.checkpoint`).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bump on any incompatible change to the record encoding.
JOURNAL_SCHEMA_VERSION = 1

#: The journal file name inside a ``--journal`` directory.
JOURNAL_FILENAME = "journal.jsonl"


class JournalError(Exception):
    """A journal could not be written (never raised for read damage)."""


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal entry."""

    seq: int
    kind: str
    payload: Dict[str, Any]

    def encode(self) -> bytes:
        """Canonical line encoding, CRC last so it covers the rest."""
        body = _canonical(
            {
                "seq": self.seq,
                "v": JOURNAL_SCHEMA_VERSION,
                "kind": self.kind,
                "payload": self.payload,
            }
        )
        crc = zlib.crc32(body.encode("utf-8"))
        return f'{{"crc": {crc}, "rec": {body}}}\n'.encode("utf-8")


def _canonical(value: Dict[str, Any]) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class RecoveryReport:
    """An explicit account of what recovery kept, dropped, and chose.

    Populated by the journal reader (records kept/discarded, damage
    notes) and extended by the snapshot loader (snapshots considered,
    rejected, and the one actually used). A degraded journal never
    surfaces as an exception — it surfaces here.
    """

    journal_path: Optional[str] = None
    records_kept: int = 0
    records_discarded: int = 0
    notes: List[str] = field(default_factory=list)
    snapshots_rejected: List[str] = field(default_factory=list)
    snapshot_used: Optional[str] = None
    units_replayed: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.notes and not self.snapshots_rejected

    def note(self, message: str) -> None:
        self.notes.append(message)

    def describe(self) -> List[str]:
        lines = [
            f"journal: {self.journal_path or '(none)'} — "
            f"{self.records_kept} record(s) kept, "
            f"{self.records_discarded} discarded"
        ]
        for note in self.notes:
            lines.append(f"  damage: {note}")
        for rejected in self.snapshots_rejected:
            lines.append(f"  snapshot rejected: {rejected}")
        lines.append(
            f"resume point: {self.snapshot_used or 'scratch (no valid snapshot)'}"
        )
        if self.units_replayed:
            lines.append(
                f"replaying {len(self.units_replayed)} unit(s): "
                + ", ".join(self.units_replayed)
            )
        return lines


def read_journal(
    path: Path, report: Optional[RecoveryReport] = None
) -> Tuple[List[JournalRecord], RecoveryReport]:
    """Read the longest valid prefix of a journal file.

    Never raises for damage: torn tails, CRC failures, version skew,
    and sequence gaps all truncate the readable prefix and leave a
    note in the returned :class:`RecoveryReport`.
    """
    report = report if report is not None else RecoveryReport()
    report.journal_path = str(path)
    records: List[JournalRecord] = []
    if not path.exists():
        return records, report
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    torn = b""
    if lines and lines[-1] != b"":
        # No trailing newline: the final write was interrupted.
        torn = lines[-1]
        lines = lines[:-1]
    lines = [line for line in lines if line != b""]
    expected_seq = 0
    discarded_from: Optional[int] = None
    for index, line in enumerate(lines):
        damage = _validate_line(line, expected_seq)
        if isinstance(damage, str):
            report.note(f"record {index}: {damage}; discarding it and "
                        f"{len(lines) - index - 1} subsequent record(s)")
            discarded_from = index
            break
        records.append(damage)
        expected_seq = damage.seq + 1
    if discarded_from is not None:
        report.records_discarded += len(lines) - discarded_from
    if torn:
        report.records_discarded += 1
        report.note("torn tail: final record is incomplete (no newline); dropped")
    report.records_kept = len(records)
    return records, report


def _validate_line(line: bytes, expected_seq: int):
    """A :class:`JournalRecord`, or a damage description string."""
    try:
        outer = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "unparseable line"
    if not isinstance(outer, dict) or "crc" not in outer or "rec" not in outer:
        return "malformed envelope"
    rec = outer["rec"]
    if not isinstance(rec, dict):
        return "malformed envelope"
    body = _canonical(rec)
    if zlib.crc32(body.encode("utf-8")) != outer["crc"]:
        return "CRC mismatch"
    version = rec.get("v")
    if version != JOURNAL_SCHEMA_VERSION:
        return (
            f"schema version skew (journal v{version}, "
            f"reader v{JOURNAL_SCHEMA_VERSION})"
        )
    seq = rec.get("seq")
    if not isinstance(seq, int) or seq != expected_seq:
        return f"sequence break (saw {seq!r}, expected {expected_seq})"
    kind = rec.get("kind")
    payload = rec.get("payload")
    if not isinstance(kind, str) or not isinstance(payload, dict):
        return "malformed record body"
    return JournalRecord(seq=seq, kind=kind, payload=payload)


def valid_prefix_length(path: Path) -> int:
    """Byte length of the longest valid record prefix (for truncation)."""
    records, _report = read_journal(path)
    return sum(len(record.encode()) for record in records)


class JournalWriter:
    """Appends CRC-protected records, fsyncing each one.

    ``after_write`` is a test seam: the crash-matrix harness installs a
    hook that raises after the Nth durable record, simulating a SIGKILL
    at every possible journal position. Because the simulated world
    lives entirely in memory, "the hook raised and the process
    abandoned its objects" is exactly as destructive as a real kill.
    """

    def __init__(
        self,
        path: Path,
        *,
        fsync: bool = True,
        after_write: Optional[Callable[[JournalRecord], None]] = None,
    ) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self.after_write = after_write
        self._next_seq = 0
        self._handle = None

    @classmethod
    def create(cls, path: Path, **kwargs: Any) -> "JournalWriter":
        """Start a fresh journal (refuses to clobber an existing one)."""
        path = Path(path)
        if path.exists():
            raise JournalError(f"journal already exists: {path}")
        path.parent.mkdir(parents=True, exist_ok=True)
        return cls(path, **kwargs)

    @classmethod
    def resume(
        cls, path: Path, **kwargs: Any
    ) -> Tuple["JournalWriter", List[JournalRecord], RecoveryReport]:
        """Reopen a journal, truncating any damaged suffix first.

        Returns the writer positioned after the valid prefix, plus the
        prefix itself and the recovery report describing any damage.
        """
        path = Path(path)
        records, report = read_journal(path)
        keep = sum(len(record.encode()) for record in records)
        if path.exists() and keep < path.stat().st_size:
            with open(path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
        writer = cls(path, **kwargs)
        writer._next_seq = records[-1].seq + 1 if records else 0
        return writer, records, report

    # --------------------------------------------------------------- write
    def append(
        self, kind: str, payload: Dict[str, Any], *, durable: bool = True
    ) -> JournalRecord:
        """Append one record; ``durable=False`` skips the per-record
        fsync (group commit: the next durable append persists it too,
        since fsync flushes all buffered data for the file). Only safe
        for records whose loss a resume tolerates — e.g. an in-flight
        round marker that recovery would simply re-run."""
        record = JournalRecord(self._next_seq, kind, dict(payload))
        encoded = record.encode()
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        self._handle.write(encoded)
        self._handle.flush()
        if self._fsync and durable:
            os.fsync(self._handle.fileno())
        self._next_seq += 1
        if self.after_write is not None:
            self.after_write(record)
        return record

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

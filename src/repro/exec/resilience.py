"""Study-level resilience: retries, circuit breakers, and quarantine.

The paper's campaigns ran over infrastructure that failed constantly —
in-country vantage points churned, test domains intermittently failed to
resolve, and links dropped mid-measurement (§4, §6.1). Follow-up work
(probe-list generation, remote-measurement studies) is explicit that
transient noise must be retried and filtered out before any blocking
verdict is trustworthy. The :class:`ResilientRunner` is where that
policy lives:

- **Retry with backoff.** Transient :class:`~repro.net.errors.NetError`
  failures (the ``transient`` flag) are re-attempted up to a budget,
  each attempt scoped via :func:`repro.world.faults.fault_attempt` so a
  seeded fault plan re-rolls its dice, with exponential backoff and
  seeded jitter between attempts.
- **Permanent failures quarantine immediately.** An NXDOMAIN is an
  answer, not noise; retrying it wastes budget and masks signal.
- **Circuit breakers per endpoint.** A (vantage x product) endpoint that
  keeps failing trips open and rejects further probes until a cooldown
  on the *simulation* clock elapses, then half-opens for a single trial
  probe (closed -> open -> half-open -> closed). Breakers are only
  attached where calls commit in submission order (the sequenced
  measurement paths), so their state machine is worker-count invariant.
- **Dead letters, not lost letters.** Every probe that exhausts its
  budget leaves a :class:`QuarantineRecord`; per-stage
  :class:`StageCoverage` counters (attempted/succeeded/retried/
  quarantined) let a degraded study report exactly what it did not
  measure instead of silently under-counting.

The runner never converts a failure into data: a failed probe yields an
unsuccessful :class:`CallOutcome`, and callers map that to an explicit
"insufficient data" verdict — never to "blocked" or "accessible".
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from repro.exec.metrics import Metrics
from repro.net.errors import NetError
from repro.world.clock import MINUTES_PER_DAY, SimTime
from repro.world.faults import fault_attempt
from repro.world.rng import derive_rng

T = TypeVar("T")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for one study's resilience layer."""

    #: Retries *after* the first attempt for transient failures.
    max_retries: int = 2
    #: Base wall-clock backoff before retry ``n`` (0 disables sleeping).
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 0.05
    #: Seed for the jitter stream (0.5x-1.5x multiplier per retry).
    jitter_seed: int = 0
    #: Consecutive endpoint failures before the breaker opens.
    breaker_threshold: int = 3
    #: Sim-clock cooldown before an open breaker half-opens.
    breaker_cooldown_days: float = 1.0
    #: Re-raise instead of quarantining (abort the study on first fault).
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_days <= 0:
            raise ValueError("breaker_cooldown_days must be > 0")

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Wall-clock delay before retry ``attempt`` (1-based), jittered.

        Jitter is drawn from a stream addressed by (seed, key, attempt)
        so the schedule is reproducible and two endpoints never thunder
        in lockstep.
        """
        if self.backoff_base <= 0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
        )
        rng = derive_rng(self.jitter_seed, "backoff", key, str(attempt))
        return delay * (0.5 + rng.random())


class BreakerState(enum.Enum):
    """Circuit-breaker states, in the classic closed/open/half-open trio."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-endpoint failure gate driven by the simulation clock.

    Not thread-safe by itself: callers route all traffic for one
    endpoint through submission-ordered code (the measurement
    sequencer), which is also what makes its transitions deterministic.
    """

    def __init__(
        self,
        name: str,
        *,
        threshold: int = 3,
        cooldown_minutes: int = MINUTES_PER_DAY,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_minutes <= 0:
            raise ValueError("cooldown_minutes must be > 0")
        self.name = name
        self.threshold = threshold
        self.cooldown_minutes = cooldown_minutes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[SimTime] = None
        self.trips = 0

    def allow(self, now: SimTime) -> bool:
        """Whether a probe may proceed at sim time ``now``.

        An OPEN breaker half-opens once the cooldown has elapsed,
        admitting exactly the probe that asked.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.cooldown_minutes:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the trial probe

    def record_success(self, now: SimTime) -> None:
        self.consecutive_failures = 0
        self.state = BreakerState.CLOSED
        self.opened_at = None

    def record_failure(self, now: SimTime) -> bool:
        """Count a failure; True when this one tripped the breaker open."""
        if self.state is BreakerState.HALF_OPEN:
            # The trial probe failed: straight back to OPEN.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.trips += 1
            return True
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.trips += 1
            return True
        return False


@dataclass(frozen=True)
class QuarantineRecord:
    """A dead-letter entry: one probe that resilience gave up on."""

    stage: str
    key: str
    endpoint: Optional[str]
    attempts: int
    error: str
    short_circuited: bool = False  # rejected by an open breaker, not run

    def __str__(self) -> str:
        how = (
            "short-circuited by open breaker"
            if self.short_circuited
            else f"failed after {self.attempts} attempt(s)"
        )
        endpoint = f" endpoint={self.endpoint}" if self.endpoint else ""
        return f"[{self.stage}] {self.key}{endpoint}: {how}: {self.error}"


@dataclass
class StageCoverage:
    """What one pipeline stage attempted vs. actually measured."""

    attempted: int = 0
    succeeded: int = 0
    retried: int = 0
    quarantined: int = 0
    short_circuited: int = 0

    @property
    def complete(self) -> bool:
        return self.attempted == self.succeeded

    def as_dict(self) -> Dict[str, int]:
        return {
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "short_circuited": self.short_circuited,
        }

    def describe(self) -> str:
        return (
            f"{self.succeeded}/{self.attempted} succeeded, "
            f"{self.retried} retried, {self.quarantined} quarantined"
            + (
                f" ({self.short_circuited} breaker-rejected)"
                if self.short_circuited
                else ""
            )
        )


@dataclass
class CallOutcome:
    """What one resilient call produced."""

    ok: bool
    value: Any = None
    attempts: int = 1
    retried: int = 0
    quarantine: Optional[QuarantineRecord] = None


class ResilientRunner:
    """Retry/backoff/breaker/quarantine wrapper for probe callables.

    One runner serves a whole study; per-stage counters and the
    dead-letter list aggregate across stages. Counter updates are sums
    (order-independent) and quarantine reports are sorted, so the
    aggregate view is identical at any worker count even for stages that
    run unsequenced.
    """

    def __init__(
        self,
        config: ResilienceConfig = ResilienceConfig(),
        *,
        clock: Callable[[], SimTime],
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.config = config
        self._clock = clock
        self.metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        self._stages: Dict[str, StageCoverage] = {}
        self._quarantine: List[QuarantineRecord] = []
        self._breakers: Dict[str, CircuitBreaker] = {}

    # ----------------------------------------------------------- breakers
    def breaker(self, endpoint: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(endpoint)
            if breaker is None:
                breaker = CircuitBreaker(
                    endpoint,
                    threshold=self.config.breaker_threshold,
                    cooldown_minutes=int(
                        self.config.breaker_cooldown_days * MINUTES_PER_DAY
                    ),
                )
                self._breakers[endpoint] = breaker
            return breaker

    # -------------------------------------------------------------- calls
    def _stage(self, stage: str) -> StageCoverage:
        with self._lock:
            coverage = self._stages.get(stage)
            if coverage is None:
                coverage = StageCoverage()
                self._stages[stage] = coverage
            return coverage

    def call(
        self,
        fn: Callable[[], T],
        *,
        stage: str,
        key: str,
        endpoint: Optional[str] = None,
    ) -> CallOutcome:
        """Run ``fn`` with the full resilience policy.

        ``endpoint`` attaches a circuit breaker — pass it only from
        submission-ordered call sites (see class docstring). ``key``
        names the probe for quarantine records and jitter addressing.
        """
        coverage = self._stage(stage)
        with self._lock:
            coverage.attempted += 1
        now = self._clock()
        breaker = self.breaker(endpoint) if endpoint is not None else None
        if breaker is not None and not breaker.allow(now):
            record = QuarantineRecord(
                stage, key, endpoint, 0, "circuit open", short_circuited=True
            )
            with self._lock:
                coverage.quarantined += 1
                coverage.short_circuited += 1
                self._quarantine.append(record)
            self.metrics.incr(f"resilience.{stage}.short_circuited")
            return CallOutcome(ok=False, attempts=0, quarantine=record)

        attempt = 0
        retried = 0
        while True:
            with fault_attempt(attempt):
                try:
                    value = fn()
                except NetError as exc:
                    if self.config.fail_fast:
                        raise
                    transient = getattr(exc, "transient", False)
                    if transient and attempt < self.config.max_retries:
                        attempt += 1
                        retried += 1
                        with self._lock:
                            coverage.retried += 1
                        self.metrics.incr(f"resilience.{stage}.retries")
                        delay = self.config.backoff_delay(key, attempt)
                        if delay:
                            time.sleep(delay)
                        continue
                    now = self._clock()
                    if breaker is not None and breaker.record_failure(now):
                        self.metrics.incr("resilience.breaker_trips")
                    record = QuarantineRecord(
                        stage, key, endpoint, attempt + 1, repr(exc)
                    )
                    with self._lock:
                        coverage.quarantined += 1
                        self._quarantine.append(record)
                    self.metrics.incr(f"resilience.{stage}.quarantined")
                    return CallOutcome(
                        ok=False,
                        attempts=attempt + 1,
                        retried=retried,
                        quarantine=record,
                    )
            if breaker is not None:
                breaker.record_success(self._clock())
            with self._lock:
                coverage.succeeded += 1
            return CallOutcome(
                ok=True, value=value, attempts=attempt + 1, retried=retried
            )

    # --------------------------------------------------------- durability
    def capture_state(self) -> Dict[str, Any]:
        """Plain-data resilience state for study checkpoints.

        Coverage, the dead-letter list, and breaker states are all
        output-visible through :class:`PartialStudyResult`, so a
        resumed study must carry them forward exactly.
        """
        with self._lock:
            return {
                "stages": {
                    stage: coverage.as_dict()
                    for stage, coverage in self._stages.items()
                },
                "quarantine": list(self._quarantine),
                "breakers": {
                    name: {
                        "threshold": breaker.threshold,
                        "cooldown_minutes": breaker.cooldown_minutes,
                        "state": breaker.state.value,
                        "consecutive_failures": breaker.consecutive_failures,
                        "opened_at": (
                            None
                            if breaker.opened_at is None
                            else breaker.opened_at.minutes
                        ),
                        "trips": breaker.trips,
                    }
                    for name, breaker in self._breakers.items()
                },
            }

    def restore_state(self, state: Dict[str, Any]) -> None:
        with self._lock:
            self._stages = {
                stage: StageCoverage(**counters)
                for stage, counters in state["stages"].items()
            }
            self._quarantine = list(state["quarantine"])
            self._breakers = {}
            for name, saved in state["breakers"].items():
                breaker = CircuitBreaker(
                    name,
                    threshold=saved["threshold"],
                    cooldown_minutes=saved["cooldown_minutes"],
                )
                breaker.state = BreakerState(saved["state"])
                breaker.consecutive_failures = saved["consecutive_failures"]
                breaker.opened_at = (
                    None
                    if saved["opened_at"] is None
                    else SimTime(saved["opened_at"])
                )
                breaker.trips = saved["trips"]
                self._breakers[name] = breaker

    # ------------------------------------------------------------ reports
    def coverage(self) -> Dict[str, StageCoverage]:
        """Per-stage counters (copies, sorted by stage name)."""
        with self._lock:
            return {
                stage: StageCoverage(**self._stages[stage].as_dict())
                for stage in sorted(self._stages)
            }

    def quarantined(self) -> List[QuarantineRecord]:
        """The dead-letter list, sorted for scheduling independence."""
        with self._lock:
            return sorted(
                self._quarantine,
                key=lambda r: (r.stage, r.key, r.short_circuited),
            )

    def breaker_states(self) -> Dict[str, Tuple[str, int]]:
        """endpoint -> (state, trips) for reports and tests."""
        with self._lock:
            return {
                name: (breaker.state.value, breaker.trips)
                for name, breaker in sorted(self._breakers.items())
            }

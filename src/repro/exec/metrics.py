"""Lightweight execution instrumentation.

Counters and wall-clock timers for the pipeline's stages and fan-outs.
The numbers here describe *how the reproduction ran* (tasks, retries,
cache traffic, stage durations) — never *what it measured* — so they are
deliberately kept out of :class:`~repro.core.pipeline.StudyReport`:
study output must stay byte-identical across worker counts while
timings, by nature, are not.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List


@dataclass
class TimerStats:
    """Aggregate wall-clock stats for one named timer."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def record(self, elapsed: float) -> None:
        self.calls += 1
        self.total_seconds += elapsed
        if elapsed > self.max_seconds:
            self.max_seconds = elapsed

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Metrics:
    """Thread-safe counters and timers with a per-stage summary."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStats] = {}

    # ----------------------------------------------------------- counters
    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------- timers
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            with self._lock:
                stats = self._timers.setdefault(name, TimerStats())
                stats.record(elapsed)

    def timer_stats(self, name: str) -> TimerStats:
        """A snapshot copy — the live stats object keeps mutating under
        concurrent ``timer`` exits and must not escape the lock."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                return TimerStats()
            return TimerStats(
                calls=stats.calls,
                total_seconds=stats.total_seconds,
                max_seconds=stats.max_seconds,
            )

    # ------------------------------------------------------------ reports
    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "timers": {
                    name: {
                        "calls": stats.calls,
                        "total_seconds": stats.total_seconds,
                        "mean_seconds": stats.mean_seconds,
                        "max_seconds": stats.max_seconds,
                    }
                    for name, stats in sorted(self._timers.items())
                },
            }

    def summary_lines(self) -> List[str]:
        """Human-readable per-stage summary for the CLI."""
        snapshot = self.as_dict()
        lines: List[str] = []
        timers = snapshot["timers"]
        if timers:
            lines.append("stage timings:")
            for name, stats in timers.items():  # type: ignore[union-attr]
                lines.append(
                    f"  {name:24s} {stats['calls']:5d} call(s)  "
                    f"total {stats['total_seconds']:8.3f}s  "
                    f"mean {stats['mean_seconds']:8.4f}s"
                )
        counters = snapshot["counters"]
        if counters:
            lines.append("counters:")
            for name, value in counters.items():  # type: ignore[union-attr]
                lines.append(f"  {name:32s} {value}")
        if not lines:
            lines.append("no execution metrics recorded")
        return lines

    def summary(self) -> str:
        return "\n".join(self.summary_lines())

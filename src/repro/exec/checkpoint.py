"""Atomic study snapshots: durable checkpoints between journal records.

A snapshot is the *state* half of the durability story (the journal in
:mod:`repro.exec.journal` is the *intent* half): a single file holding
everything a resumed process needs to continue the campaign from a unit
boundary and still produce byte-identical output — completed unit
results, the sim-clock position, every vendor's RNG/portal/database
delta, middlebox counters, the world's campaign-domain delta and
address-pool cursors, lookup-cache contents, and the resilience layer's
breaker/quarantine/coverage state.

Write protocol (crash-safe by construction):

1. serialize to ``<name>.tmp`` in the snapshot directory,
2. flush + fsync the temp file,
3. ``os.replace`` onto the final name (atomic on POSIX),
4. fsync the directory so the rename itself is durable.

A reader therefore never observes a half-written snapshot: either the
old file, the new file, or a ``.tmp`` it ignores. Each snapshot embeds
a schema version, a fingerprint of the study's identity (seed,
products, scenario knobs, fault plan), and a SHA-256 over the state
blob; :func:`load_latest_snapshot` walks candidates newest-first and
degrades to the next older one — with an explicit note in the
:class:`~repro.exec.journal.RecoveryReport` — when any check fails.

The state blob itself is a pickled plain-data tree (no world object —
service closures make the live world unpicklable by design; see
docs/methodology.md, "Durability & resume"). :func:`encode_state` /
:func:`decode_state` are the shared codec, also used by the
``PartialStudyResult`` round-trip tests.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exec.journal import RecoveryReport

#: Bump on any incompatible change to the snapshot layout.
SNAPSHOT_SCHEMA_VERSION = 1

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".ckpt"


class CheckpointError(Exception):
    """A snapshot could not be written (never raised for read damage)."""


def fingerprint(identity: Dict[str, Any]) -> str:
    """Stable digest of a study's identity (seed, products, knobs, plan).

    Resume refuses to mix state across identities: a snapshot written
    by a different seed, product selection, scenario configuration, or
    fault plan fingerprints differently and is rejected with a note.
    """
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- codec
def encode_state(state: Any) -> Dict[str, str]:
    """Pickle + compress + base64 a plain-data state tree.

    Compression level 1: snapshots are written once per study unit on
    the campaign's critical path, so encode speed matters more than the
    last few percent of ratio (the blobs are small either way).
    """
    blob = zlib.compress(
        pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL), 1
    )
    return {
        "blob": base64.b64encode(blob).decode("ascii"),
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


def decode_state(encoded: Dict[str, str]) -> Any:
    """Inverse of :func:`encode_state`; raises ``ValueError`` on damage."""
    try:
        blob = base64.b64decode(encoded["blob"].encode("ascii"), validate=True)
    except Exception as exc:
        raise ValueError(f"undecodable state blob: {exc}") from exc
    digest = hashlib.sha256(blob).hexdigest()
    if digest != encoded.get("sha256"):
        raise ValueError("state blob SHA-256 mismatch")
    return pickle.loads(zlib.decompress(blob))


# ------------------------------------------------------------------ snapshots
@dataclass(frozen=True)
class Snapshot:
    """A loaded-and-verified snapshot."""

    path: Path
    seq: int
    state: Any


def snapshot_path(directory: Path, seq: int) -> Path:
    return Path(directory) / f"{_SNAPSHOT_PREFIX}{seq:08d}{_SNAPSHOT_SUFFIX}"


def write_snapshot(
    directory: Path, *, seq: int, identity_fingerprint: str, state: Any
) -> Path:
    """Atomically persist ``state`` as snapshot ``seq``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = snapshot_path(directory, seq)
    document = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "seq": seq,
        "fingerprint": identity_fingerprint,
    }
    document.update(encode_state(state))
    temp = final.with_suffix(final.suffix + ".tmp")
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, final)
        _fsync_directory(directory)
    except OSError as exc:
        raise CheckpointError(f"cannot write snapshot {final}: {exc}") from exc
    finally:
        if temp.exists():
            temp.unlink()
    return final


def _fsync_directory(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def list_snapshots(directory: Path) -> List[Path]:
    """Snapshot files in the directory, oldest first; ignores temp files."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith(_SNAPSHOT_PREFIX)
        and path.name.endswith(_SNAPSHOT_SUFFIX)
    )


def load_latest_snapshot(
    directory: Path,
    *,
    identity_fingerprint: str,
    report: Optional[RecoveryReport] = None,
) -> Optional[Snapshot]:
    """The newest snapshot that verifies, or None.

    Walks candidates newest-first; anything unreadable, checksum-bad,
    schema-skewed, or written under a different study identity is
    skipped with an explicit note, and the next older candidate is
    tried — damaged durability state degrades, it never crashes.
    """
    report = report if report is not None else RecoveryReport()
    for path in reversed(list_snapshots(directory)):
        problem = None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problem = f"unreadable ({exc})"
            document = None
        if document is not None:
            if document.get("schema") != SNAPSHOT_SCHEMA_VERSION:
                problem = (
                    f"schema version skew (snapshot "
                    f"v{document.get('schema')}, reader "
                    f"v{SNAPSHOT_SCHEMA_VERSION})"
                )
            elif document.get("fingerprint") != identity_fingerprint:
                problem = "study identity mismatch (seed/products/plan differ)"
            else:
                try:
                    state = decode_state(document)
                except ValueError as exc:
                    problem = str(exc)
        if problem is not None:
            report.snapshots_rejected.append(f"{path.name}: {problem}")
            continue
        report.snapshot_used = path.name
        return Snapshot(path=path, seq=int(document["seq"]), state=state)
    return None

"""repro.exec — deterministic parallel execution substrate.

The paper's scalability argument (§6.1/§7) is that confirmation
campaigns in different ISPs run *concurrently*: wall clock is the max of
the per-ISP costs, not the sum (:mod:`repro.core.scale` already models
this). This package makes that concurrency real for the reproduction
while keeping its defining property — every run is a pure function of
(seed, config) — intact:

- :mod:`repro.exec.executor` — a thread-pool executor whose fan-out APIs
  merge results in a stable, submission-ordered (seed-independent) way,
  with per-task retry/timeout semantics, plus a :class:`Sequencer`
  turnstile that forces side-effectful simulation steps to commit in
  submission order so parallel runs stay byte-identical to sequential
  ones.
- :mod:`repro.exec.cache` — thread-safe memoization for the hot lookup
  paths (MaxMind geo, Team Cymru ASN, DNS resolution, Shodan banner
  queries) with hit/miss counters and explicit invalidation.
- :mod:`repro.exec.metrics` — counters, timers and per-stage summaries
  surfaced through the CLI and :mod:`repro.analysis.report`.
- :mod:`repro.exec.journal` / :mod:`repro.exec.checkpoint` — the
  durability layer: a CRC-protected write-ahead journal plus atomic
  state snapshots at study-unit boundaries, so multi-day campaigns
  survive process death and resume byte-identically (CLI ``--journal``
  / ``--resume``).
"""

from repro.exec.cache import CacheStats, CachedFunction, MemoCache, StudyCaches
from repro.exec.checkpoint import Snapshot, load_latest_snapshot, write_snapshot
from repro.exec.journal import JournalRecord, JournalWriter, RecoveryReport
from repro.exec.executor import (
    BACKENDS,
    Campaign,
    CampaignOutcome,
    Executor,
    PROCESS_BACKEND,
    RetryPolicy,
    Sequencer,
    StreamStats,
    TaskFailure,
    TaskTimeout,
    THREAD_BACKEND,
)
from repro.exec.metrics import Metrics, TimerStats

__all__ = [
    "BACKENDS",
    "CacheStats",
    "CachedFunction",
    "Campaign",
    "CampaignOutcome",
    "Executor",
    "PROCESS_BACKEND",
    "StreamStats",
    "THREAD_BACKEND",
    "JournalRecord",
    "JournalWriter",
    "MemoCache",
    "Metrics",
    "RecoveryReport",
    "RetryPolicy",
    "Sequencer",
    "Snapshot",
    "StudyCaches",
    "TaskFailure",
    "TaskTimeout",
    "TimerStats",
    "load_latest_snapshot",
    "write_snapshot",
]

"""Memoization caches for the hot lookup paths.

The identification pipeline hammers a handful of pure lookups: MaxMind
country mapping (once per banner record *and* once per candidate), Team
Cymru whois, DNS resolution (every fetch hop re-resolves its hostname),
and Shodan banner queries. All are deterministic functions of their
input for a fixed world state, so memoizing them is semantics-preserving
— provided invalidation is explicit where the world does change (domain
registration and teardown during §4 campaigns re-point DNS).

Caches are thread-safe so the parallel executor can share them across
workers, and every cache keeps hit/miss/invalidation counters that
surface in the execution summary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generic, Hashable, List, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    """Traffic counters for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MemoCache(Generic[K, V]):
    """A thread-safe memo table with explicit invalidation.

    Failures are never cached: a compute function that raises leaves the
    cache untouched, so transient faults cannot poison later lookups.
    """

    def __init__(self, name: str = "cache") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._data: Dict[K, V] = {}
        self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    # ------------------------------------------------------------- access
    def get_or_compute(self, key: K, compute: Callable[[], V]) -> V:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._stats.hits += 1
                return value  # type: ignore[return-value]
            self._stats.misses += 1
        # Compute outside the lock: lookups against the world can be
        # slow, and a raising compute must not poison the cache. Two
        # racing threads may both compute; both write the same value
        # (the functions memoized here are deterministic), so the race
        # is benign.
        value = compute()
        with self._lock:
            self._data[key] = value
        return value

    def peek(self, key: K) -> Optional[V]:
        """The cached value, or None — never counts as a hit or miss."""
        with self._lock:
            return self._data.get(key)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data

    # ------------------------------------------------------- invalidation
    def invalidate(self, key: K) -> bool:
        """Drop one entry; True when something was actually dropped."""
        with self._lock:
            present = self._data.pop(key, _MISSING) is not _MISSING
            if present:
                self._stats.invalidations += 1
            return present

    def clear(self) -> int:
        """Drop everything; returns how many entries were dropped."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            self._stats.invalidations += dropped
            return dropped

    # --------------------------------------------------------- durability
    def capture_contents(self) -> Dict[K, V]:
        """The memo table as plain data for study checkpoints.

        Stats are instrumentation, not state: a resumed run restarts
        its counters, the same way wall-clock timings restart.
        """
        with self._lock:
            return dict(self._data)

    def restore_contents(self, contents: Dict[K, V]) -> None:
        with self._lock:
            self._data = dict(contents)

    # -------------------------------------------------------------- stats
    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                self._stats.hits,
                self._stats.misses,
                self._stats.invalidations,
            )


class CachedFunction(Generic[K, V]):
    """A single-argument function memoized through a :class:`MemoCache`."""

    def __init__(self, fn: Callable[[K], V], cache: MemoCache[K, V]) -> None:
        self._fn = fn
        self.cache = cache

    def __call__(self, key: K) -> V:
        return self.cache.get_or_compute(key, lambda: self._fn(key))

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats


class StudyCaches:
    """The bundle of lookup caches one study run shares across stages."""

    def __init__(self) -> None:
        self.geo: MemoCache = MemoCache("geo")
        self.asn: MemoCache = MemoCache("asn")
        self.dns: MemoCache = MemoCache("dns")
        self.banner: MemoCache = MemoCache("banner")

    def all(self) -> List[MemoCache]:
        return [self.geo, self.asn, self.dns, self.banner]

    def wrap_geo(self, fn: Callable[[Any], Any]) -> CachedFunction:
        return CachedFunction(fn, self.geo)

    def wrap_asn(self, fn: Callable[[Any], Any]) -> CachedFunction:
        return CachedFunction(fn, self.asn)

    def capture_state(self) -> Dict[str, Dict]:
        return {cache.name: cache.capture_contents() for cache in self.all()}

    def restore_state(self, state: Dict[str, Dict]) -> None:
        for cache in self.all():
            cache.restore_contents(state.get(cache.name, {}))

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            cache.name: {
                "entries": len(cache),
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "invalidations": cache.stats.invalidations,
                "hit_rate": round(cache.stats.hit_rate, 4),
            }
            for cache in self.all()
        }

    def summary_lines(self) -> List[str]:
        lines = ["lookup caches:"]
        for name, row in self.summary().items():
            lines.append(
                f"  {name:8s} {int(row['entries']):6d} entries  "
                f"{int(row['hits']):6d} hits  {int(row['misses']):6d} misses  "
                f"{int(row['invalidations']):4d} invalidated  "
                f"hit-rate {row['hit_rate']:.0%}"
            )
        return lines

"""The §3 identification pipeline.

Locate candidate installations with keyword × ccTLD Shodan queries
(Table 2 keywords), validate each candidate with WhatWeb signatures, and
map validated IPs to country (MaxMind) and ASN (Team Cymru). The output
re-derives Figure 1 (countries per product) and the §3.2 network
narrative (which kinds of organizations run filters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geo.cymru import WhoisService
from repro.geo.maxmind import GeoDatabase
from repro.net.ip import Ipv4Address
from repro.net.url import COUNTRY_CODE_TLDS
from repro.scan.shodan import ShodanIndex
from repro.scan.signatures import PRODUCT_NAMES, SHODAN_KEYWORDS, Evidence
from repro.scan.whatweb import WhatWebEngine
from repro.world.entities import OrgKind


@dataclass
class Candidate:
    """An IP surfaced by keyword search, before validation."""

    ip: Ipv4Address
    product: str
    matched_queries: List[str] = field(default_factory=list)


@dataclass
class Installation:
    """A validated URL-filter installation."""

    ip: Ipv4Address
    product: str
    country_code: str
    asn: Optional[int]
    as_name: str
    org_name: str
    org_kind: Optional[OrgKind]
    evidence: List[Evidence] = field(default_factory=list)


@dataclass
class IdentificationReport:
    """Everything the identification pipeline produced."""

    candidates: List[Candidate] = field(default_factory=list)
    installations: List[Installation] = field(default_factory=list)
    rejected: List[Candidate] = field(default_factory=list)
    queries_issued: int = 0

    def countries(self, product: str) -> Set[str]:
        """Figure 1: countries where ``product`` installations were found."""
        return {
            inst.country_code
            for inst in self.installations
            if inst.product == product and inst.country_code
        }

    def country_map(self) -> Dict[str, Set[str]]:
        return {product: self.countries(product) for product in PRODUCT_NAMES}

    def by_product(self, product: str) -> List[Installation]:
        return [i for i in self.installations if i.product == product]

    def installations_in(self, country_code: str) -> List[Installation]:
        return [
            i for i in self.installations if i.country_code == country_code
        ]

    def org_kinds(self, product: str) -> Dict[OrgKind, int]:
        """§3.2: what kinds of networks host this product."""
        counts: Dict[OrgKind, int] = {}
        for installation in self.by_product(product):
            if installation.org_kind is not None:
                counts[installation.org_kind] = (
                    counts.get(installation.org_kind, 0) + 1
                )
        return counts

    @property
    def precision(self) -> float:
        """Fraction of candidates surviving validation."""
        total = len(self.candidates)
        return len(self.installations) / total if total else 0.0


class IdentificationPipeline:
    """§3.1: locate → validate → geolocate."""

    def __init__(
        self,
        shodan: ShodanIndex,
        whatweb: WhatWebEngine,
        geo: GeoDatabase,
        whois: WhoisService,
        *,
        cctlds: Optional[Sequence[str]] = None,
    ) -> None:
        self._shodan = shodan
        self._whatweb = whatweb
        self._geo = geo
        self._whois = whois
        self._cctlds = sorted(cctlds if cctlds is not None else COUNTRY_CODE_TLDS)

    @classmethod
    def from_census(
        cls,
        census,
        whatweb: WhatWebEngine,
        geo: GeoDatabase,
        whois: WhoisService,
    ) -> "IdentificationPipeline":
        """§3.1 'ongoing work': drive the pipeline from Internet-Census
        data instead of Shodan — full coverage, no per-query result cap,
        so the keyword x ccTLD expansion becomes unnecessary (a single
        uncapped query per keyword suffices)."""
        index = ShodanIndex(
            census.records, result_cap=1 << 30, geolocate=geo.country_code
        )
        return cls(index, whatweb, geo, whois, cctlds=[])

    def locate(self, products: Sequence[str] = PRODUCT_NAMES) -> List[Candidate]:
        """Keyword × ccTLD search: deliberately not conservative."""
        by_key: Dict[Tuple[int, str], Candidate] = {}
        for product in products:
            for keyword in SHODAN_KEYWORDS[product]:
                for record in self._shodan.search_expanded(keyword, self._cctlds):
                    key = (record.ip.value, product)
                    candidate = by_key.get(key)
                    if candidate is None:
                        candidate = Candidate(record.ip, product)
                        by_key[key] = candidate
                    if keyword not in candidate.matched_queries:
                        candidate.matched_queries.append(keyword)
        return list(by_key.values())

    def validate(self, candidates: Sequence[Candidate]) -> IdentificationReport:
        """WhatWeb validation plus geo/whois mapping."""
        report = IdentificationReport(candidates=list(candidates))
        validated_ips: Set[Tuple[int, str]] = set()
        for candidate in candidates:
            whatweb_report = self._whatweb.identify(candidate.ip)
            match = next(
                (
                    m
                    for m in whatweb_report.matches
                    if m.product == candidate.product
                ),
                None,
            )
            if match is None:
                report.rejected.append(candidate)
                continue
            key = (candidate.ip.value, candidate.product)
            if key in validated_ips:
                continue
            validated_ips.add(key)
            whois_record = self._whois.lookup(candidate.ip)
            report.installations.append(
                Installation(
                    ip=candidate.ip,
                    product=candidate.product,
                    country_code=self._geo.country_code(candidate.ip) or "",
                    asn=whois_record.asn if whois_record else None,
                    as_name=whois_record.as_name if whois_record else "",
                    org_name=whois_record.org_name if whois_record else "",
                    org_kind=whois_record.org_kind if whois_record else None,
                    evidence=match.evidence,
                )
            )
        report.queries_issued = self._shodan.log.query_count
        return report

    def run(self, products: Sequence[str] = PRODUCT_NAMES) -> IdentificationReport:
        """The full §3.1 pipeline."""
        return self.validate(self.locate(products))

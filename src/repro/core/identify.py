"""The §3 identification pipeline.

Locate candidate installations with keyword × ccTLD Shodan queries
(Table 2 keywords), validate each candidate with WhatWeb signatures, and
map validated IPs to country (MaxMind) and ASN (Team Cymru). The output
re-derives Figure 1 (countries per product) and the §3.2 network
narrative (which kinds of organizations run filters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exec.cache import StudyCaches
from repro.exec.executor import Executor
from repro.exec.resilience import ResilientRunner
from repro.geo.cymru import WhoisService
from repro.geo.maxmind import GeoDatabase
from repro.net.ip import Ipv4Address
from repro.net.url import COUNTRY_CODE_TLDS
from repro.products.registry import default_registry
from repro.products.signatures import Evidence
from repro.scan.shodan import ShodanIndex, ShodanQueryLog
from repro.scan.whatweb import WhatWebEngine, WhatWebReport
from repro.world.entities import OrgKind


@dataclass
class Candidate:
    """An IP surfaced by keyword search, before validation."""

    ip: Ipv4Address
    product: str
    matched_queries: List[str] = field(default_factory=list)


@dataclass
class Installation:
    """A validated URL-filter installation."""

    ip: Ipv4Address
    product: str
    country_code: str
    asn: Optional[int]
    as_name: str
    org_name: str
    org_kind: Optional[OrgKind]
    evidence: List[Evidence] = field(default_factory=list)


@dataclass
class IdentificationReport:
    """Everything the identification pipeline produced."""

    candidates: List[Candidate] = field(default_factory=list)
    installations: List[Installation] = field(default_factory=list)
    rejected: List[Candidate] = field(default_factory=list)
    queries_issued: int = 0
    #: The product selection this report covers (registry defaults if
    #: the pipeline was run without an explicit selection).
    products: Tuple[str, ...] = ()

    def countries(self, product: str) -> Set[str]:
        """Figure 1: countries where ``product`` installations were found."""
        return {
            inst.country_code
            for inst in self.installations
            if inst.product == product and inst.country_code
        }

    def country_map(self) -> Dict[str, Set[str]]:
        names = self.products or default_registry().default_names()
        return {product: self.countries(product) for product in names}

    def by_product(self, product: str) -> List[Installation]:
        return [i for i in self.installations if i.product == product]

    def installations_in(self, country_code: str) -> List[Installation]:
        return [
            i for i in self.installations if i.country_code == country_code
        ]

    def org_kinds(self, product: str) -> Dict[OrgKind, int]:
        """§3.2: what kinds of networks host this product."""
        counts: Dict[OrgKind, int] = {}
        for installation in self.by_product(product):
            if installation.org_kind is not None:
                counts[installation.org_kind] = (
                    counts.get(installation.org_kind, 0) + 1
                )
        return counts

    @property
    def precision(self) -> float:
        """Fraction of candidates surviving validation."""
        total = len(self.candidates)
        return len(self.installations) / total if total else 0.0


class IdentificationPipeline:
    """§3.1: locate → validate → geolocate."""

    def __init__(
        self,
        shodan: ShodanIndex,
        whatweb: WhatWebEngine,
        geo: GeoDatabase,
        whois: WhoisService,
        *,
        cctlds: Optional[Sequence[str]] = None,
        executor: Optional[Executor] = None,
        caches: Optional[StudyCaches] = None,
        resilience: Optional[ResilientRunner] = None,
    ) -> None:
        self._shodan = shodan
        self._whatweb = whatweb
        self._geo = geo
        self._whois = whois
        self._cctlds = sorted(cctlds if cctlds is not None else COUNTRY_CODE_TLDS)
        self._executor = executor
        self._resilience = resilience
        # Geo and whois lookups repeat per candidate (and the banner
        # index re-geolocates the same IPs); memoize when caches given.
        if caches is not None:
            self._geo_lookup = caches.wrap_geo(geo.country_code)
            self._whois_lookup = caches.wrap_asn(whois.lookup)
        else:
            self._geo_lookup = geo.country_code
            self._whois_lookup = whois.lookup

    @classmethod
    def from_census(
        cls,
        census,
        whatweb: WhatWebEngine,
        geo: GeoDatabase,
        whois: WhoisService,
    ) -> "IdentificationPipeline":
        """§3.1 'ongoing work': drive the pipeline from Internet-Census
        data instead of Shodan — full coverage, no per-query result cap,
        so the keyword x ccTLD expansion becomes unnecessary (a single
        uncapped query per keyword suffices)."""
        index = ShodanIndex(
            census.records, result_cap=1 << 30, geolocate=geo.country_code
        )
        return cls(index, whatweb, geo, whois, cctlds=[])

    def locate(
        self, products: Optional[Sequence[str]] = None
    ) -> List[Candidate]:
        """Keyword × ccTLD search: deliberately not conservative.

        ``products`` selects registry specs (None → paper defaults).
        Each (product, keyword) expansion is an independent read-only
        query batch, so they fan out across workers. Every task records
        into a private query log; logs and hits merge back in submission
        order, keeping both the candidate list and the query accounting
        identical at any worker count.
        """
        keywords = default_registry().shodan_keywords(products)
        jobs = [
            (product, keyword)
            for product, product_keywords in keywords.items()
            for keyword in product_keywords
        ]

        def run_query(job: Tuple[str, str]):
            product, keyword = job
            task_log = ShodanQueryLog()
            hits = self._shodan.search_expanded(
                keyword, self._cctlds, log=task_log
            )
            return product, keyword, hits, task_log.entries

        executor = self._executor
        if executor is None or executor.workers == 1:
            batches = [run_query(job) for job in jobs]
        else:
            batches = executor.map(run_query, jobs, label="locate")

        by_key: Dict[Tuple[int, str], Candidate] = {}
        for product, keyword, hits, log_entries in batches:
            for query, count in log_entries:
                self._shodan.log.record(query, count)
            for record in hits:
                key = (record.ip.value, product)
                candidate = by_key.get(key)
                if candidate is None:
                    candidate = Candidate(record.ip, product)
                    by_key[key] = candidate
                if keyword not in candidate.matched_queries:
                    candidate.matched_queries.append(keyword)
        return list(by_key.values())

    def validate(self, candidates: Sequence[Candidate]) -> IdentificationReport:
        """WhatWeb validation plus geo/whois mapping.

        Probing and the lookups are read-only, so candidates validate in
        parallel; the accept/reject bookkeeping runs afterwards in
        candidate order so the report is scheduling-independent.

        Under a resilience policy a probe that exhausts its retries is
        quarantined and the candidate rejected: an unreachable console is
        never claimed as a validated installation. No breaker attaches —
        the fan-out is unordered.
        """

        def probe(candidate: Candidate) -> Optional[WhatWebReport]:
            if self._resilience is None:
                return self._whatweb.identify(candidate.ip)
            outcome = self._resilience.call(
                lambda: self._whatweb.identify(candidate.ip),
                stage="validate",
                key=f"{candidate.ip}/{candidate.product}",
            )
            return outcome.value if outcome.ok else None

        executor = self._executor
        if executor is None or executor.workers == 1:
            whatweb_reports = [probe(c) for c in candidates]
        else:
            whatweb_reports = executor.map(
                probe, candidates, label="validate"
            )

        report = IdentificationReport(candidates=list(candidates))
        validated_ips: Set[Tuple[int, str]] = set()
        for candidate, whatweb_report in zip(candidates, whatweb_reports):
            if whatweb_report is None:
                report.rejected.append(candidate)
                continue
            match = next(
                (
                    m
                    for m in whatweb_report.matches
                    if m.product == candidate.product
                ),
                None,
            )
            if match is None:
                report.rejected.append(candidate)
                continue
            key = (candidate.ip.value, candidate.product)
            if key in validated_ips:
                continue
            validated_ips.add(key)
            whois_record = self._whois_lookup(candidate.ip)
            report.installations.append(
                Installation(
                    ip=candidate.ip,
                    product=candidate.product,
                    country_code=self._geo_lookup(candidate.ip) or "",
                    asn=whois_record.asn if whois_record else None,
                    as_name=whois_record.as_name if whois_record else "",
                    org_name=whois_record.org_name if whois_record else "",
                    org_kind=whois_record.org_kind if whois_record else None,
                    evidence=match.evidence,
                )
            )
        report.queries_issued = self._shodan.log.query_count
        return report

    def run(
        self, products: Optional[Sequence[str]] = None
    ) -> IdentificationReport:
        """The full §3.1 pipeline for a product selection (None → defaults)."""
        specs = default_registry().resolve(products)
        report = self.validate(self.locate(products))
        report.products = tuple(spec.name for spec in specs)
        return report

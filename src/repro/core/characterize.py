"""§5: characterizing what confirmed URL filters actually block.

Runs the global and country-local test lists through the measurement
client "within 30 days of the confirmations", attributes blocked URLs to
vendors via the block-page regex corpus, and aggregates by list category
into the Table 4 matrix (six columns of rights-protected content).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exec.executor import Executor
from repro.exec.resilience import ResilientRunner
from repro.measure.classifiers.blockpage import BlockPagePatternMatcher
from repro.measure.classifiers.fusion import VerdictEngine
from repro.measure.client import MeasurementClient, UrlTest
from repro.measure.testlists import (
    ListCategory,
    Table4Column,
    TestList,
    build_global_list,
    build_local_list,
)
from repro.world.clock import SimTime
from repro.world.world import World


@dataclass
class CategoryBlockStats:
    """Per-list-category tallies for one characterization run."""

    category: ListCategory
    tested: int = 0
    blocked: int = 0
    #: URLs whose probe failed outright: no verdict either way. These
    #: count in ``tested`` (the attempt happened) but a Table 4 cell
    #: built from them is annotated as partial.
    insufficient: int = 0
    vendors: Dict[str, int] = field(default_factory=dict)
    #: Sum of fused verdict confidences over all tested URLs (a
    #: quarantined probe adds 0.0, lowering the mean).
    confidence_sum: float = 0.0
    #: Classifier name -> number of URLs it contributed a signal for.
    signal_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def measured(self) -> int:
        """Probes that produced an actual field/lab comparison."""
        return self.tested - self.insufficient

    @property
    def block_rate(self) -> float:
        return self.blocked / self.measured if self.measured else 0.0

    @property
    def mean_confidence(self) -> float:
        """Average fused confidence across attempts (1.0 when untested)."""
        return self.confidence_sum / self.tested if self.tested else 1.0


@dataclass
class CharacterizationResult:
    """Table 4 inputs for one (product, ISP) pair."""

    isp_name: str
    asn: int
    country_code: str
    product_name: str
    measured_at: SimTime
    stats: Dict[str, CategoryBlockStats] = field(default_factory=dict)
    tests: List[UrlTest] = field(default_factory=list)

    def blocked_categories(self) -> List[ListCategory]:
        """List categories with at least one blocked URL."""
        return [s.category for s in self.stats.values() if s.blocked > 0]

    def table4_columns(self) -> Set[Table4Column]:
        """The Table 4 cells this row marks."""
        columns: Set[Table4Column] = set()
        for stats in self.stats.values():
            if stats.blocked > 0 and stats.category.table4_column is not None:
                columns.add(stats.category.table4_column)
        return columns

    def blocks_rights_protected_content(self) -> bool:
        """The paper's headline finding for this deployment."""
        return bool(self.table4_columns())

    def vendor_attribution(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for stats in self.stats.values():
            for vendor, count in stats.vendors.items():
                totals[vendor] = totals.get(vendor, 0) + count
        return totals

    @property
    def confidence(self) -> float:
        """Mean fused confidence across every tested URL (1.0 if none)."""
        tested = sum(s.tested for s in self.stats.values())
        if not tested:
            return 1.0
        total = sum(
            getattr(s, "confidence_sum", 0.0) for s in self.stats.values()
        )
        return total / tested

    def signal_summary(self) -> Dict[str, int]:
        """Classifier name -> URLs it contributed to, sorted by name."""
        totals: Dict[str, int] = {}
        for stats in self.stats.values():
            for name, count in getattr(stats, "signal_counts", {}).items():
                totals[name] = totals.get(name, 0) + count
        return dict(sorted(totals.items()))


class ContentCharacterization:
    """Runs the §5 test-list measurement for one ISP."""

    def __init__(
        self,
        world: World,
        *,
        detector: Optional[BlockPagePatternMatcher] = None,
        engine: Optional[VerdictEngine] = None,
        per_category_global: int = 3,
        per_category_local: int = 2,
        executor: Optional[Executor] = None,
        link_latency: float = 0.0,
        resilience: Optional[ResilientRunner] = None,
    ) -> None:
        self._world = world
        self._engine = engine or VerdictEngine(matcher=detector)
        self._per_global = per_category_global
        self._per_local = per_category_local
        self._executor = executor
        self._link_latency = link_latency
        self._resilience = resilience

    def run(
        self,
        isp_name: str,
        product_name: str,
        *,
        global_list: Optional[TestList] = None,
        local_list: Optional[TestList] = None,
    ) -> CharacterizationResult:
        """Test the global + local lists from inside ``isp_name``."""
        world = self._world
        isp = world.isps[isp_name]
        if global_list is None:
            global_list = build_global_list(
                world, per_category=self._per_global
            )
        if local_list is None:
            local_list = build_local_list(
                world,
                isp.country.code,
                per_category=self._per_local,
            )
        client = MeasurementClient(
            world.vantage(isp_name),
            world.lab_vantage(),
            engine=self._engine,
            executor=self._executor,
            link_latency=self._link_latency,
            resilience=self._resilience,
            stage="characterize",
            endpoint=f"{isp_name}/{product_name}",
        )
        result = CharacterizationResult(
            isp_name=isp_name,
            asn=isp.asn,
            country_code=isp.country.code,
            product_name=product_name,
            measured_at=world.now,
        )
        entries = [
            entry
            for test_list in (global_list, local_list)
            for entry in test_list.entries
        ]
        run = client.run_list([entry.url for entry in entries])
        for entry, test in zip(entries, run.tests):
            result.tests.append(test)
            stats = result.stats.setdefault(
                entry.category.name, CategoryBlockStats(entry.category)
            )
            stats.tested += 1
            stats.confidence_sum += test.confidence
            for name in test.comparison.signal_names():
                stats.signal_counts[name] = stats.signal_counts.get(name, 0) + 1
            if test.insufficient:
                stats.insufficient += 1
            elif test.blocked:
                stats.blocked += 1
                vendor = test.vendor or "unattributed"
                stats.vendors[vendor] = stats.vendors.get(vendor, 0) + 1
        return result

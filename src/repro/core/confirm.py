"""The §4 confirmation methodology — the paper's core contribution.

"The basic idea is to test sites (under our control) that are not
blocked within the ISP, and then submit a subset of these sites to the
appropriate URL filter vendor. After 3-5 days, we retest the sites and
observe whether or not the submitted sites are blocked. If they are
blocked, it is highly likely that the URL filter under consideration is
being used for censorship."

The split between submitted and held-out control domains carries the
causal claim: only the submitted half should flip to blocked.

Product-specific variations handled here:

- **Netsweeper** (§4.4): no pre-validation — accessing a site queues it
  for categorization, so accessibility cannot be verified first.
- **Inconsistent blocking** (§4.4, Challenge 2): multiple retest rounds,
  a site counting as blocked if any round blocks it.
- **Category probe** (§4.4): enumerate blocked Netsweeper categories via
  the vendor's denypagetests host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exec.executor import Executor
from repro.exec.resilience import ResilientRunner
from repro.measure.classifiers.blockpage import BlockPagePatternMatcher
from repro.measure.classifiers.fusion import VerdictEngine
from repro.measure.client import MeasurementClient
from repro.measure.verdict import Verdict
from repro.measure.domains import TestDomain, TestDomainFactory
from repro.net.url import Url
from repro.products.base import UrlFilterProduct
from repro.products.categories import NETSWEEPER_TAXONOMY, Taxonomy, VendorCategory
from repro.products.netsweeper import CATEGORY_TEST_HOST
from repro.products.submission import Submission, SubmitterIdentity
from repro.world.clock import SimTime
from repro.world.content import ContentClass
from repro.world.world import World

#: The researchers' laundered identity (§6.2: proxies/Tor + webmail).
DEFAULT_SUBMITTER = SubmitterIdentity(
    email="research.tester@freemail.example",
    source_ip="203.0.113.50",
    via_proxy=True,
)


@dataclass
class ConfirmationConfig:
    """One Table 3 case study's parameters."""

    product_name: str
    isp_name: str
    content_class: ContentClass
    category_label: str  # Table 3 "Category" column text
    requested_category: Optional[str] = None  # vendor category on the form
    total_domains: int = 10
    submit_count: int = 5
    wait_days: float = 5.0  # §4.2: "after 3-5 days, we retest"
    pre_validate: bool = True
    retest_rounds: int = 1
    round_gap_days: float = 0.25
    cleanup_sensitive: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.submit_count <= self.total_domains:
            raise ValueError("submit_count must be in (0, total_domains]")
        if self.retest_rounds < 1:
            raise ValueError("need at least one retest round")


@dataclass
class DomainOutcome:
    """Per-domain record across retest rounds."""

    domain: str
    submitted: bool
    blocked_rounds: int = 0
    total_rounds: int = 0
    #: Rounds where the measurement itself failed (retries exhausted,
    #: vantage outage): the domain was neither blocked nor accessible.
    insufficient_rounds: int = 0
    vendors_seen: List[str] = field(default_factory=list)
    #: Per-round fused verdict confidences, in round order. A quarantined
    #: round contributes 0.0, so partial data visibly lowers aggregates.
    confidences: List[float] = field(default_factory=list)
    #: Classifier name -> number of rounds it contributed a signal.
    signal_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def blocked(self) -> bool:
        """Blocked in any round (§4.4: inconsistent blocking)."""
        return self.blocked_rounds > 0

    @property
    def measured_rounds(self) -> int:
        """Rounds that actually produced a field/lab comparison."""
        return self.total_rounds - self.insufficient_rounds

    @property
    def mean_confidence(self) -> float:
        """Average fused confidence across rounds (1.0 when untested)."""
        if not self.confidences:
            return 1.0
        return sum(self.confidences) / len(self.confidences)


@dataclass
class ConfirmationResult:
    """One completed case study (one Table 3 row)."""

    config: ConfirmationConfig
    submitted_at: SimTime
    retested_at: SimTime
    pre_check_accessible: Optional[int]
    outcomes: List[DomainOutcome]
    submissions: List[Submission]
    notes: List[str] = field(default_factory=list)

    @property
    def submitted_outcomes(self) -> List[DomainOutcome]:
        return [o for o in self.outcomes if o.submitted]

    @property
    def control_outcomes(self) -> List[DomainOutcome]:
        return [o for o in self.outcomes if not o.submitted]

    @property
    def blocked_submitted(self) -> int:
        return sum(1 for o in self.submitted_outcomes if o.blocked)

    @property
    def blocked_control(self) -> int:
        return sum(1 for o in self.control_outcomes if o.blocked)

    @property
    def confirmed(self) -> bool:
        """The §4.2 verdict: did our submissions flip to blocked?

        Nearly all submitted sites must block (Table 3 accepts 5/6)
        while the held-out controls stay accessible.
        """
        submitted = len(self.submitted_outcomes)
        control = len(self.control_outcomes)
        if submitted == 0:
            return False
        need = max(1, submitted - 1)
        control_budget = control // 3
        return (
            self.blocked_submitted >= need
            and self.blocked_control <= control_budget
        )

    @property
    def detected_vendors(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for vendor in outcome.vendors_seen:
                counts[vendor] = counts.get(vendor, 0) + 1
        return counts

    @property
    def confidence(self) -> float:
        """Mean fused confidence across every retest round.

        Quarantined rounds contribute 0.0, so a case study built on
        partial data reports visibly lower confidence than a clean one.
        Defaults to 1.0 when no rounds carry confidences (pre-fusion
        snapshots).
        """
        values = [
            value
            for outcome in self.outcomes
            for value in getattr(outcome, "confidences", [])
        ]
        if not values:
            return 1.0
        return sum(values) / len(values)

    def signal_summary(self) -> Dict[str, int]:
        """Classifier name -> domain-rounds it contributed, sorted by name."""
        totals: Dict[str, int] = {}
        for outcome in self.outcomes:
            for name, count in getattr(outcome, "signal_counts", {}).items():
                totals[name] = totals.get(name, 0) + count
        return dict(sorted(totals.items()))

    def summary_row(self) -> str:
        """Render as a Table 3 style row."""
        cfg = self.config
        mark = "yes" if self.confirmed else "no"
        return (
            f"{cfg.product_name} | {cfg.isp_name} | {self.submitted_at} | "
            f"{cfg.submit_count}/{cfg.total_domains} | {cfg.category_label} | "
            f"{self.blocked_submitted}/{len(self.submitted_outcomes)} | {mark}"
        )


class ConfirmationStudy:
    """Runs §4.2 case studies against one (product, ISP) pair."""

    def __init__(
        self,
        world: World,
        product: UrlFilterProduct,
        hosting_asn: int,
        *,
        submitter: SubmitterIdentity = DEFAULT_SUBMITTER,
        detector: Optional[BlockPagePatternMatcher] = None,
        engine: Optional[VerdictEngine] = None,
        executor: Optional[Executor] = None,
        link_latency: float = 0.0,
        resilience: Optional[ResilientRunner] = None,
    ) -> None:
        self._world = world
        self._product = product
        self._hosting_asn = hosting_asn
        self._submitter = submitter
        self._engine = engine or VerdictEngine(matcher=detector)
        self._executor = executor
        self._link_latency = link_latency
        self._resilience = resilience

    def _client(self, isp_name: str) -> MeasurementClient:
        # The breaker endpoint is (vantage x product): one flaky ISP link
        # must not open the breaker for the same product elsewhere.
        return MeasurementClient(
            self._world.vantage(isp_name),
            self._world.lab_vantage(),
            engine=self._engine,
            executor=self._executor,
            link_latency=self._link_latency,
            resilience=self._resilience,
            stage="confirm",
            endpoint=f"{isp_name}/{self._product.vendor}",
        )

    def run(self, config: ConfirmationConfig) -> ConfirmationResult:
        """Execute one case study end to end."""
        if config.product_name != self._product.vendor:
            raise ValueError(
                f"study bound to {self._product.vendor}, config names "
                f"{config.product_name}"
            )
        world = self._world
        notes: List[str] = []
        factory = TestDomainFactory(
            world,
            self._hosting_asn,
            rng_label=(
                f"confirm/{config.product_name}/{config.isp_name}/"
                f"{world.now.minutes}"
            ),
        )
        domains = factory.create_batch(config.total_domains, config.content_class)
        client = self._client(config.isp_name)

        pre_accessible: Optional[int] = None
        if config.pre_validate:
            run = client.run_list([d.test_url for d in domains])
            pre_accessible = len(run.accessible_tests())
            pre_insufficient = sum(1 for t in run.tests if t.insufficient)
            if pre_insufficient:
                notes.append(
                    f"pre-check: {pre_insufficient}/{len(domains)} probes "
                    "lost to infrastructure faults (no verdict)"
                )
            if pre_accessible < len(domains):
                notes.append(
                    f"pre-check: only {pre_accessible}/{len(domains)} "
                    "accessible before submission"
                )
        else:
            notes.append(
                "no pre-validation: product queues accessed sites for "
                "categorization (§4.4)"
            )

        submitted_domains = domains[: config.submit_count]
        submissions = [
            self._product.portal.submit(
                domain.url,
                self._submitter,
                world.now,
                requested_category=config.requested_category,
            )
            for domain in submitted_domains
        ]
        submitted_at = world.now

        world.advance_days(config.wait_days)

        outcomes = [
            DomainOutcome(d.domain, submitted=(d in submitted_domains))
            for d in domains
        ]
        for round_index in range(config.retest_rounds):
            run = client.run_list([d.test_url for d in domains])
            for outcome, test in zip(outcomes, run.tests):
                outcome.total_rounds += 1
                outcome.confidences.append(test.confidence)
                for name in test.comparison.signal_names():
                    outcome.signal_counts[name] = (
                        outcome.signal_counts.get(name, 0) + 1
                    )
                if test.insufficient:
                    # A failed probe is a gap in the data, never a
                    # verdict: the §4.2 differential must not count it
                    # on either side.
                    outcome.insufficient_rounds += 1
                elif test.blocked:
                    outcome.blocked_rounds += 1
                    if test.vendor and test.vendor not in outcome.vendors_seen:
                        outcome.vendors_seen.append(test.vendor)
            if round_index + 1 < config.retest_rounds:
                world.advance_days(config.round_gap_days)
        retested_at = world.now

        lost_rounds = sum(o.insufficient_rounds for o in outcomes)
        if lost_rounds:
            notes.append(
                f"partial data: {lost_rounds} domain-round(s) lost to "
                "infrastructure faults; Table 3 cell derived from "
                "incomplete retests"
            )

        if config.cleanup_sensitive and config.content_class in (
            ContentClass.ADULT_IMAGES,
            ContentClass.PORNOGRAPHY,
        ):
            for domain in domains:
                factory.remove_sensitive_content(domain)
            notes.append("sensitive content removed after testing (§4.6)")

        return ConfirmationResult(
            config=config,
            submitted_at=submitted_at,
            retested_at=retested_at,
            pre_check_accessible=pre_accessible,
            outcomes=outcomes,
            submissions=submissions,
            notes=notes,
        )


@dataclass
class CategoryProbeResult:
    """§4.4: which vendor categories a Netsweeper deployment denies."""

    isp_name: str
    probed_at: SimTime
    blocked: List[VendorCategory]
    tested: int

    @property
    def blocked_names(self) -> List[str]:
        return sorted(category.name for category in self.blocked)


def run_category_probe(
    world: World,
    isp_name: str,
    taxonomy: Taxonomy = NETSWEEPER_TAXONOMY,
    *,
    detector: Optional[BlockPagePatternMatcher] = None,
    engine: Optional[VerdictEngine] = None,
    executor: Optional[Executor] = None,
    link_latency: float = 0.0,
    resilience: Optional[ResilientRunner] = None,
) -> CategoryProbeResult:
    """Fetch each denypagetests category URL from the field vantage.

    A category counts as blocked when its test page yields a block-page
    verdict in the field while the lab sees the vendor's plain test page.
    The per-category fetches are independent, so they run through the
    executor's URL fan-out; results come back in taxonomy order.
    A quarantined probe counts the category as not-blocked (the probe
    under-reports rather than inventing a denial).
    """
    client = MeasurementClient(
        world.vantage(isp_name),
        world.lab_vantage(),
        engine=engine or VerdictEngine(matcher=detector),
        executor=executor,
        link_latency=link_latency,
        resilience=resilience,
        stage="probe",
        endpoint=f"{isp_name}/category-probe",
    )
    urls = [
        Url.parse(
            f"http://{CATEGORY_TEST_HOST}/category/catno/{category.number}"
        )
        for category in taxonomy.categories
    ]
    run = client.run_list(urls)
    blocked: List[VendorCategory] = [
        category
        for category, test in zip(taxonomy.categories, run.tests)
        if test.comparison.verdict is Verdict.BLOCKED_BLOCKPAGE
    ]
    return CategoryProbeResult(
        isp_name=isp_name,
        probed_at=world.now,
        blocked=blocked,
        tested=len(taxonomy.categories),
    )

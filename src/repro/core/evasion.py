"""§6 / Table 5: vendor evasion tactics and how the methods degrade.

Three tactics, matching Table 5's rows:

1. **Hide the box** — stop exposing it to the global Internet. Kills the
   identification step (nothing to index); validation has nothing to
   probe; confirmation is untouched.
2. **Mask headers/branding** — strip product-identifying headers and
   brand strings from the box's externally visible services and block
   pages. The box may still be indexed (it answers), but keyword search
   finds nothing and WhatWeb signatures fail; confirmation is untouched
   (the field/lab differential needs no signatures).
3. **Screen submissions** — reject submissions whose submitter identity
   or hosting provider looks like a researcher. Countered by laundered
   identities (§6.2: proxies/Tor + webmail) and big-provider hosting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.middlebox.filter_box import FilterMiddlebox
from repro.net.http import Headers, HttpRequest, HttpResponse
from repro.products.base import SIGNATURE_HEADER_NAMES
from repro.products.registry import default_registry
from repro.world.entities import Host, ServiceApp

#: Strings scrubbed from bodies/titles when a vendor masks a product
#: (each spec's ``scrub_tokens``).
BRAND_TOKENS: Dict[str, Sequence[str]] = default_registry().scrub_tokens()

_NEUTRAL = "gateway"


def _scrub_text(text: str, tokens: Sequence[str]) -> str:
    import re

    for token in tokens:
        text = re.sub(re.escape(token), _NEUTRAL, text, flags=re.IGNORECASE)
    return text


def scrub_response(response: HttpResponse, tokens: Sequence[str]) -> HttpResponse:
    """Strip signature headers and brand strings from one response."""
    headers = Headers()
    for name, value in response.headers.items():
        if name in SIGNATURE_HEADER_NAMES or name.lower() == "www-authenticate":
            continue
        headers.add(name, _scrub_text(value, tokens))
    return HttpResponse(response.status, headers, _scrub_text(response.body, tokens))


def _masked_app(app: ServiceApp, tokens: Sequence[str]) -> ServiceApp:
    def masked(request: HttpRequest) -> HttpResponse:
        return scrub_response(app(request), tokens)

    return masked


@dataclass
class EvasionOutcome:
    """How far each pipeline stage got against one tactic."""

    tactic: str
    located: bool  # keyword search surfaced the box
    validated: bool  # WhatWeb confirmed the product
    confirmed: bool  # the §4 methodology still confirmed censorship
    note: str = ""


def hide_installation(box: FilterMiddlebox) -> None:
    """Tactic 1: the box disappears from the global Internet."""
    box.hide()


def mask_installation(box: FilterMiddlebox) -> None:
    """Tactic 2: headers stripped, branding scrubbed, console redirect cut.

    Applies to the box's externally visible services and to its block
    pages (via the deployment's block-page config).
    """
    config = box.policy.block_page
    config.show_branding = False
    config.strip_signature_headers = True
    tokens = tuple(BRAND_TOKENS.get(box.appliance.vendor, ()))
    if box.engine is not None and box.engine is not box.appliance:
        tokens = tokens + tuple(BRAND_TOKENS.get(box.engine.vendor, ()))
    host = box.world_host
    if host is None:
        return
    for port, app in list(host.services.items()):
        host.services[port] = _masked_app(
            _without_console_redirect(app), tokens
        )


def _without_console_redirect(app: ServiceApp) -> ServiceApp:
    """Drop bare '/' -> console redirects (they leak the console path)."""

    def wrapped(request: HttpRequest) -> HttpResponse:
        response = app(request)
        location = response.location or ""
        if (
            request.url.path == "/"
            and response.is_redirect
            and location.startswith("/")
        ):
            return HttpResponse(404, Headers(), "")
        return response

    return wrapped


def screen_submissions(
    box: FilterMiddlebox,
    *,
    distrusted_emails: Optional[List[str]] = None,
    distrusted_ips: Optional[List[str]] = None,
    distrusted_hosting: Optional[List[str]] = None,
    protected_hosting: Optional[List[str]] = None,
) -> None:
    """Tactic 3: the vendor tries to recognize researcher submissions."""
    assert box.engine is not None
    policy = box.engine.portal.policy
    policy.distrusted_emails.extend(distrusted_emails or [])
    policy.distrusted_ips.extend(distrusted_ips or [])
    policy.distrusted_hosting.extend(distrusted_hosting or [])
    policy.protected_hosting.extend(protected_hosting or [])

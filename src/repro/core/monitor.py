"""Longitudinal monitoring of product-use confirmations.

The paper is explicit that one-shot findings are not enough: §4.3
re-confirms SmartFilter in Etisalat in 9/2012 *and* 4/2013, and the
policy arc it cares about is temporal — Websense cutting off Yemen in
2009 (§2.2), Blue Coat withdrawing Syrian update support (§2.2). This
module turns the §4 methodology into a repeatable monitor: run the same
confirmation at intervals and detect transitions — a product appearing,
persisting, or going stale after a vendor withdraws update support.

Rounds are no longer process-lifetime state: given a results store,
each round commits an immutable epoch (one confirmation record, indexed
by product/ISP/country), and the transition logic itself lives in
:mod:`repro.query.diff` — the same APPEARED/WITHDRAWN/PERSISTED rule
the epoch diff applies — so a monitor restarted months later recovers
its full timeline from the store instead of starting blind.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.confirm import ConfirmationConfig, ConfirmationResult, ConfirmationStudy
from repro.exec.checkpoint import fingerprint
from repro.products.base import UrlFilterProduct
from repro.query.diff import TransitionKind as EpochTransitionKind
from repro.query.diff import sequence_transitions, stored_states
from repro.store import ResultsStore, confirmation_epoch
from repro.world.clock import SimTime
from repro.world.world import World


# The store-less legacy path resolves once per monitor, but a process
# can construct many monitors; warn once per name per process so logs
# stay readable (same latch the measure-layer shims use).
_warned: set = set()


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latch (test helper)."""
    _warned.clear()


def _warn_once(name: str, replacement: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.core.monitor.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


class UsageState(enum.Enum):
    """What one monitoring round concluded."""

    CONFIRMED = "confirmed"  # submissions flipped to blocked
    NOT_CONFIRMED = "not_confirmed"  # nothing flipped


class TransitionKind(enum.Enum):
    APPEARED = "appeared"  # not confirmed -> confirmed
    WITHDRAWN = "withdrawn"  # confirmed -> not confirmed


#: The monitor's change-only view of the store-level transition kinds
#: (PERSISTED is longitudinal *stability*, not a transition).
_KIND_FROM_EPOCH = {
    EpochTransitionKind.APPEARED: TransitionKind.APPEARED,
    EpochTransitionKind.WITHDRAWN: TransitionKind.WITHDRAWN,
}


@dataclass
class MonitoringRound:
    started_at: SimTime
    result: ConfirmationResult

    @property
    def state(self) -> UsageState:
        return (
            UsageState.CONFIRMED
            if self.result.confirmed
            else UsageState.NOT_CONFIRMED
        )


@dataclass
class Transition:
    kind: TransitionKind
    between: SimTime
    and_: SimTime


def _change_transitions(
    timeline: List[Tuple[SimTime, bool]]
) -> List[Transition]:
    """APPEARED/WITHDRAWN transitions along a (time, confirmed) series."""
    states = [confirmed for _at, confirmed in timeline]
    found: List[Transition] = []
    for index, kind in sequence_transitions(states):
        mapped = _KIND_FROM_EPOCH.get(kind)
        if mapped is None:
            continue  # PERSISTED: no change to report
        found.append(
            Transition(mapped, timeline[index - 1][0], timeline[index][0])
        )
    return found


@dataclass
class MonitoringSeries:
    """The timeline one monitor produced."""

    product_name: str
    isp_name: str
    rounds: List[MonitoringRound] = field(default_factory=list)

    def states(self) -> List[UsageState]:
        return [round_.state for round_ in self.rounds]

    def timeline(self) -> List[Tuple[SimTime, bool]]:
        return [
            (round_.started_at, round_.state is UsageState.CONFIRMED)
            for round_ in self.rounds
        ]

    def transitions(self) -> List[Transition]:
        return _change_transitions(self.timeline())

    def ever_confirmed(self) -> bool:
        return any(r.state is UsageState.CONFIRMED for r in self.rounds)

    def currently_confirmed(self) -> Optional[bool]:
        if not self.rounds:
            return None
        return self.rounds[-1].state is UsageState.CONFIRMED


def stored_transitions(
    store: ResultsStore, product_name: str, isp_name: str
) -> List[Transition]:
    """The transition timeline recovered from a results store.

    Reads every committed epoch mentioning this (product, ISP) pair —
    monitoring-round epochs and full-study epochs alike — through the
    store's indexes, and applies the same transition rule the in-memory
    series uses.
    """
    timeline = [
        (SimTime(minutes), confirmed)
        for minutes, confirmed in stored_states(store, product_name, isp_name)
    ]
    return _change_transitions(timeline)


class LongitudinalMonitor:
    """Re-runs one confirmation configuration at fixed intervals.

    Each round registers fresh domains (the §4.4 caveat: previously
    accessed sites may already be queued/categorized), so rounds are
    independent measurements of the *current* deployment state. With a
    ``store``, every round is also committed as one durable epoch, and
    :func:`stored_transitions` can rebuild the timeline after restart.
    """

    def __init__(
        self,
        world: World,
        product: UrlFilterProduct,
        hosting_asn: int,
        config: ConfirmationConfig,
        *,
        store: Optional[Union[ResultsStore, str]] = None,
    ) -> None:
        self._study = ConfirmationStudy(world, product, hosting_asn)
        self._world = world
        self._config = config
        self.store: Optional[ResultsStore] = None
        if store is not None:
            self.store = (
                store if isinstance(store, ResultsStore) else ResultsStore(store)
            )
        else:
            # Legacy in-process flow: rounds live only in this object's
            # MonitoringSeries and die with the process — no durable
            # epochs, no recoverable timeline, no monitor service.
            _warn_once(
                "LongitudinalMonitor(store=None)",
                "LongitudinalMonitor(..., store=...) or "
                "repro.monitor.MonitorService for a durable timeline",
            )
        self.series = MonitoringSeries(
            product_name=config.product_name, isp_name=config.isp_name
        )

    def _round_identity(self, started: SimTime) -> dict:
        """What one monitoring-round epoch is a function of.

        The round index and start instant are part of the identity:
        unlike study epochs, two monitoring rounds are distinct
        observations even when their results happen to be identical.
        """
        return {
            "kind": "monitoring-round",
            "seed": self._world.seed,
            "product": self._config.product_name,
            "isp": self._config.isp_name,
            "category": self._config.category_label,
            "round": len(self.series.rounds),
            "started_minutes": started.minutes,
        }

    def run_round(self) -> MonitoringRound:
        """One monitoring round at the current simulated time."""
        started = self._world.now
        result = self._study.run(self._config)
        round_ = MonitoringRound(started_at=started, result=result)
        if self.store is not None:
            identity = self._round_identity(started)
            self.store.commit(
                confirmation_epoch(
                    result,
                    identity=identity,
                    fingerprint=fingerprint(identity),
                    world=self._world,
                    window=(started.minutes, self._world.now.minutes),
                )
            )
        self.series.rounds.append(round_)
        return round_

    def run(self, rounds: int, interval_days: float) -> MonitoringSeries:
        """``rounds`` measurements spaced ``interval_days`` apart."""
        if rounds < 1:
            raise ValueError("need at least one round")
        if interval_days < 0:
            raise ValueError("interval must be non-negative")
        for index in range(rounds):
            self.run_round()
            if index + 1 < rounds:
                self._world.advance_days(interval_days)
        return self.series

"""Longitudinal monitoring of product-use confirmations.

The paper is explicit that one-shot findings are not enough: §4.3
re-confirms SmartFilter in Etisalat in 9/2012 *and* 4/2013, and the
policy arc it cares about is temporal — Websense cutting off Yemen in
2009 (§2.2), Blue Coat withdrawing Syrian update support (§2.2). This
module turns the §4 methodology into a repeatable monitor: run the same
confirmation at intervals and detect transitions — a product appearing,
persisting, or going stale after a vendor withdraws update support.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.confirm import ConfirmationConfig, ConfirmationResult, ConfirmationStudy
from repro.products.base import UrlFilterProduct
from repro.world.clock import SimTime
from repro.world.world import World


class UsageState(enum.Enum):
    """What one monitoring round concluded."""

    CONFIRMED = "confirmed"  # submissions flipped to blocked
    NOT_CONFIRMED = "not_confirmed"  # nothing flipped


class TransitionKind(enum.Enum):
    APPEARED = "appeared"  # not confirmed -> confirmed
    WITHDRAWN = "withdrawn"  # confirmed -> not confirmed


@dataclass
class MonitoringRound:
    started_at: SimTime
    result: ConfirmationResult

    @property
    def state(self) -> UsageState:
        return (
            UsageState.CONFIRMED
            if self.result.confirmed
            else UsageState.NOT_CONFIRMED
        )


@dataclass
class Transition:
    kind: TransitionKind
    between: SimTime
    and_: SimTime


@dataclass
class MonitoringSeries:
    """The timeline one monitor produced."""

    product_name: str
    isp_name: str
    rounds: List[MonitoringRound] = field(default_factory=list)

    def states(self) -> List[UsageState]:
        return [round_.state for round_ in self.rounds]

    def transitions(self) -> List[Transition]:
        found: List[Transition] = []
        for earlier, later in zip(self.rounds, self.rounds[1:]):
            if earlier.state is later.state:
                continue
            kind = (
                TransitionKind.APPEARED
                if later.state is UsageState.CONFIRMED
                else TransitionKind.WITHDRAWN
            )
            found.append(Transition(kind, earlier.started_at, later.started_at))
        return found

    def ever_confirmed(self) -> bool:
        return any(r.state is UsageState.CONFIRMED for r in self.rounds)

    def currently_confirmed(self) -> Optional[bool]:
        if not self.rounds:
            return None
        return self.rounds[-1].state is UsageState.CONFIRMED


class LongitudinalMonitor:
    """Re-runs one confirmation configuration at fixed intervals.

    Each round registers fresh domains (the §4.4 caveat: previously
    accessed sites may already be queued/categorized), so rounds are
    independent measurements of the *current* deployment state.
    """

    def __init__(
        self,
        world: World,
        product: UrlFilterProduct,
        hosting_asn: int,
        config: ConfirmationConfig,
    ) -> None:
        self._study = ConfirmationStudy(world, product, hosting_asn)
        self._world = world
        self._config = config
        self.series = MonitoringSeries(
            product_name=config.product_name, isp_name=config.isp_name
        )

    def run_round(self) -> MonitoringRound:
        """One monitoring round at the current simulated time."""
        started = self._world.now
        result = self._study.run(self._config)
        round_ = MonitoringRound(started_at=started, result=result)
        self.series.rounds.append(round_)
        return round_

    def run(self, rounds: int, interval_days: float) -> MonitoringSeries:
        """``rounds`` measurements spaced ``interval_days`` apart."""
        if rounds < 1:
            raise ValueError("need at least one round")
        if interval_days < 0:
            raise ValueError("interval must be non-negative")
        for index in range(rounds):
            self.run_round()
            if index + 1 < rounds:
                self._world.advance_days(interval_days)
        return self.series

"""The paper's methodology: identify (§3), confirm (§4), characterize
(§5), and evasion analysis (§6)."""

from repro.core.characterize import (
    CategoryBlockStats,
    CharacterizationResult,
    ContentCharacterization,
)
from repro.core.confirm import (
    CategoryProbeResult,
    ConfirmationConfig,
    ConfirmationResult,
    ConfirmationStudy,
    DEFAULT_SUBMITTER,
    DomainOutcome,
    run_category_probe,
)
from repro.core.evasion import (
    BRAND_TOKENS,
    EvasionOutcome,
    hide_installation,
    mask_installation,
    screen_submissions,
    scrub_response,
)
from repro.core.identify import (
    Candidate,
    IdentificationPipeline,
    IdentificationReport,
    Installation,
)
from repro.core.legacy import (
    LegacyReport,
    UserReport,
    UserReportChannel,
    analyze_block_page,
    run_legacy_identification,
)
from repro.core.monitor import (
    LongitudinalMonitor,
    MonitoringRound,
    MonitoringSeries,
    Transition,
    TransitionKind,
    UsageState,
)
from repro.core.pipeline import FullStudy, StudyReport, config_for_row
from repro.core.survey import (
    CATEGORY_LADDER,
    GlobalSurvey,
    SurveyEntry,
    SurveyReport,
    SurveyTarget,
    run_global_survey,
)
from repro.core.scale import (
    CampaignCost,
    campaign_cost,
    case_study_cost,
    exhaustive_campaign,
    reduction_factor,
    targeted_campaign,
)

__all__ = [
    "BRAND_TOKENS",
    "CATEGORY_LADDER",
    "CampaignCost",
    "GlobalSurvey",
    "SurveyEntry",
    "SurveyReport",
    "SurveyTarget",
    "run_global_survey",
    "Candidate",
    "LegacyReport",
    "LongitudinalMonitor",
    "MonitoringRound",
    "MonitoringSeries",
    "Transition",
    "TransitionKind",
    "UsageState",
    "UserReport",
    "UserReportChannel",
    "analyze_block_page",
    "campaign_cost",
    "case_study_cost",
    "exhaustive_campaign",
    "reduction_factor",
    "run_legacy_identification",
    "targeted_campaign",
    "CategoryBlockStats",
    "CategoryProbeResult",
    "CharacterizationResult",
    "ConfirmationConfig",
    "ConfirmationResult",
    "ConfirmationStudy",
    "ContentCharacterization",
    "DEFAULT_SUBMITTER",
    "DomainOutcome",
    "EvasionOutcome",
    "FullStudy",
    "IdentificationPipeline",
    "IdentificationReport",
    "Installation",
    "StudyReport",
    "config_for_row",
    "hide_installation",
    "mask_installation",
    "run_category_probe",
    "screen_submissions",
    "scrub_response",
]

"""End-to-end study orchestration.

Replays the paper's whole campaign against the scenario world in
chronological order: the §3 identification scan, the ten Table 3 case
studies (September 2012 through August 2013), the January 2013 YemenNet
category probe, and the §5 characterizations run within 30 days of each
confirmation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.paper_data import PAPER_TABLE3, Table3Row
from repro.core.characterize import CharacterizationResult, ContentCharacterization
from repro.core.confirm import (
    CategoryProbeResult,
    ConfirmationConfig,
    ConfirmationResult,
    ConfirmationStudy,
    run_category_probe,
)
from repro.core.identify import IdentificationPipeline, IdentificationReport
from repro.exec.cache import StudyCaches
from repro.exec.executor import Executor
from repro.exec.metrics import Metrics
from repro.exec.resilience import (
    QuarantineRecord,
    ResilienceConfig,
    ResilientRunner,
    StageCoverage,
)
from repro.geo.cymru import WhoisService
from repro.geo.maxmind import GeoDatabase
from repro.products.registry import NETSWEEPER, SMARTFILTER, default_registry
from repro.scan.banner import scan_world
from repro.scan.shodan import ShodanIndex
from repro.scan.whatweb import WhatWebEngine, world_probe
from repro.world.clock import SimTime
from repro.world.content import ContentClass
from repro.world.faults import FaultPlan
from repro.world.scenario import DEFAULT_SEED, Scenario, build_scenario

_CATEGORY_CONTENT: Dict[str, ContentClass] = {
    "Proxy Avoidance": ContentClass.PROXY_ANONYMIZER,
    "Proxy anonymizer": ContentClass.PROXY_ANONYMIZER,
    "Anonymizers": ContentClass.PROXY_ANONYMIZER,
    "Pornography": ContentClass.ADULT_IMAGES,
}


def config_for_row(row: Table3Row) -> ConfirmationConfig:
    """Derive the §4 experiment parameters for one published case.

    The vendor-specific knobs — which form category to request and
    whether accessibility can be pre-validated (§4.4: Netsweeper queues
    accesses) — come off the product's registry spec.
    """
    spec = default_registry().get(row.product)
    content_class = _CATEGORY_CONTENT[row.category]
    is_yemen = row.isp_key == "yemennet"
    return ConfirmationConfig(
        product_name=row.product,
        isp_name=row.isp_key,
        content_class=content_class,
        category_label=row.category,
        requested_category=spec.category_requests.get(content_class),
        total_domains=row.total,
        submit_count=row.submitted,
        pre_validate=spec.pre_validate,
        retest_rounds=3 if is_yemen else 1,  # §4.4: inconsistent blocking
    )


@dataclass
class StudyReport:
    """Everything the full campaign produced."""

    identification: IdentificationReport
    confirmations: List[ConfirmationResult] = field(default_factory=list)
    category_probe: Optional[CategoryProbeResult] = None
    characterizations: Dict[str, CharacterizationResult] = field(
        default_factory=dict
    )

    def confirmation_for(
        self, product: str, isp_key: str, category: str
    ) -> Optional[ConfirmationResult]:
        for result in self.confirmations:
            cfg = result.config
            if (
                cfg.product_name == product
                and cfg.isp_name == isp_key
                and cfg.category_label == category
            ):
                return result
        return None

    def confirmed_pairs(self) -> List[Tuple[str, str]]:
        """(product, isp) pairs where censorship use was confirmed."""
        return sorted(
            {
                (r.config.product_name, r.config.isp_name)
                for r in self.confirmations
                if r.confirmed
            }
        )


#: Which published artifact each resilience stage feeds, for the
#: partial-data annotations.
_STAGE_ARTIFACTS: Dict[str, str] = {
    "scan": "Table 2 / Figure 1 (identification scan)",
    "validate": "Table 2 / Figure 1 (WhatWeb validation)",
    "confirm": "Table 3 (confirmation case studies)",
    "probe": "§4.4 category probe",
    "characterize": "Table 4 (content characterization)",
}


@dataclass
class PartialStudyResult:
    """A study that completed under faults, with its gaps made explicit.

    Wraps the ordinary :class:`StudyReport` — every table the campaign
    could still derive — together with the resilience layer's account of
    what was lost: per-stage coverage counters, the quarantine
    dead-letter list, and final breaker states. ``annotations()`` maps
    incomplete stages onto the paper artifacts (Table 2–4 cells) they
    feed, so a reader of a degraded run knows which numbers rest on
    partial data.
    """

    report: StudyReport
    fault_plan: FaultPlan
    coverage: Dict[str, StageCoverage] = field(default_factory=dict)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    breaker_states: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every attempted probe eventually succeeded."""
        return all(cov.complete for cov in self.coverage.values())

    def annotations(self) -> List[str]:
        """Partial-data caveats for the affected paper artifacts."""
        notes: List[str] = []
        for stage, cov in sorted(self.coverage.items()):
            if cov.complete:
                continue
            artifact = _STAGE_ARTIFACTS.get(stage, stage)
            notes.append(
                f"{artifact}: derived from partial data — {cov.describe()}"
            )
        return notes

    def summary_lines(self) -> List[str]:
        """Human-readable degradation summary for the CLI."""
        lines = [f"fault plan: {self.fault_plan.describe()}"]
        lines.append("stage coverage:")
        for stage, cov in sorted(self.coverage.items()):
            lines.append(f"  {stage:14s} {cov.describe()}")
        for note in self.annotations():
            lines.append(f"partial: {note}")
        if self.breaker_states:
            tripped = {
                name: state
                for name, state in self.breaker_states.items()
                if state[1] > 0 or state[0] != "closed"
            }
            if tripped:
                lines.append("circuit breakers:")
                for name, (state, trips) in sorted(tripped.items()):
                    lines.append(f"  {name:24s} {state} ({trips} trip(s))")
        if self.quarantined:
            lines.append(f"quarantined probes: {len(self.quarantined)}")
        return lines


class FullStudy:
    """Drives the complete reproduction against one scenario.

    ``workers`` fans the independent parts of each stage (Shodan query
    expansions, WhatWeb probes, banner grabs, URL batches) across a
    thread pool; ``link_latency`` models the per-request field RTT that
    parallelism amortizes. Results are byte-identical at any worker
    count: world-mutating fetches commit in submission order and all
    merges are submission-ordered (see docs/methodology.md, "Execution
    model").
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        products: Optional[Sequence[str]] = None,
        shodan_coverage: float = 1.0,
        geo_error_rate: float = 0.0,
        workers: int = 1,
        link_latency: float = 0.0,
        metrics: Optional[Metrics] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: int = 2,
        fail_fast: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if link_latency < 0:
            raise ValueError("link_latency must be >= 0")
        self._scenario = scenario
        # Resolve eagerly so unknown product names fail fast; None keeps
        # the paper's default selection (the 2013 four).
        self._products: Optional[Tuple[str, ...]] = (
            None
            if products is None
            else tuple(
                spec.name for spec in default_registry().resolve(products)
            )
        )
        self._shodan_coverage = shodan_coverage
        self._geo_error_rate = geo_error_rate
        self._link_latency = link_latency
        self.metrics = metrics if metrics is not None else Metrics()
        self.executor = Executor(
            workers=workers, metrics=self.metrics, name="study"
        )
        self.caches = StudyCaches()
        scenario.world.enable_dns_cache(self.caches.dns)
        # The resilience layer exists only when a chaos plan is active:
        # the fault-free baseline takes the untouched code paths and
        # stays byte-identical.
        self.fault_plan = fault_plan
        self.resilience: Optional[ResilientRunner] = None
        if fault_plan is not None and fault_plan.active:
            scenario.world.install_faults(fault_plan)
            self.resilience = ResilientRunner(
                ResilienceConfig(
                    max_retries=max_retries,
                    jitter_seed=fault_plan.seed,
                    fail_fast=fail_fast,
                ),
                clock=lambda: scenario.world.now,
                metrics=self.metrics,
            )

    # ------------------------------------------------------------- stages
    def run_identification(self) -> IdentificationReport:
        """§3: scan → index → keyword x ccTLD → WhatWeb → geo/whois."""
        world = self._scenario.world
        registry = default_registry()
        with self.metrics.timer("stage.identify"):
            records = scan_world(
                world,
                registry.scan_ports(self._products),
                coverage=self._shodan_coverage,
                executor=self.executor,
                probe_latency=self._link_latency,
                resilience=self.resilience,
            )
            geo_rng = None
            if self._geo_error_rate:
                from repro.world.rng import derive_rng

                geo_rng = derive_rng(world.seed, "geo-errors")
            geo = GeoDatabase.build_from_world(
                world, error_rate=self._geo_error_rate, rng=geo_rng
            )
            # The banner index geolocates every record up front; routing
            # it through the shared cache turns the §3 candidate
            # re-lookups into hits.
            shodan = ShodanIndex(
                records,
                geolocate=self.caches.wrap_geo(geo.country_code),
                query_cache=self.caches.banner,
            )
            whatweb = WhatWebEngine(
                world_probe(world),
                signatures=registry.whatweb_signatures(self._products),
                probe_plan=registry.probe_plan(self._products),
            )
            whois = WhoisService.build_from_world(world)
            pipeline = IdentificationPipeline(
                shodan,
                whatweb,
                geo,
                whois,
                executor=self.executor,
                caches=self.caches,
                resilience=self.resilience,
            )
            return pipeline.run(self._products)

    def run_confirmations(
        self,
    ) -> Tuple[List[ConfirmationResult], Optional[CategoryProbeResult]]:
        """§4: replay the Table 3 case studies chronologically.

        The schedule itself stays sequential — every case study advances
        the shared clock — but each study's URL batches fan out through
        the executor. With a product selection, only that selection's
        published rows are replayed; the §4.4 category probe runs only
        when Netsweeper is part of the study.
        """
        scenario = self._scenario
        world = scenario.world
        selection = self._products or default_registry().default_names()
        schedule: List[Tuple[SimTime, Optional[Table3Row]]] = [
            (SimTime.from_date(row.date[0], row.date[1], 10), row)
            for row in PAPER_TABLE3
            if row.product in selection
        ]
        if NETSWEEPER in selection:
            # The YemenNet category probe ran in January 2013 (§4.4).
            probe_time = SimTime.from_date(2013, 1, 15)
            schedule.append((probe_time, None))
        schedule.sort(key=lambda item: (item[0], _row_order(item[1])))

        results: List[ConfirmationResult] = []
        probe: Optional[CategoryProbeResult] = None
        with self.metrics.timer("stage.confirm"):
            for when, row in schedule:
                if world.now < when:
                    world.clock.advance_to(when)
                if row is None:
                    probe = run_category_probe(
                        world,
                        "yemennet",
                        executor=self.executor,
                        link_latency=self._link_latency,
                        resilience=self.resilience,
                    )
                    continue
                study = ConfirmationStudy(
                    world,
                    scenario.products[row.product],
                    scenario.hosting_asns[0],
                    executor=self.executor,
                    link_latency=self._link_latency,
                    resilience=self.resilience,
                )
                results.append(study.run(config_for_row(row)))
        if NETSWEEPER in selection:
            assert probe is not None
        return results, probe

    def run_characterizations(self) -> Dict[str, CharacterizationResult]:
        """§5: test lists in each confirmed ISP (within 30 days).

        Runs stay in pair order (filter RNG state is shared between
        deployments of one product) while each run's URL list fans out.
        """
        scenario = self._scenario
        world = scenario.world
        characterization = ContentCharacterization(
            world,
            executor=self.executor,
            link_latency=self._link_latency,
            resilience=self.resilience,
        )
        selection = self._products or default_registry().default_names()
        pairs = tuple(
            (isp, product)
            for isp, product in (
                ("etisalat", SMARTFILTER),
                ("du", NETSWEEPER),
                ("yemennet", NETSWEEPER),
                ("ooredoo", NETSWEEPER),
            )
            if product in selection
        )
        with self.metrics.timer("stage.characterize"):
            return {
                isp: characterization.run(isp, product)
                for isp, product in pairs
            }

    def run(self) -> StudyReport:
        """The full campaign in paper order."""
        with self.metrics.timer("study"):
            identification = self.run_identification()
            confirmations, probe = self.run_confirmations()
            characterizations = self.run_characterizations()
        for cache in self.caches.all():
            stats = cache.stats
            self.metrics.incr(f"cache.{cache.name}.hits", stats.hits)
            self.metrics.incr(f"cache.{cache.name}.misses", stats.misses)
        return StudyReport(
            identification=identification,
            confirmations=confirmations,
            category_probe=probe,
            characterizations=characterizations,
        )

    def run_partial(self) -> PartialStudyResult:
        """The full campaign plus the resilience layer's account of it.

        Valid only when the study was constructed with an active fault
        plan; a study degrades rather than raises — every table that can
        still be derived is, and the gaps are reported alongside.
        """
        if self.resilience is None or self.fault_plan is None:
            raise ValueError(
                "run_partial() requires an active fault plan; "
                "use run() for fault-free studies"
            )
        report = self.run()
        return PartialStudyResult(
            report=report,
            fault_plan=self.fault_plan,
            coverage=self.resilience.coverage(),
            quarantined=self.resilience.quarantined(),
            breaker_states=self.resilience.breaker_states(),
        )


def run_full_study(
    seed: int = DEFAULT_SEED,
    *,
    products: Optional[Sequence[str]] = None,
    workers: int = 1,
    link_latency: float = 0.0,
    metrics: Optional[Metrics] = None,
    shodan_coverage: float = 1.0,
    geo_error_rate: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    max_retries: int = 2,
    fail_fast: bool = False,
):
    """Build the scenario for ``seed`` and run the whole campaign.

    The report is a pure function of ``seed``, ``products`` and the
    scenario knobs: ``workers``/``link_latency``/``metrics`` change only
    wall-clock and instrumentation, never the result.

    Without a fault plan (or with an inert one) this returns the plain
    :class:`StudyReport`, byte-identical to earlier versions. With an
    active plan it returns a :class:`PartialStudyResult` wrapping the
    report plus coverage/quarantine accounting — itself a pure function
    of ``(seed, products, plan)``, identical at any worker count.
    """
    scenario = build_scenario(seed=seed)
    study = FullStudy(
        scenario,
        products=products,
        shodan_coverage=shodan_coverage,
        geo_error_rate=geo_error_rate,
        workers=workers,
        link_latency=link_latency,
        metrics=metrics,
        fault_plan=fault_plan,
        max_retries=max_retries,
        fail_fast=fail_fast,
    )
    if study.resilience is not None:
        return study.run_partial()
    return study.run()


def _row_order(row: Optional[Table3Row]) -> int:
    if row is None:
        return -1
    return PAPER_TABLE3.index(row)

"""End-to-end study orchestration.

Replays the paper's whole campaign against the scenario world in
chronological order: the §3 identification scan, the ten Table 3 case
studies (September 2012 through August 2013), the January 2013 YemenNet
category probe, and the §5 characterizations run within 30 days of each
confirmation.

The campaign decomposes into a sequential *unit plan* — identify, one
unit per Table 3 case study, the category probe, one unit per
characterized ISP. Parallelism (``workers``) lives strictly *inside*
a unit; between units the executor is quiescent and the world is at a
well-defined simulation instant. Those boundaries are exactly where the
durability layer (``--journal``) checkpoints: a killed run resumes from
the newest valid snapshot, replays the remaining units, and produces
byte-identical output (see docs/methodology.md, "Durability & resume").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.paper_data import PAPER_TABLE3, Table3Row
from repro.core.characterize import CharacterizationResult, ContentCharacterization
from repro.core.confirm import (
    CategoryProbeResult,
    ConfirmationConfig,
    ConfirmationResult,
    ConfirmationStudy,
    run_category_probe,
)
from repro.core.identify import IdentificationPipeline, IdentificationReport
from repro.exec.cache import StudyCaches
from repro.exec.checkpoint import (
    SNAPSHOT_SCHEMA_VERSION,
    CheckpointError,
    fingerprint,
    load_latest_snapshot,
    write_snapshot,
)
from repro.exec.executor import (
    BACKENDS,
    Executor,
    PROCESS_BACKEND,
    THREAD_BACKEND,
)
from repro.exec.journal import (
    JOURNAL_FILENAME,
    JournalError,
    JournalWriter,
    RecoveryReport,
)
from repro.exec.metrics import Metrics
from repro.exec.resilience import (
    QuarantineRecord,
    ResilienceConfig,
    ResilientRunner,
    StageCoverage,
)
from repro.geo.cymru import WhoisService
from repro.geo.maxmind import GeoDatabase
from repro.products.registry import NETSWEEPER, SMARTFILTER, default_registry
from repro.scan.banner import scan_world
from repro.scan.shodan import ShodanIndex, build_prematch
from repro.store import CommitResult, ResultsStore, study_epoch
from repro.scan.whatweb import WhatWebEngine, world_probe
from repro.world.clock import SimTime
from repro.world.content import ContentClass
from repro.world.faults import FaultPlan
from repro.world.scenario import (
    DEFAULT_SEED,
    Scenario,
    ScenarioConfig,
    build_scenario,
)

_CATEGORY_CONTENT: Dict[str, ContentClass] = {
    "Proxy Avoidance": ContentClass.PROXY_ANONYMIZER,
    "Proxy anonymizer": ContentClass.PROXY_ANONYMIZER,
    "Anonymizers": ContentClass.PROXY_ANONYMIZER,
    "Pornography": ContentClass.ADULT_IMAGES,
}


def config_for_row(row: Table3Row) -> ConfirmationConfig:
    """Derive the §4 experiment parameters for one published case.

    The vendor-specific knobs — which form category to request and
    whether accessibility can be pre-validated (§4.4: Netsweeper queues
    accesses) — come off the product's registry spec.
    """
    spec = default_registry().get(row.product)
    content_class = _CATEGORY_CONTENT[row.category]
    is_yemen = row.isp_key == "yemennet"
    return ConfirmationConfig(
        product_name=row.product,
        isp_name=row.isp_key,
        content_class=content_class,
        category_label=row.category,
        requested_category=spec.category_requests.get(content_class),
        total_domains=row.total,
        submit_count=row.submitted,
        pre_validate=spec.pre_validate,
        retest_rounds=3 if is_yemen else 1,  # §4.4: inconsistent blocking
    )


@dataclass
class StudyReport:
    """Everything the full campaign produced."""

    identification: IdentificationReport
    confirmations: List[ConfirmationResult] = field(default_factory=list)
    category_probe: Optional[CategoryProbeResult] = None
    characterizations: Dict[str, CharacterizationResult] = field(
        default_factory=dict
    )

    def confirmation_for(
        self, product: str, isp_key: str, category: str
    ) -> Optional[ConfirmationResult]:
        for result in self.confirmations:
            cfg = result.config
            if (
                cfg.product_name == product
                and cfg.isp_name == isp_key
                and cfg.category_label == category
            ):
                return result
        return None

    def confirmed_pairs(self) -> List[Tuple[str, str]]:
        """(product, isp) pairs where censorship use was confirmed."""
        return sorted(
            {
                (r.config.product_name, r.config.isp_name)
                for r in self.confirmations
                if r.confirmed
            }
        )


#: Which published artifact each resilience stage feeds, for the
#: partial-data annotations.
_STAGE_ARTIFACTS: Dict[str, str] = {
    "scan": "Table 2 / Figure 1 (identification scan)",
    "validate": "Table 2 / Figure 1 (WhatWeb validation)",
    "confirm": "Table 3 (confirmation case studies)",
    "probe": "§4.4 category probe",
    "characterize": "Table 4 (content characterization)",
}


@dataclass
class PartialStudyResult:
    """A study that completed under faults, with its gaps made explicit.

    Wraps the ordinary :class:`StudyReport` — every table the campaign
    could still derive — together with the resilience layer's account of
    what was lost: per-stage coverage counters, the quarantine
    dead-letter list, and final breaker states. ``annotations()`` maps
    incomplete stages onto the paper artifacts (Table 2–4 cells) they
    feed, so a reader of a degraded run knows which numbers rest on
    partial data.
    """

    report: StudyReport
    fault_plan: FaultPlan
    coverage: Dict[str, StageCoverage] = field(default_factory=dict)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    breaker_states: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every attempted probe eventually succeeded."""
        return all(cov.complete for cov in self.coverage.values())

    def annotations(self) -> List[str]:
        """Partial-data caveats for the affected paper artifacts."""
        notes: List[str] = []
        for stage, cov in sorted(self.coverage.items()):
            if cov.complete:
                continue
            artifact = _STAGE_ARTIFACTS.get(stage, stage)
            notes.append(
                f"{artifact}: derived from partial data — {cov.describe()}"
            )
        return notes

    def summary_lines(self) -> List[str]:
        """Human-readable degradation summary for the CLI."""
        lines = [f"fault plan: {self.fault_plan.describe()}"]
        lines.append("stage coverage:")
        for stage, cov in sorted(self.coverage.items()):
            lines.append(f"  {stage:14s} {cov.describe()}")
        for note in self.annotations():
            lines.append(f"partial: {note}")
        if self.breaker_states:
            tripped = {
                name: state
                for name, state in self.breaker_states.items()
                if state[1] > 0 or state[0] != "closed"
            }
            if tripped:
                lines.append("circuit breakers:")
                for name, (state, trips) in sorted(tripped.items()):
                    lines.append(f"  {name:24s} {state} ({trips} trip(s))")
        if self.quarantined:
            lines.append(f"quarantined probes: {len(self.quarantined)}")
        return lines


class StudyUnit:
    """One sequential step of the campaign: a key, a stage, a runner.

    Units are the durability granularity: the runner executes with the
    world at a defined sim instant and leaves it at the next one, and
    everything it mutates is covered by the checkpoint state inventory.
    """

    def __init__(self, key: str, stage: str, runner: Callable[[], Any]) -> None:
        self.key = key
        self.stage = stage
        self.runner = runner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StudyUnit {self.key}>"


class FullStudy:
    """Drives the complete reproduction against one scenario.

    ``workers`` fans the independent parts of each stage (Shodan query
    expansions, WhatWeb probes, banner grabs, URL batches) across a
    thread pool; ``link_latency`` models the per-request field RTT that
    parallelism amortizes. Results are byte-identical at any worker
    count: world-mutating fetches commit in submission order and all
    merges are submission-ordered (see docs/methodology.md, "Execution
    model").
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        products: Optional[Sequence[str]] = None,
        shodan_coverage: float = 1.0,
        geo_error_rate: float = 0.0,
        workers: int = 1,
        link_latency: float = 0.0,
        metrics: Optional[Metrics] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: int = 2,
        fail_fast: bool = False,
        scan_shards: Optional[int] = None,
        scan_backend: str = THREAD_BACKEND,
        record_confidence: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if link_latency < 0:
            raise ValueError("link_latency must be >= 0")
        if scan_shards is not None and scan_shards < 1:
            raise ValueError("scan_shards must be >= 1")
        if scan_backend not in BACKENDS:
            raise ValueError(
                f"unknown scan backend {scan_backend!r}; one of {BACKENDS}"
            )
        self._scenario = scenario
        # Resolve eagerly so unknown product names fail fast; None keeps
        # the paper's default selection (the 2013 four).
        self._products: Optional[Tuple[str, ...]] = (
            None
            if products is None
            else tuple(
                spec.name for spec in default_registry().resolve(products)
            )
        )
        self._shodan_coverage = shodan_coverage
        self._geo_error_rate = geo_error_rate
        self._link_latency = link_latency
        # Execution-shape knobs: like workers, they must not influence
        # study identity — the determinism matrix pins this down.
        self._scan_shards = scan_shards
        self._scan_backend = scan_backend
        self._max_retries = max_retries
        self._fail_fast = fail_fast
        # Opt-in: persist fused confidence + signal breakdowns on epoch
        # rows. Off by default so paper-default epoch ids (content
        # hashes over the row bytes) stay byte-identical.
        self._record_confidence = record_confidence
        self.metrics = metrics if metrics is not None else Metrics()
        self.executor = Executor(
            workers=workers, metrics=self.metrics, name="study"
        )
        self.caches = StudyCaches()
        scenario.world.enable_dns_cache(self.caches.dns)
        # The checkpoint baseline: campaign-registered domains are the
        # delta against this set. Must be captured before any unit runs.
        self._baseline_domains = frozenset(scenario.world.websites)
        self._results: Dict[str, Any] = {}
        self._characterization: Optional[ContentCharacterization] = None
        #: Recovery account of the last journaled run (resume damage,
        #: snapshot choice, replayed units); None for plain runs.
        self.last_recovery: Optional[RecoveryReport] = None
        # The epoch window opens where the scenario's clock starts; it
        # closes at commit time, after the last unit has advanced it.
        self._window_start = scenario.world.now.minutes
        #: Epoch id of the last store commit this study made, if any.
        self.last_epoch_id: Optional[str] = None
        # The resilience layer exists only when a chaos plan is active:
        # the fault-free baseline takes the untouched code paths and
        # stays byte-identical.
        self.fault_plan = fault_plan
        self.resilience: Optional[ResilientRunner] = None
        if fault_plan is not None and fault_plan.active:
            scenario.world.install_faults(fault_plan)
            self.resilience = ResilientRunner(
                ResilienceConfig(
                    max_retries=max_retries,
                    jitter_seed=fault_plan.seed,
                    fail_fast=fail_fast,
                ),
                clock=lambda: scenario.world.now,
                metrics=self.metrics,
            )

    # ------------------------------------------------------------- stages
    def run_identification(self) -> IdentificationReport:
        """§3: scan → index → keyword x ccTLD → WhatWeb → geo/whois."""
        world = self._scenario.world
        registry = default_registry()
        with self.metrics.timer("stage.identify"):
            records = scan_world(
                world,
                registry.scan_ports(self._products),
                coverage=self._shodan_coverage,
                executor=self.executor,
                probe_latency=self._link_latency,
                resilience=self.resilience,
                shards=self._scan_shards,
            )
            geo_rng = None
            if self._geo_error_rate:
                from repro.world.rng import derive_rng

                geo_rng = derive_rng(world.seed, "geo-errors")
            geo = GeoDatabase.build_from_world(
                world, error_rate=self._geo_error_rate, rng=geo_rng
            )
            # The banner index geolocates every record up front; routing
            # it through the shared cache turns the §3 candidate
            # re-lookups into hits.
            prematch = None
            if self._scan_backend == PROCESS_BACKEND:
                # CPU-bound signature matching is the half of the sweep
                # a process pool can genuinely parallelize; records
                # cross the boundary as plain picklable data and the
                # per-record result table is order-independent.
                keywords = [
                    keyword
                    for spec in registry.resolve(
                        None if self._products is None
                        else list(self._products)
                    )
                    for keyword in spec.shodan_keywords
                ]
                match_executor = Executor(
                    workers=self.executor.workers,
                    backend=PROCESS_BACKEND,
                    metrics=self.metrics,
                    name="study-match",
                )
                prematch = build_prematch(records, keywords, match_executor)
            shodan = ShodanIndex(
                records,
                geolocate=self.caches.wrap_geo(geo.country_code),
                query_cache=self.caches.banner,
                prematch=prematch,
            )
            whatweb = WhatWebEngine(
                world_probe(world),
                signatures=registry.whatweb_signatures(self._products),
                probe_plan=registry.probe_plan(self._products),
            )
            whois = WhoisService.build_from_world(world)
            pipeline = IdentificationPipeline(
                shodan,
                whatweb,
                geo,
                whois,
                executor=self.executor,
                caches=self.caches,
                resilience=self.resilience,
            )
            return pipeline.run(self._products)

    # ---------------------------------------------------------- unit plan
    def _selection(self) -> Sequence[str]:
        return self._products or default_registry().default_names()

    def _confirm_schedule(
        self,
    ) -> List[Tuple[SimTime, Optional[Table3Row]]]:
        selection = self._selection()
        schedule: List[Tuple[SimTime, Optional[Table3Row]]] = [
            (SimTime.from_date(row.date[0], row.date[1], 10), row)
            for row in PAPER_TABLE3
            if row.product in selection
        ]
        if NETSWEEPER in selection:
            # The YemenNet category probe ran in January 2013 (§4.4).
            schedule.append((SimTime.from_date(2013, 1, 15), None))
        schedule.sort(key=lambda item: (item[0], _row_order(item[1])))
        return schedule

    def _characterize_pairs(self) -> Tuple[Tuple[str, str], ...]:
        selection = self._selection()
        return tuple(
            (isp, product)
            for isp, product in (
                ("etisalat", SMARTFILTER),
                ("du", NETSWEEPER),
                ("yemennet", NETSWEEPER),
                ("ooredoo", NETSWEEPER),
            )
            if product in selection
        )

    def _confirm_units(self) -> List[StudyUnit]:
        units: List[StudyUnit] = []
        for when, row in self._confirm_schedule():
            if row is None:
                units.append(
                    StudyUnit(
                        "probe:yemennet",
                        "probe",
                        lambda when=when: self._unit_probe(when),
                    )
                )
            else:
                units.append(
                    StudyUnit(
                        f"confirm:{row.product}:{row.isp_key}:{row.category}",
                        "confirm",
                        lambda when=when, row=row: self._unit_confirm(when, row),
                    )
                )
        return units

    def _characterize_units(self) -> List[StudyUnit]:
        return [
            StudyUnit(
                f"characterize:{isp}",
                "characterize",
                lambda isp=isp, product=product: self._unit_characterize(
                    isp, product
                ),
            )
            for isp, product in self._characterize_pairs()
        ]

    def plan(self) -> List[StudyUnit]:
        """The campaign as an ordered list of checkpointable units."""
        units = [StudyUnit("identify", "identify", self.run_identification)]
        units.extend(self._confirm_units())
        units.extend(self._characterize_units())
        return units

    # --------------------------------------------------------- unit bodies
    def _unit_confirm(self, when: SimTime, row: Table3Row) -> ConfirmationResult:
        scenario = self._scenario
        world = scenario.world
        with self.metrics.timer("stage.confirm"):
            if world.now < when:
                world.clock.advance_to(when)
            study = ConfirmationStudy(
                world,
                scenario.products[row.product],
                scenario.hosting_asns[0],
                executor=self.executor,
                link_latency=self._link_latency,
                resilience=self.resilience,
            )
            return study.run(config_for_row(row))

    def _unit_probe(self, when: SimTime) -> CategoryProbeResult:
        world = self._scenario.world
        with self.metrics.timer("stage.confirm"):
            if world.now < when:
                world.clock.advance_to(when)
            return run_category_probe(
                world,
                "yemennet",
                executor=self.executor,
                link_latency=self._link_latency,
                resilience=self.resilience,
            )

    def _unit_characterize(self, isp: str, product: str) -> CharacterizationResult:
        if self._characterization is None:
            self._characterization = ContentCharacterization(
                self._scenario.world,
                executor=self.executor,
                link_latency=self._link_latency,
                resilience=self.resilience,
            )
        with self.metrics.timer("stage.characterize"):
            return self._characterization.run(isp, product)

    # ------------------------------------------------------- stage drivers
    def run_confirmations(
        self,
    ) -> Tuple[List[ConfirmationResult], Optional[CategoryProbeResult]]:
        """§4: replay the Table 3 case studies chronologically.

        The schedule itself stays sequential — every case study advances
        the shared clock — but each study's URL batches fan out through
        the executor. With a product selection, only that selection's
        published rows are replayed; the §4.4 category probe runs only
        when Netsweeper is part of the study.
        """
        results: List[ConfirmationResult] = []
        probe: Optional[CategoryProbeResult] = None
        for unit in self._confirm_units():
            outcome = self._results[unit.key] = unit.runner()
            if unit.stage == "probe":
                probe = outcome
            else:
                results.append(outcome)
        if NETSWEEPER in self._selection():
            assert probe is not None
        return results, probe

    def run_characterizations(self) -> Dict[str, CharacterizationResult]:
        """§5: test lists in each confirmed ISP (within 30 days).

        Runs stay in pair order (filter RNG state is shared between
        deployments of one product) while each run's URL list fans out.
        """
        results: Dict[str, CharacterizationResult] = {}
        for unit in self._characterize_units():
            outcome = self._results[unit.key] = unit.runner()
            results[unit.key.partition(":")[2]] = outcome
        return results

    def _assemble(self) -> StudyReport:
        confirmations: List[ConfirmationResult] = []
        probe: Optional[CategoryProbeResult] = None
        characterizations: Dict[str, CharacterizationResult] = {}
        for unit in self._confirm_units():
            outcome = self._results[unit.key]
            if unit.stage == "probe":
                probe = outcome
            else:
                confirmations.append(outcome)
        for isp, _product in self._characterize_pairs():
            characterizations[isp] = self._results[f"characterize:{isp}"]
        return StudyReport(
            identification=self._results["identify"],
            confirmations=confirmations,
            category_probe=probe,
            characterizations=characterizations,
        )

    def _record_cache_metrics(self) -> None:
        for cache in self.caches.all():
            stats = cache.stats
            self.metrics.incr(f"cache.{cache.name}.hits", stats.hits)
            self.metrics.incr(f"cache.{cache.name}.misses", stats.misses)

    def run(self) -> StudyReport:
        """The full campaign in paper order."""
        with self.metrics.timer("study"):
            for unit in self.plan():
                self._results[unit.key] = unit.runner()
        self._record_cache_metrics()
        return self._assemble()

    def run_partial(self) -> PartialStudyResult:
        """The full campaign plus the resilience layer's account of it.

        Valid only when the study was constructed with an active fault
        plan; a study degrades rather than raises — every table that can
        still be derived is, and the gaps are reported alongside.
        """
        if self.resilience is None or self.fault_plan is None:
            raise ValueError(
                "run_partial() requires an active fault plan; "
                "use run() for fault-free studies"
            )
        report = self.run()
        return self._wrap_partial(report)

    def _wrap_partial(self, report: StudyReport) -> PartialStudyResult:
        assert self.resilience is not None and self.fault_plan is not None
        return PartialStudyResult(
            report=report,
            fault_plan=self.fault_plan,
            coverage=self.resilience.coverage(),
            quarantined=self.resilience.quarantined(),
            breaker_states=self.resilience.breaker_states(),
        )

    # ------------------------------------------------------- results store
    def commit_epoch(self, store, outcome=None) -> CommitResult:
        """Commit a completed (or partial) run to a results store.

        ``store`` is a :class:`~repro.store.ResultsStore` or a directory
        path; ``outcome`` defaults to assembling the completed units.
        The epoch carries the study's identity fingerprint (the same one
        the checkpoint layer uses), the sim-clock window the campaign
        spanned, and — for a :class:`PartialStudyResult` — the
        partial-data annotations. Committing is idempotent: the epoch id
        is a content hash, so re-committing an identical run (or the
        same run re-executed at a different ``--workers``) lands on the
        already-durable epoch.
        """
        if not isinstance(store, ResultsStore):
            store = ResultsStore(Path(store))
        if outcome is None:
            outcome = self._assemble()
        if isinstance(outcome, PartialStudyResult):
            report = outcome.report
            partial = outcome.annotations()
        else:
            report = outcome
            partial = ()
        epoch = study_epoch(
            report,
            identity=self.identity(),
            fingerprint=self.config_fingerprint(),
            world=self._scenario.world,
            window=(self._window_start, self._scenario.world.now.minutes),
            partial=partial,
            record_confidence=self._record_confidence,
        )
        result = store.commit(epoch)
        self.last_epoch_id = result.epoch_id
        return result

    # ----------------------------------------------------------- durability
    def identity(self) -> Dict[str, Any]:
        """Everything the study's output is a function of (not workers).

        Worker count, link latency, and metrics change wall-clock and
        instrumentation only — the determinism contract proven by the
        worker-invariance suites — so they are deliberately excluded:
        a run may resume with a different ``--workers`` and must still
        produce byte-identical output. Retry budget and fail-fast are
        included because an active fault plan makes them output-visible.
        """
        identity: Dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "seed": self._scenario.world.seed,
            "scenario": dataclasses.asdict(self._scenario.config),
            "products": (
                None if self._products is None else list(self._products)
            ),
            "shodan_coverage": self._shodan_coverage,
            "geo_error_rate": self._geo_error_rate,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.describe()
            ),
            "max_retries": self._max_retries,
            "fail_fast": self._fail_fast,
        }
        if self._record_confidence:
            # Keyed in only when enabled: confidence fields change the
            # committed row bytes, so the identity must differ — but a
            # default study's fingerprint (and epoch ids) must not move.
            identity["record_confidence"] = True
        return identity

    def config_fingerprint(self) -> str:
        return fingerprint(self.identity())

    def capture_state(self) -> Dict[str, Any]:
        """The complete plain-data study state at a unit boundary.

        The inventory covers everything the remaining units' output can
        depend on: completed unit results, the world delta (clock,
        campaign domains, pool cursors), every vendor's RNG/portal/
        database/queue state, middlebox counters, lookup-cache contents,
        and the resilience layer's breaker/quarantine/coverage state.
        The executor needs no entry: between units it is quiescent (its
        sequencer is created per campaign and has no cross-unit state).
        """
        scenario = self._scenario
        return {
            "results": dict(self._results),
            "world": scenario.world.capture_state(self._baseline_domains),
            "products": {
                name: product.capture_state()
                for name, product in sorted(scenario.products.items())
            },
            "deployments": {
                name: box.capture_state()
                for name, box in sorted(scenario.deployments.items())
            },
            "caches": self.caches.capture_state(),
            "resilience": (
                None if self.resilience is None else self.resilience.capture_state()
            ),
        }

    def restore_state(self, state: Dict[str, Any]) -> Dict[str, Any]:
        """Re-apply a captured state onto this freshly built study.

        Returns the completed unit results. Component order: products
        and deployments first (queues, RNGs, counters), then the world
        delta — whose clock restore deliberately fires no tick
        callbacks, since every queue a tick would mature was just set
        to its exact captured state.
        """
        scenario = self._scenario
        for name, product_state in state["products"].items():
            scenario.products[name].restore_state(product_state)
        for name, box_state in state["deployments"].items():
            scenario.deployments[name].restore_state(box_state)
        scenario.world.restore_state(state["world"])
        self.caches.restore_state(state["caches"])
        if state["resilience"] is not None and self.resilience is not None:
            self.resilience.restore_state(state["resilience"])
        self._results = dict(state["results"])
        return self._results

    def run_journaled(
        self,
        journal_dir: Path,
        *,
        resume: bool = False,
        checkpoint_every: int = 1,
        after_write: Optional[Callable[..., None]] = None,
    ):
        """The full campaign with a write-ahead journal and snapshots.

        Fresh runs create ``journal.jsonl`` in ``journal_dir`` and
        snapshot after every ``checkpoint_every``-th completed unit
        (always after the last). With ``resume=True`` a prior run's
        durable state is recovered first: the journal's valid prefix is
        read (torn/corrupt/skewed suffixes truncated and reported), the
        newest verifying snapshot is restored, and only the remaining
        units execute. Output is byte-identical to an uninterrupted
        run; ``self.last_recovery`` records what recovery did.

        ``after_write`` is the crash-matrix test seam, forwarded to
        :class:`JournalWriter` — a hook that raises after the Nth
        durable record simulates a SIGKILL at that journal position.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        journal_dir = Path(journal_dir)
        journal_path = journal_dir / JOURNAL_FILENAME
        identity_fp = self.config_fingerprint()
        report = RecoveryReport()
        if resume:
            writer, records, report = JournalWriter.resume(
                journal_path, after_write=after_write
            )
            self.last_recovery = report
            begin = next((r for r in records if r.kind == "begin"), None)
            if begin is not None and begin.payload.get("fingerprint") != identity_fp:
                writer.close()
                raise CheckpointError(
                    f"journal {journal_path} was written by a different "
                    "study (seed/products/scenario/fault plan differ); "
                    "refusing to resume across identities"
                )
            snapshot = load_latest_snapshot(
                journal_dir, identity_fingerprint=identity_fp, report=report
            )
            if snapshot is not None:
                self.restore_state(snapshot.state)
        else:
            if journal_path.exists():
                raise JournalError(
                    f"journal already exists at {journal_path}; "
                    "pass resume=True (--resume) to continue it"
                )
            writer = JournalWriter.create(journal_path, after_write=after_write)
        self.last_recovery = report
        try:
            if writer.next_seq == 0:
                writer.append(
                    "begin",
                    {
                        "fingerprint": identity_fp,
                        "seed": self._scenario.world.seed,
                    },
                )
            units = self.plan()
            report.units_replayed = [
                unit.key for unit in units if unit.key not in self._results
            ]
            done = sum(1 for unit in units if unit.key in self._results)
            with self.metrics.timer("study"):
                for index, unit in enumerate(units):
                    if unit.key in self._results:
                        continue
                    writer.append("unit-start", {"key": unit.key})
                    self._results[unit.key] = unit.runner()
                    done += 1
                    writer.append("unit-commit", {"key": unit.key, "done": done})
                    last = index == len(units) - 1
                    if last or done % checkpoint_every == 0:
                        path = write_snapshot(
                            journal_dir,
                            seq=done,
                            identity_fingerprint=identity_fp,
                            state=self.capture_state(),
                        )
                        writer.append(
                            "snapshot", {"file": path.name, "done": done}
                        )
            writer.append("final", {"units": len(units)})
        finally:
            writer.close()
        self._record_cache_metrics()
        study_report = self._assemble()
        if self.resilience is not None:
            return self._wrap_partial(study_report)
        return study_report


def run_full_study(
    seed: int = DEFAULT_SEED,
    *,
    products: Optional[Sequence[str]] = None,
    workers: int = 1,
    link_latency: float = 0.0,
    metrics: Optional[Metrics] = None,
    shodan_coverage: float = 1.0,
    geo_error_rate: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    max_retries: int = 2,
    fail_fast: bool = False,
    scenario_config: Optional[ScenarioConfig] = None,
    journal_dir: Optional[Path] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    store_dir: Optional[Path] = None,
    scan_shards: Optional[int] = None,
    scan_backend: str = THREAD_BACKEND,
    record_confidence: bool = False,
):
    """Build the scenario for ``seed`` and run the whole campaign.

    The report is a pure function of ``seed``, ``products`` and the
    scenario knobs: ``workers``/``link_latency``/``metrics`` change only
    wall-clock and instrumentation, never the result.

    Without a fault plan (or with an inert one) this returns the plain
    :class:`StudyReport`, byte-identical to earlier versions. With an
    active plan it returns a :class:`PartialStudyResult` wrapping the
    report plus coverage/quarantine accounting — itself a pure function
    of ``(seed, products, plan)``, identical at any worker count.

    With ``journal_dir`` the run is durable: a write-ahead journal plus
    periodic snapshots land in that directory, and ``resume=True``
    continues a killed run from its newest valid snapshot — producing
    the same pure-function output as an uninterrupted run.

    With ``store_dir`` the completed run is additionally committed to
    the longitudinal results store at that directory as one immutable
    epoch (readable back through :mod:`repro.query` and servable by
    :mod:`repro.serve`).
    """
    scenario = build_scenario(seed=seed, config=scenario_config)
    study = FullStudy(
        scenario,
        products=products,
        shodan_coverage=shodan_coverage,
        geo_error_rate=geo_error_rate,
        workers=workers,
        link_latency=link_latency,
        metrics=metrics,
        fault_plan=fault_plan,
        max_retries=max_retries,
        fail_fast=fail_fast,
        scan_shards=scan_shards,
        scan_backend=scan_backend,
        record_confidence=record_confidence,
    )
    if journal_dir is not None:
        outcome = study.run_journaled(
            journal_dir, resume=resume, checkpoint_every=checkpoint_every
        )
    elif study.resilience is not None:
        outcome = study.run_partial()
    else:
        outcome = study.run()
    if store_dir is not None:
        study.commit_epoch(store_dir, outcome)
    return outcome


def run_distributed_scan(
    coordinator_dir: Path,
    store_dir: Path,
    *,
    seed: int = DEFAULT_SEED,
    host_count: int = 100_000,
    shard_count: int = 16,
    products: Optional[Sequence[str]] = None,
    batch_size: int = 1000,
    latency: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    workers: int = 3,
    lease_ttl: float = 30.0,
    straggler_after: Optional[float] = None,
    max_attempts: int = 3,
    timeout: Optional[float] = None,
):
    """:func:`run_full_study`'s sibling for the internet-scale identify pass.

    Runs the streaming §3 sweep distributed across ``workers``
    independent OS processes coordinated through a crash-tolerant
    work-queue at ``coordinator_dir`` (see :mod:`repro.coord`), and
    commits the result to the store at ``store_dir``. The committed
    epoch id is byte-identical to a single-machine
    :class:`~repro.scan.stream.StreamingScan` run of the same identity;
    a scan whose retry budgets ran out returns an explicit
    :class:`~repro.coord.coordinator.PartialScanResult` with nothing
    committed. Like the study entry point, the outcome is a pure
    function of ``(seed, population identity, fault plan)`` — worker
    count, lease policy and shard count never change it.
    """
    from repro.coord.runner import run_distributed_scan as _run
    from repro.world.population import ShardedPopulationConfig

    resolved = (
        None
        if products is None
        else tuple(
            spec.name for spec in default_registry().resolve(list(products))
        )
    )
    config = ShardedPopulationConfig(
        host_count=host_count,
        shard_count=shard_count,
        products=resolved,
    )
    return _run(
        coordinator_dir,
        ResultsStore(store_dir),
        seed=seed,
        config=config,
        batch_size=batch_size,
        latency=latency,
        fault_plan=fault_plan,
        workers=workers,
        lease_ttl=lease_ttl,
        straggler_after=straggler_after,
        max_attempts=max_attempts,
        timeout=timeout,
    )


def _row_order(row: Optional[Table3Row]) -> int:
    if row is None:
        return -1
    return PAPER_TABLE3.index(row)

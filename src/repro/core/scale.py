"""Scalability cost model (§6.1, §7).

The paper notes that if vendors evade scanning, "we could apply the
techniques of Section 4 more widely, but scalability issues would make
this time consuming". This module quantifies that trade-off: the
resource cost of confirmation campaigns, and the reduction the §3
identification pre-filter buys by telling the project *where* to spend
in-country effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.confirm import ConfirmationConfig
from repro.core.identify import IdentificationReport


@dataclass(frozen=True)
class CampaignCost:
    """Resources one confirmation campaign consumes."""

    target_isps: int
    domains_registered: int
    vendor_submissions: int
    field_fetches: int
    wall_clock_days: float

    def __add__(self, other: "CampaignCost") -> "CampaignCost":
        return CampaignCost(
            self.target_isps + other.target_isps,
            self.domains_registered + other.domains_registered,
            self.vendor_submissions + other.vendor_submissions,
            self.field_fetches + other.field_fetches,
            # Campaigns in different ISPs can run concurrently; wall
            # clock is the max, not the sum.
            max(self.wall_clock_days, other.wall_clock_days),
        )


def case_study_cost(config: ConfirmationConfig) -> CampaignCost:
    """Cost of one §4 case study under the given parameters."""
    pre_fetches = config.total_domains if config.pre_validate else 0
    retest_fetches = config.total_domains * config.retest_rounds
    wall_days = config.wait_days + (
        (config.retest_rounds - 1) * config.round_gap_days
    )
    return CampaignCost(
        target_isps=1,
        domains_registered=config.total_domains,
        vendor_submissions=config.submit_count,
        # Every field fetch has a paired lab fetch (§4.1).
        field_fetches=2 * (pre_fetches + retest_fetches),
        wall_clock_days=wall_days,
    )


def campaign_cost(
    configs: Sequence[ConfirmationConfig],
) -> CampaignCost:
    """Total cost of a multi-ISP campaign (ISPs run concurrently)."""
    if not configs:
        return CampaignCost(0, 0, 0, 0, 0.0)
    total = case_study_cost(configs[0])
    for config in configs[1:]:
        total = total + case_study_cost(config)
    return total


def exhaustive_campaign(
    isp_names: Sequence[str], template: ConfirmationConfig
) -> CampaignCost:
    """Cost of confirming *everywhere* (no identification pre-filter)."""
    configs = [
        ConfirmationConfig(
            product_name=template.product_name,
            isp_name=name,
            content_class=template.content_class,
            category_label=template.category_label,
            requested_category=template.requested_category,
            total_domains=template.total_domains,
            submit_count=template.submit_count,
            wait_days=template.wait_days,
            pre_validate=template.pre_validate,
            retest_rounds=template.retest_rounds,
        )
        for name in isp_names
    ]
    return campaign_cost(configs)


def targeted_campaign(
    identification: IdentificationReport,
    product: str,
    isp_of_asn,
    template: ConfirmationConfig,
) -> CampaignCost:
    """Cost of confirming only where §3 found the product.

    ``isp_of_asn`` maps an AS number to an ISP name (None = no vantage
    there); installations without a mappable vantage are skipped, which
    mirrors the real constraint that §4 "requires vantage points in the
    network being considered".
    """
    targets = []
    seen = set()
    for installation in identification.by_product(product):
        isp_name = isp_of_asn(installation.asn)
        if isp_name is None or isp_name in seen:
            continue
        seen.add(isp_name)
        targets.append(isp_name)
    return exhaustive_campaign(targets, template)


def reduction_factor(
    exhaustive: CampaignCost, targeted: CampaignCost
) -> float:
    """How much in-country work the identification pre-filter saves."""
    if targeted.field_fetches == 0:
        return float("inf")
    return exhaustive.field_fetches / targeted.field_fetches

"""Global confirmation survey (§7).

The paper closes by asking how to characterize URL-filter use "in a high
confidence, yet scalable, way" toward "a more complete picture of URL
filtering deployments". This module is that generalization: take the §3
identification output, map installations to available vantage points,
and run the §4 confirmation methodology against *every* (product, ISP)
pair — trying a short ladder of content categories per pair, because (as
§7 notes) the methodology "require[s] that we identify which categories
are blocked in each ISP before creating test sites".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.confirm import ConfirmationConfig, ConfirmationResult, ConfirmationStudy
from repro.core.identify import IdentificationReport
from repro.products.base import UrlFilterProduct
from repro.products.registry import default_registry
from repro.world.content import ContentClass
from repro.world.world import World


def _ladder() -> Sequence[Tuple[ContentClass, Dict[str, Optional[str]]]]:
    registry = default_registry()
    return tuple(
        (
            content_class,
            {
                spec.name: spec.category_requests.get(content_class)
                for spec in registry.all()
            },
        )
        for content_class in (
            ContentClass.PROXY_ANONYMIZER,
            ContentClass.ADULT_IMAGES,
            ContentClass.PORNOGRAPHY,
        )
    )


#: The category ladder: content classes tried per target, in order, with
#: the vendor category name to request per product (from each spec's
#: ``category_requests``; None where the vendor's form takes no
#: category, like Netsweeper's test-a-site). Proxy content first (the
#: most commonly blocked class in the paper's case studies), then adult
#: content (the Saudi lesson of §4.3: proxies accessible, porn not) —
#: vendors categorize a bare adult image differently from a porn site,
#: and operators may block one and not the other, so both rungs are
#: needed.
CATEGORY_LADDER: Sequence[Tuple[ContentClass, Dict[str, Optional[str]]]] = (
    _ladder()
)


@dataclass
class SurveyTarget:
    """One (product, ISP) pair the survey will test."""

    product_name: str
    isp_name: str
    asn: Optional[int] = None


@dataclass
class SurveyEntry:
    """The survey's verdict for one target."""

    target: SurveyTarget
    attempts: List[ConfirmationResult] = field(default_factory=list)

    @property
    def confirmed(self) -> bool:
        return any(attempt.confirmed for attempt in self.attempts)

    @property
    def confirming_category(self) -> Optional[str]:
        for attempt in self.attempts:
            if attempt.confirmed:
                return attempt.config.category_label
        return None


@dataclass
class SurveyReport:
    entries: List[SurveyEntry] = field(default_factory=list)

    def confirmed_pairs(self) -> List[Tuple[str, str]]:
        return sorted(
            (entry.target.product_name, entry.target.isp_name)
            for entry in self.entries
            if entry.confirmed
        )

    def confirmed_count(self) -> int:
        return sum(1 for entry in self.entries if entry.confirmed)

    def by_product(self, product_name: str) -> List[SurveyEntry]:
        return [
            entry
            for entry in self.entries
            if entry.target.product_name == product_name
        ]

    def summary_lines(self) -> List[str]:
        lines = []
        for entry in self.entries:
            state = (
                f"CONFIRMED via {entry.confirming_category}"
                if entry.confirmed
                else "not confirmed"
            )
            lines.append(
                f"{entry.target.product_name:20s} {entry.target.isp_name:20s} {state}"
            )
        return lines


class GlobalSurvey:
    """Runs the §4 methodology against every reachable identification hit."""

    def __init__(
        self,
        world: World,
        products: Dict[str, UrlFilterProduct],
        hosting_asn: int,
        *,
        isp_of_asn: Optional[Callable[[Optional[int]], Optional[str]]] = None,
    ) -> None:
        self._world = world
        self._products = products
        self._hosting_asn = hosting_asn
        if isp_of_asn is None:
            asn_map = {isp.asn: name for name, isp in world.isps.items()}
            isp_of_asn = asn_map.get
        self._isp_of_asn = isp_of_asn

    # ---------------------------------------------------------------- plan
    def plan(self, identification: IdentificationReport) -> List[SurveyTarget]:
        """Targets: identified installations with an available vantage.

        The engine products of stacked boxes appear as their own
        installations (their surfaces are fingerprinted too), so the
        plan covers them naturally.
        """
        targets: List[SurveyTarget] = []
        seen = set()
        for installation in identification.installations:
            isp_name = self._isp_of_asn(installation.asn)
            if isp_name is None:
                continue
            key = (installation.product, isp_name)
            if key in seen:
                continue
            seen.add(key)
            targets.append(
                SurveyTarget(installation.product, isp_name, installation.asn)
            )
        return targets

    # ----------------------------------------------------------------- run
    def run(self, targets: Sequence[SurveyTarget]) -> SurveyReport:
        """Try the category ladder against each target, stopping early
        once a category confirms."""
        report = SurveyReport()
        for target in targets:
            product = self._products.get(target.product_name)
            if product is None:
                continue
            entry = SurveyEntry(target)
            study = ConfirmationStudy(
                self._world, product, self._hosting_asn
            )
            for content_class, request_map in CATEGORY_LADDER:
                config = self._config_for(
                    target, product, content_class, request_map
                )
                entry.attempts.append(study.run(config))
                if entry.attempts[-1].confirmed:
                    break
            report.entries.append(entry)
        return report

    def _config_for(
        self,
        target: SurveyTarget,
        product: UrlFilterProduct,
        content_class: ContentClass,
        request_map: Dict[str, Optional[str]],
    ) -> ConfirmationConfig:
        spec = default_registry().find(target.product_name)
        label = (
            content_class.value.replace("_", " ").title()
        )
        return ConfirmationConfig(
            product_name=target.product_name,
            isp_name=target.isp_name,
            content_class=content_class,
            category_label=label,
            requested_category=request_map.get(target.product_name),
            total_domains=8,
            submit_count=4,
            pre_validate=spec.pre_validate if spec else True,
        )


def run_global_survey(
    world: World,
    products: Dict[str, UrlFilterProduct],
    hosting_asn: int,
    identification: IdentificationReport,
) -> SurveyReport:
    """Convenience wrapper: plan + run in one call."""
    survey = GlobalSurvey(world, products, hosting_asn)
    return survey.run(survey.plan(identification))

"""The ONI's legacy identification channel (§2.2).

Before the scan-based method, "our methods for identifying these
products consisted of manual analysis of block pages for company
logos/branding and product names in HTTP headers", fed by user reports
that "tend to be biased towards certain regions of interest (e.g., the
MENA region)". This module models that channel so the paper's motivation
for §3 is measurable:

- **Region bias** — reports only arrive from ISPs where the project has
  contacts; installations elsewhere are invisible.
- **Branding dependence** — the analyst matches vendor names/logos in
  the block page; once a vendor removes branding (§2.2), the report is
  unattributable even though blocking is obvious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.measure.client import MeasurementClient
from repro.net.fetch import FetchResult
from repro.net.url import Url
from repro.products.registry import default_registry
from repro.world.content import ContentClass
from repro.world.clock import SimTime
from repro.world.world import World

#: Brand strings a human analyst recognizes on a block page. Deliberately
#: branding-only: no structural knowledge (ports, deny paths) — that is
#: exactly what the §3 signatures add. Drawn from every registered
#: product (the analyst recognizes any vendor's logo, not just the
#: paper's four).
BRAND_MARKS: Sequence[Tuple[str, str]] = default_registry().brand_marks()


@dataclass
class UserReport:
    """One in-country user's report of a blocked page."""

    reporter_isp: str
    country_code: str
    url: Url
    page_text: str
    reported_at: SimTime


@dataclass
class LegacyFinding:
    """The analyst's conclusion for one (product, country)."""

    product: str
    country_code: str
    supporting_reports: int


@dataclass
class LegacyReport:
    """Everything the legacy channel produced."""

    reports: List[UserReport] = field(default_factory=list)
    findings: List[LegacyFinding] = field(default_factory=list)
    unattributed_reports: int = 0

    def countries(self, product: str) -> Set[str]:
        return {
            f.country_code for f in self.findings if f.product == product
        }

    def country_map(self) -> Dict[str, Set[str]]:
        products = {f.product for f in self.findings}
        return {product: self.countries(product) for product in products}


def analyze_block_page(page_text: str) -> Optional[str]:
    """Manual branding analysis: which vendor does this page name?"""
    lowered = page_text.lower()
    for needle, product in BRAND_MARKS:
        if needle in lowered:
            return product
    return None


class UserReportChannel:
    """Collects blocked-page reports from users in chosen ISPs.

    ``reporter_isps`` encodes the contact-network bias: only these
    networks produce reports, regardless of where filters actually run.
    """

    #: Content classes in-country users commonly stumble into blocks on.
    PROBE_CLASSES = (
        ContentClass.PROXY_ANONYMIZER,
        ContentClass.PORNOGRAPHY,
        ContentClass.LGBT,
        ContentClass.POLITICAL_OPPOSITION,
        ContentClass.HUMAN_RIGHTS,
        ContentClass.INDEPENDENT_MEDIA,
    )

    def __init__(
        self,
        world: World,
        reporter_isps: Sequence[str],
        *,
        urls_per_reporter: int = 25,
    ) -> None:
        self._world = world
        self._reporter_isps = list(reporter_isps)
        self._urls_per_reporter = urls_per_reporter

    def _candidate_urls(self) -> List[Url]:
        world = self._world
        urls = [
            Url.for_host(domain)
            for domain in sorted(world.websites)
            if world.websites[domain].content_class in self.PROBE_CLASSES
        ]
        return urls[: self._urls_per_reporter * 4]

    def collect(self) -> List[UserReport]:
        """Each reporter browses sensitive URLs and reports blocks."""
        world = self._world
        reports: List[UserReport] = []
        candidates = self._candidate_urls()
        for isp_name in self._reporter_isps:
            isp = world.isps[isp_name]
            client = MeasurementClient(
                world.vantage(isp_name), world.lab_vantage()
            )
            for url in candidates[: self._urls_per_reporter]:
                test = client.test_url(url)
                if not test.blocked:
                    continue
                reports.append(
                    UserReport(
                        reporter_isp=isp_name,
                        country_code=isp.country.code,
                        url=url,
                        page_text=_page_text(test.field_result),
                        reported_at=world.now,
                    )
                )
        return reports


def _page_text(result: FetchResult) -> str:
    """What the user pastes into a report: the final page + its chain."""
    pieces = []
    for hop in result.hops:
        location = hop.response.location
        if location:
            pieces.append(location)
        pieces.append(hop.response.body)
    return "\n".join(pieces)


def run_legacy_identification(
    world: World, reporter_isps: Sequence[str], **kwargs
) -> LegacyReport:
    """The full §2.2-era pipeline: collect reports, analyze branding."""
    channel = UserReportChannel(world, reporter_isps, **kwargs)
    legacy = LegacyReport(reports=channel.collect())
    tally: Dict[Tuple[str, str], int] = {}
    for report in legacy.reports:
        product = analyze_block_page(report.page_text)
        if product is None:
            legacy.unattributed_reports += 1
            continue
        key = (product, report.country_code)
        tally[key] = tally.get(key, 0) + 1
    legacy.findings = [
        LegacyFinding(product, country, count)
        for (product, country), count in sorted(tally.items())
    ]
    return legacy

"""Command-line interface.

Subcommands mirror the methodology's stages::

    python -m repro study              # the full campaign + report
    python -m repro identify           # §3 only
    python -m repro confirm --product "McAfee SmartFilter" --isp bayanat
    python -m repro probe --isp yemennet
    python -m repro netalyzr --isp etisalat --isp du
    python -m repro study --store results/     # commit a durable epoch
    python -m repro query --store results/ epochs
    python -m repro query --store results/ diff
    python -m repro serve --store results/ --port 8000

All measurement commands accept ``--seed``; the default seed reproduces
the paper's published cells exactly. ``query`` and ``serve`` are pure
readers over a results store written by ``study --store``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.report import write_execution_summary, write_markdown_report
from repro.analysis.tables import (
    render_category_probe,
    render_figure1,
    render_table3,
)
from repro.analysis.paper_data import PAPER_TABLE3
from repro.core.confirm import ConfirmationStudy, run_category_probe
from repro.core.pipeline import FullStudy, PartialStudyResult, config_for_row
from repro.measure.netalyzr import survey_isps
from repro.products.registry import NETSWEEPER, default_registry
from repro.world.faults import FaultPlan
from repro.world.scenario import DEFAULT_SEED, build_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMC'13 URL-filter censorship study (reproduction)",
    )
    # Default None (resolved via _seed) so commands that must refuse an
    # *explicitly* mismatched seed — scan-worker joining a coordinator —
    # can tell "user typed --seed" from "default applied".
    parser.add_argument(
        "--seed", type=int, default=None,
        help=f"scenario seed (default {DEFAULT_SEED}, paper-calibrated)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the full campaign")
    study.add_argument(
        "--output", help="write the markdown report to this file"
    )
    study.add_argument(
        "--json", dest="json_output",
        help="also export the raw results as JSON to this file",
    )
    study.add_argument(
        "--workers", type=int, default=1,
        help="parallel campaign workers (default 1; results are "
        "byte-identical at any worker count)",
    )
    study.add_argument(
        "--latency", type=float, default=0.0, metavar="SECONDS",
        help="simulated field-link RTT per request (default 0; this is "
        "the cost --workers amortizes)",
    )
    study.add_argument(
        "--metrics", action="store_true",
        help="print the execution summary (timings, fan-out, caches)",
    )
    study.add_argument(
        "--products", action="append", metavar="NAME",
        help="repeatable: restrict the study to these registered "
        "products (default: the paper's four vendors)",
    )
    study.add_argument(
        "--fault-plan", metavar="SPEC",
        help="run under a seeded chaos plan, e.g. "
        "'seed=7,dns_timeout=0.05,reset=0.02,outage=yemennet:300:305'; "
        "the study degrades to a partial result instead of failing",
    )
    study.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per probe for transient faults (default 2)",
    )
    study.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first injected fault instead of degrading",
    )
    study.add_argument(
        "--journal", metavar="DIR",
        help="write a crash-safe journal + snapshots into DIR; a killed "
        "run can be continued with --resume",
    )
    study.add_argument(
        "--resume", action="store_true",
        help="resume a previous --journal run from its newest valid "
        "snapshot (requires --journal)",
    )
    study.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot after every N completed study units (default 1)",
    )
    study.add_argument(
        "--store", metavar="DIR",
        help="commit the completed run to the longitudinal results "
        "store at DIR as one immutable epoch (query it back with "
        "'repro query', serve it with 'repro serve')",
    )
    study.add_argument(
        "--shards", type=int, metavar="N",
        help="drive the §3 banner scan as N bounded-in-flight target "
        "chunks instead of one future per host (same records, flat "
        "memory; epoch ids are invariant to this)",
    )
    study.add_argument(
        "--scan-backend", choices=("thread", "process"), default="thread",
        help="where CPU-bound signature matching runs (default thread; "
        "'process' fans it over a process pool — results identical)",
    )
    study.add_argument(
        "--record-confidence", action="store_true",
        help="persist fused verdict confidences and per-classifier "
        "signal breakdowns in committed epochs (changes row bytes, so "
        "the epoch id differs from a default run)",
    )

    scan = commands.add_parser(
        "scan", help="streaming identify pass over a synthetic host space"
    )
    scan.add_argument(
        "--store", required=True, metavar="DIR",
        help="results store directory; matched installations stream "
        "into one immutable epoch",
    )
    scan.add_argument(
        "--hosts", type=int, default=100_000, metavar="N",
        help="synthetic host population size (default 100000)",
    )
    scan.add_argument(
        "--shards", type=int, default=16, metavar="N",
        help="population shards; shard k regenerates from (seed, k) "
        "alone, and the epoch id is invariant to N (default 16)",
    )
    scan.add_argument(
        "--batch-size", type=int, default=1000, metavar="N",
        help="hosts per scan batch (default 1000)",
    )
    scan.add_argument(
        "--workers", type=int, default=1,
        help="parallel batch workers (default 1; results are "
        "byte-identical at any worker count)",
    )
    scan.add_argument(
        "--scan-backend", choices=("thread", "process"), default="thread",
        help="batch execution backend (default thread)",
    )
    scan.add_argument(
        "--window", type=int, metavar="N",
        help="max in-flight batches (default 2x workers); the "
        "backpressure bound that keeps memory flat",
    )
    scan.add_argument(
        "--latency", type=float, default=0.0, metavar="SECONDS",
        help="simulated network round-trip per batch (default 0)",
    )
    scan.add_argument(
        "--fault-plan", metavar="SPEC",
        help="scan under a seeded chaos plan (connection faults drop "
        "hosts, corruption degrades banners), e.g. "
        "'seed=7,reset=0.02,truncate=0.05'",
    )
    scan.add_argument(
        "--products", action="append", metavar="NAME",
        help="repeatable: restrict the signature set to these "
        "registered products (default: the paper's four vendors)",
    )
    scan.add_argument(
        "--coordinator", metavar="DIR",
        help="distribute the scan: initialize (or re-attach to) a "
        "crash-tolerant shard work-queue at DIR, wait for scan-worker "
        "processes to drain it, and reconcile their results into the "
        "byte-identical epoch a single-machine scan commits; exits 3 "
        "with nothing committed if retry budgets ran out",
    )
    scan.add_argument(
        "--local-workers", type=int, default=3, metavar="N",
        help="with --coordinator: also spawn N worker processes locally "
        "(default 3; 0 waits for externally started scan-workers)",
    )
    scan.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="with --coordinator: heartbeat deadline per shard lease; a "
        "worker silent this long is presumed dead and its shard is "
        "re-leased (default 30)",
    )
    scan.add_argument(
        "--straggler-after", type=float, default=None, metavar="SECONDS",
        help="with --coordinator: a lease held this long makes its "
        "shard eligible for speculative re-execution by an idle worker "
        "(default 4x the lease TTL)",
    )
    scan.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="with --coordinator: lease attempts per shard before it is "
        "dead-lettered and the scan degrades to explicit partiality "
        "(default 3)",
    )
    scan.add_argument(
        "--wait-timeout", type=float, default=None, metavar="SECONDS",
        help="with --coordinator: give up (exit 1, queue kept on disk) "
        "if the fleet has not finished by then (default: wait forever)",
    )

    worker = commands.add_parser(
        "scan-worker",
        help="join a distributed scan as one leased worker process",
    )
    worker.add_argument(
        "coordinator", metavar="DIR",
        help="coordinator directory created by 'repro scan --coordinator'",
    )
    worker.add_argument(
        "--worker-id", metavar="NAME",
        help="stable worker name for leases and result files "
        "(default: worker-<pid>)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle re-check interval when no shard is claimable "
        "(default 0.2)",
    )

    coord = commands.add_parser(
        "coord", help="inspect a distributed-scan coordinator"
    )
    coord_commands = coord.add_subparsers(dest="coord_command", required=True)
    c_status = coord_commands.add_parser(
        "status",
        help="show shard states: leases, heartbeats, stragglers, "
        "dead-letters, duplicate completions",
    )
    c_status.add_argument(
        "coordinator", metavar="DIR", help="coordinator directory"
    )

    query = commands.add_parser(
        "query", help="query a longitudinal results store"
    )
    query.add_argument(
        "--store", required=True, metavar="DIR",
        help="results store directory (written by 'repro study --store')",
    )
    query_commands = query.add_subparsers(dest="query_command", required=True)
    q_epochs = query_commands.add_parser(
        "epochs", help="list committed epochs (optionally filtered)"
    )
    q_records = query_commands.add_parser(
        "records", help="dump record rows of one kind from one epoch"
    )
    q_records.add_argument(
        "--kind", required=True,
        help="record kind: installations, confirmations, "
        "characterizations, category_probe, discovery_rounds, or "
        "discovery_candidates",
    )
    q_records.add_argument(
        "--epoch", help="epoch id or unique prefix (default: newest)"
    )
    q_records.add_argument(
        "--min-confidence", type=float, metavar="X",
        help="filter: keep rows whose fused verdict confidence is >= X "
        "(rows from epochs committed without --record-confidence carry "
        "no confidence and always pass)",
    )
    q_tables = query_commands.add_parser(
        "tables", help="render a stored epoch's table views"
    )
    q_tables.add_argument(
        "--name", required=True,
        help="table1, table2, figure1, table3, table4, or probe",
    )
    q_tables.add_argument(
        "--epoch", help="epoch id or unique prefix (default: newest)"
    )
    q_diff = query_commands.add_parser(
        "diff", help="longitudinal diff between two epochs"
    )
    q_diff.add_argument(
        "--old", help="older epoch id/prefix (default: second-newest)"
    )
    q_diff.add_argument(
        "--new", help="newer epoch id/prefix (default: newest)"
    )
    q_diff.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the diff as JSON instead of the text summary",
    )
    for sub in (q_epochs, q_records):
        sub.add_argument("--country", help="filter: ISO country code")
        sub.add_argument("--asn", type=int, help="filter: AS number")
        sub.add_argument("--product", help="filter: product name")
        sub.add_argument("--isp", help="filter: ISP key")
        sub.add_argument("--category", help="filter: category label")

    serve = commands.add_parser(
        "serve", help="serve a results store over read-only HTTP"
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="results store directory to serve",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="listen port (default 8000; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=128, metavar="N",
        help="response-cache entries (default 128; 0 disables caching)",
    )
    serve.add_argument(
        "--monitor", metavar="DIR",
        help="also expose /monitor/* status endpoints over this monitor "
        "state directory",
    )

    monitor = commands.add_parser(
        "monitor", help="always-on monitoring control plane"
    )
    monitor_commands = monitor.add_subparsers(
        dest="monitor_command", required=True
    )
    m_run = monitor_commands.add_parser(
        "run", help="run the supervised monitoring service"
    )
    m_run.add_argument(
        "--dir", required=True, metavar="DIR",
        help="monitor state directory (schedule journal, snapshots, "
        "alert ledger)",
    )
    m_run.add_argument(
        "--store", required=True, metavar="DIR",
        help="results store directory receiving round epochs",
    )
    m_run.add_argument(
        "--rounds", type=int, default=12, metavar="N",
        help="total round budget, counting rounds already journaled — "
        "resuming with the same budget completes the original plan "
        "(default 12)",
    )
    m_run.add_argument(
        "--resume", action="store_true",
        help="continue an existing monitor directory exactly where it "
        "died (refused across identity changes)",
    )
    m_run.add_argument(
        "--target", action="append", metavar="PRODUCT:ISP",
        help="repeatable: a Table 3 (product, isp) pair to monitor "
        "(default: every distinct pair)",
    )
    m_run.add_argument(
        "--fault-plan", metavar="SPEC",
        help="monitor under a seeded chaos plan (failed rounds degrade "
        "to timeline gaps, never to fabricated states)",
    )
    m_run.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="per-round retry budget for transient faults (default 2)",
    )
    m_run.add_argument(
        "--watchdog", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per round attempt (default: none)",
    )
    m_run.add_argument(
        "--round-delay", type=float, default=None, metavar="SECONDS",
        help="wall-clock pause after each round-start journal record "
        "(kill-test and soak seam; results-invisible)",
    )
    m_run.add_argument(
        "--base-interval", type=float, default=30.0, metavar="DAYS",
        help="initial re-probe interval (default 30)",
    )
    m_run.add_argument(
        "--min-interval", type=float, default=7.0, metavar="DAYS",
        help="floor for recently-transitioned pairs (default 7)",
    )
    m_run.add_argument(
        "--max-interval", type=float, default=90.0, metavar="DAYS",
        help="ceiling that stable pairs decay toward (default 90)",
    )
    m_run.add_argument(
        "--retry-interval", type=float, default=2.0, metavar="DAYS",
        help="re-probe delay after a failed (gap) round (default 2)",
    )
    m_run.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="consecutive failed rounds before a target is "
        "dead-lettered (default 3)",
    )
    m_run.add_argument(
        "--hysteresis", type=int, default=2, metavar="K",
        help="rounds a new state must hold before an alert fires "
        "(default 2)",
    )
    m_run.add_argument(
        "--flap-window", type=int, default=6, metavar="N",
        help="observation window for flap detection (default 6)",
    )
    m_run.add_argument(
        "--flap-threshold", type=int, default=3, metavar="N",
        help="state changes within the window that latch a single "
        "FLAPPING alert (default 3)",
    )
    m_run.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot after every N completed rounds (default 1)",
    )
    for name in ("status", "targets"):
        sub = monitor_commands.add_parser(
            name,
            help=(
                "fold a monitor directory's durable records"
                if name == "status"
                else "list the schedule table from durable records"
            ),
        )
        sub.add_argument(
            "--dir", required=True, metavar="DIR",
            help="monitor state directory",
        )
        sub.add_argument(
            "--json", action="store_true", dest="as_json",
            help="emit the full status document as JSON",
        )

    identify = commands.add_parser("identify", help="run §3 identification")
    identify.add_argument(
        "--coverage", type=float, default=1.0,
        help="scanner coverage fraction (default 1.0)",
    )
    identify.add_argument(
        "--products", action="append", metavar="NAME",
        help="repeatable: restrict identification to these registered "
        "products (default: the paper's four vendors)",
    )

    confirm = commands.add_parser("confirm", help="run one §4 case study")
    confirm.add_argument("--product", required=True)
    confirm.add_argument("--isp", required=True)
    confirm.add_argument(
        "--category",
        help="Table 3 category label (default: the first matching row)",
    )

    probe = commands.add_parser(
        "probe", help=f"run the {NETSWEEPER} category probe (§4.4)"
    )
    probe.add_argument("--isp", required=True)

    netalyzr = commands.add_parser(
        "netalyzr", help="transparent-proxy fingerprinting from ISPs"
    )
    netalyzr.add_argument(
        "--isp", action="append", required=True,
        help="repeatable: ISPs to survey",
    )

    discover = commands.add_parser(
        "discover",
        help="search-based blocked-URL discovery from a censored vantage",
    )
    discover.add_argument(
        "--isp", default="etisalat",
        help="censored vantage to crawl from (default etisalat)",
    )
    discover.add_argument(
        "--rounds", type=int, default=20,
        help="crawl-round budget; a zero-new-blocked round stops earlier",
    )
    discover.add_argument(
        "--workers", type=int, default=1,
        help="probe fan-out (results are byte-identical at any count)",
    )
    discover.add_argument(
        "--latency", type=float, default=0.0,
        help="simulated per-probe link latency in seconds",
    )
    discover.add_argument(
        "--seed-url", action="append", metavar="URL", dest="seed_urls",
        help="repeatable: seed URLs (default: the first 5 blocked URLs "
        "from the static global+local lists)",
    )
    discover.add_argument(
        "--population", type=int, default=None,
        help="override the scenario's website population size "
        "(small worlds for smoke runs)",
    )
    discover.add_argument(
        "--store", help="commit the run to this store as a discovery epoch"
    )
    discover.add_argument(
        "--fault-plan", metavar="SPEC",
        help="inject seeded faults (see `repro study --fault-plan`)",
    )
    discover.add_argument(
        "--max-retries", type=int, default=2,
        help="transient-failure retries per probe under a fault plan",
    )
    return parser


def _seed(args) -> int:
    """The effective seed: what the user typed, or the paper default."""
    return DEFAULT_SEED if args.seed is None else args.seed


def _validated_products(args) -> Optional[List[str]]:
    """Check a --products selection against the registry (exit 2 style)."""
    selection = getattr(args, "products", None)
    if not selection:
        return None
    registry = default_registry()
    unknown = [name for name in selection if name not in registry]
    if unknown:
        print(
            f"unknown products {unknown}; registered: "
            f"{', '.join(registry.names())}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return list(selection)


#: Exit codes for ``repro study``: EXIT_OK on a clean, complete run;
#: EXIT_HARD on hard failures (``--fail-fast`` abort, refusing to resume
#: a journal written by a different study); EXIT_USAGE on bad
#: invocations; EXIT_PARTIAL when the study completed but degraded to
#: partial data under an active fault plan.
EXIT_OK = 0
EXIT_HARD = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3


def _cmd_study(args) -> int:
    from pathlib import Path

    from repro.analysis.export import to_json
    from repro.analysis.validation import validate_report
    from repro.exec.checkpoint import CheckpointError
    from repro.exec.journal import JournalError
    from repro.net.errors import NetError

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.latency < 0:
        print("--latency must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.resume and not args.journal:
        print("--resume requires --journal DIR", file=sys.stderr)
        return EXIT_USAGE
    if args.shards is not None and args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
    products = _validated_products(args)
    scenario = build_scenario(seed=_seed(args))
    study = FullStudy(
        scenario,
        products=products,
        workers=args.workers,
        link_latency=args.latency,
        fault_plan=fault_plan,
        max_retries=args.max_retries,
        fail_fast=args.fail_fast,
        scan_shards=args.shards,
        scan_backend=args.scan_backend,
        record_confidence=args.record_confidence,
    )
    partial = None
    try:
        if args.journal:
            journal_dir = Path(args.journal)
            journal_dir.mkdir(parents=True, exist_ok=True)
            outcome = study.run_journaled(
                journal_dir,
                resume=args.resume,
                checkpoint_every=args.checkpoint_every,
            )
        elif study.resilience is not None:
            outcome = study.run_partial()
        else:
            outcome = study.run()
    except JournalError as exc:
        print(f"journal error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except CheckpointError as exc:
        print(f"resume refused: {exc}", file=sys.stderr)
        if study.last_recovery is not None:
            for line in study.last_recovery.describe():
                print(f"recovery: {line}", file=sys.stderr)
        return EXIT_HARD
    except NetError as exc:
        # Only --fail-fast lets a fault propagate out of the study.
        print(f"aborted (fail-fast): {exc!r}", file=sys.stderr)
        return EXIT_HARD
    if isinstance(outcome, PartialStudyResult):
        partial = outcome
        report = partial.report
    else:
        report = outcome
    if study.last_recovery is not None and not study.last_recovery.clean:
        for line in study.last_recovery.describe():
            print(f"recovery: {line}")
    if args.store:
        commit = study.commit_epoch(Path(args.store), outcome)
        verb = "committed" if commit.created else "already committed"
        print(f"epoch {commit.epoch_id[:12]} {verb} to {args.store}")
    document = write_markdown_report(report, seed=_seed(args))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"report written to {args.output}")
    else:
        print(document)
    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            handle.write(to_json(report))
        print(f"raw results written to {args.json_output}")
    if partial is not None:
        for line in partial.summary_lines():
            print(line)
    if args.metrics:
        print(write_execution_summary(study.metrics, study.caches))
    print(validate_report(report).summary())
    if partial is not None and not partial.complete:
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_scan(args) -> int:
    from pathlib import Path

    from repro.exec.executor import Executor, StreamStats
    from repro.scan.stream import StreamingScan
    from repro.store import ResultsStore
    from repro.world.population import ShardedPopulationConfig

    if args.hosts < 0:
        print("--hosts must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.window is not None and args.window < 1:
        print("--window must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.latency < 0:
        print("--latency must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
    products = _validated_products(args)
    try:
        config = ShardedPopulationConfig(
            host_count=args.hosts,
            shard_count=args.shards,
            products=None if products is None else tuple(products),
        )
    except ValueError as exc:
        print(f"bad population: {exc}", file=sys.stderr)
        return EXIT_USAGE
    store = ResultsStore(Path(args.store))
    scan = StreamingScan(
        _seed(args),
        config,
        batch_size=args.batch_size,
        latency=args.latency,
        fault_plan=fault_plan,
    )
    if args.coordinator:
        return _run_coordinated_scan(args, scan, store)
    stats = StreamStats()
    summary = scan.run(
        store,
        Executor(workers=args.workers, backend=args.scan_backend),
        window=args.window,
        stats=stats,
    )
    verb = "committed" if summary.created else "already committed"
    print(f"epoch {summary.epoch_id[:12]} {verb} to {args.store}")
    print(
        f"scanned {summary.scanned} hosts in {summary.batches} batches: "
        f"{summary.hits} installations, {summary.decoys} decoys "
        f"dismissed, {summary.missed} unreachable"
    )
    print(
        f"{summary.hosts_per_second:,.0f} hosts/sec, "
        f"peak {summary.peak_inflight} batches in flight"
    )
    return EXIT_OK


def _run_coordinated_scan(args, scan, store) -> int:
    """The --coordinator arm of ``repro scan``: fleet, wait, reconcile."""
    from pathlib import Path

    from repro.coord import (
        CoordinationError,
        Coordinator,
        IdentityMismatch,
        PartialScanResult,
        spawn_workers,
    )
    from repro.store import StoreError

    if args.local_workers < 0:
        print("--local-workers must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.lease_ttl <= 0:
        print("--lease-ttl must be > 0", file=sys.stderr)
        return EXIT_USAGE
    if args.straggler_after is not None and args.straggler_after <= 0:
        print("--straggler-after must be > 0", file=sys.stderr)
        return EXIT_USAGE
    if args.max_attempts < 1:
        print("--max-attempts must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    try:
        coordinator = Coordinator(
            Path(args.coordinator),
            scan,
            lease_ttl=args.lease_ttl,
            straggler_after=args.straggler_after,
            max_attempts=args.max_attempts,
        )
    except IdentityMismatch as exc:
        print(f"coordinator refused: {exc}", file=sys.stderr)
        return EXIT_HARD
    fleet = spawn_workers(args.coordinator, args.local_workers)
    try:
        try:
            coordinator.wait(timeout=args.wait_timeout)
        except CoordinationError as exc:
            print(f"scan did not finish: {exc}", file=sys.stderr)
            print(
                f"queue kept at {args.coordinator}; start more "
                "scan-workers and re-run this command to resume",
                file=sys.stderr,
            )
            return EXIT_HARD
        try:
            outcome = coordinator.reconcile(store)
        except StoreError as exc:
            # Conflicting duplicates or damaged shard files: a typed
            # reconciliation error, nothing committed.
            print(f"reconciliation failed: {exc}", file=sys.stderr)
            return EXIT_HARD
    finally:
        for process in fleet:
            process.join(timeout=5.0)
        for process in fleet:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
    if isinstance(outcome, PartialScanResult):
        for line in outcome.describe():
            print(line)
        return EXIT_PARTIAL
    verb = "committed" if outcome.created else "already committed"
    print(f"epoch {outcome.epoch_id[:12]} {verb} to {args.store}")
    print(
        f"scanned {outcome.scanned} hosts across {outcome.shards} "
        f"shards by {len(outcome.workers)} worker(s): {outcome.hits} "
        f"installations, {outcome.decoys} decoys dismissed, "
        f"{outcome.missed} unreachable"
    )
    if outcome.duplicates_discarded:
        print(
            f"{outcome.duplicates_discarded} duplicate shard "
            "completion(s) discarded (speculative re-execution)"
        )
    return EXIT_OK


def _cmd_scan_worker(args) -> int:
    from pathlib import Path

    from repro.coord import (
        CoordinationError,
        IdentityMismatch,
        ScanWorker,
    )

    if args.poll <= 0:
        print("--poll must be > 0", file=sys.stderr)
        return EXIT_USAGE
    try:
        worker = ScanWorker(
            Path(args.coordinator),
            worker_id=args.worker_id,
            poll=args.poll,
        )
    except IdentityMismatch as exc:
        print(f"refusing to join: {exc}", file=sys.stderr)
        return EXIT_HARD
    except CoordinationError as exc:
        print(f"cannot join: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.seed is not None and args.seed != worker.queue.seed:
        print(
            f"refusing to join: coordinator at {args.coordinator} was "
            f"created for seed {worker.queue.seed}, not --seed "
            f"{args.seed} — a cross-seed worker would scan a different "
            "world",
            file=sys.stderr,
        )
        return EXIT_HARD
    summary = worker.run()
    print(
        f"{summary.worker}: {summary.shards_won} shard(s) won, "
        f"{summary.shards_duplicate} duplicate, "
        f"{summary.shards_released} released, "
        f"{summary.speculative} speculative lease(s), "
        f"{summary.heartbeats} heartbeat(s)"
    )
    for error in summary.errors:
        print(f"  failed: {error}", file=sys.stderr)
    if worker.queue.snapshot().dead:
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_coord(args) -> int:
    from pathlib import Path

    from repro.coord import CoordinationError, Coordinator

    try:
        coordinator = Coordinator.attach(Path(args.coordinator))
        snapshot = coordinator.status()
    except CoordinationError as exc:
        print(f"coord status failed: {exc}", file=sys.stderr)
        return EXIT_USAGE
    for line in snapshot.describe():
        print(line)
    return EXIT_OK


def _cmd_identify(args) -> int:
    products = _validated_products(args)
    scenario = build_scenario(seed=_seed(args))
    report = FullStudy(
        scenario, products=products, shodan_coverage=args.coverage
    ).run_identification()
    print(render_figure1(report))
    print(
        f"\n{len(report.installations)} installations validated from "
        f"{len(report.candidates)} candidates "
        f"({report.queries_issued} queries)"
    )
    return 0


def _cmd_confirm(args) -> int:
    rows = [
        row
        for row in PAPER_TABLE3
        if row.product == args.product and row.isp_key == args.isp
        and (args.category is None or row.category == args.category)
    ]
    if not rows:
        known = sorted({(r.product, r.isp_key) for r in PAPER_TABLE3})
        print(
            f"no such case study; known (product, isp) pairs: {known}",
            file=sys.stderr,
        )
        return 2
    scenario = build_scenario(seed=_seed(args))
    study = ConfirmationStudy(
        scenario.world,
        scenario.products[args.product],
        scenario.hosting_asns[0],
    )
    result = study.run(config_for_row(rows[0]))
    print(render_table3([result], paper_rows=rows[:1]))
    print(f"\nverdict: {'CONFIRMED' if result.confirmed else 'not confirmed'}")
    for note in result.notes:
        print(f"note: {note}")
    return 0


def _cmd_probe(args) -> int:
    scenario = build_scenario(seed=_seed(args))
    if args.isp not in scenario.world.isps:
        print(f"unknown ISP {args.isp!r}", file=sys.stderr)
        return 2
    probe = run_category_probe(scenario.world, args.isp)
    print(render_category_probe(probe))
    return 0


def _open_store(args):
    """A ResultsStore for --store DIR, or None (usage error, printed)."""
    from pathlib import Path

    from repro.store import ResultsStore

    path = Path(args.store)
    if not path.is_dir():
        print(f"no results store at {path}", file=sys.stderr)
        return None
    store = ResultsStore(path)
    if not store.epoch_ids():
        print(f"results store {path} has no committed epochs", file=sys.stderr)
        return None
    return store


def _cli_record_filter(args):
    from repro.query import RecordFilter

    return RecordFilter(
        country=getattr(args, "country", None),
        asn=getattr(args, "asn", None),
        product=getattr(args, "product", None),
        isp=getattr(args, "isp", None),
        category=getattr(args, "category", None),
        min_confidence=getattr(args, "min_confidence", None),
    )


def _cmd_query(args) -> int:
    import json

    from repro.query import QueryEngine
    from repro.store import StoreError

    store = _open_store(args)
    if store is None:
        return EXIT_USAGE
    engine = QueryEngine(store)
    try:
        if args.query_command == "epochs":
            for manifest in engine.epochs(_cli_record_filter(args)):
                window = (
                    f"{_calendar(manifest.window_start)}"
                    f"..{_calendar(manifest.window_end)}"
                )
                counts = ", ".join(
                    f"{kind}={info.count}"
                    for kind, info in sorted(manifest.segments.items())
                )
                flag = " (partial)" if manifest.partial else ""
                print(
                    f"{manifest.short_id}  seed={manifest.seed}  "
                    f"{window}  {counts}{flag}"
                )
        elif args.query_command == "records":
            rows = engine.select(
                args.kind,
                epoch=args.epoch,
                record_filter=_cli_record_filter(args),
            )
            print(json.dumps(rows, indent=2, sort_keys=True))
        elif args.query_command == "tables":
            print(engine.table(args.name, epoch=args.epoch))
        else:  # diff
            diff = engine.diff(args.old, args.new)
            if args.as_json:
                print(json.dumps(diff.to_document(), indent=2, sort_keys=True))
            else:
                for line in diff.summary_lines():
                    print(line)
    except (StoreError, ValueError) as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return EXIT_OK


def _calendar(minutes: int):
    from repro.world.clock import SimTime

    return SimTime(minutes).calendar()


def _cmd_serve(args) -> int:
    from repro.serve import ResultsServer

    if args.cache_size < 0:
        print("--cache-size must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    store = _open_store(args)
    if store is None:
        return EXIT_USAGE
    server = ResultsServer(
        store,
        host=args.host,
        port=args.port,
        monitor_dir=args.monitor,
        cache_size=args.cache_size,
    )
    print(
        f"serving results store {args.store} on "
        f"http://{server.host}:{server.port} (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nstopped")
    return EXIT_OK


def _monitor_targets_from_args(args):
    """Resolve --target PRODUCT:ISP selections against PAPER_TABLE3."""
    from repro.monitor import MonitorTarget

    pairs: List = []
    if args.target:
        for spec in args.target:
            product, sep, isp = spec.rpartition(":")
            if not sep or not product or not isp:
                print(
                    f"bad --target {spec!r}; expected PRODUCT:ISP",
                    file=sys.stderr,
                )
                return None
            pairs.append((product, isp))
    else:
        seen = set()
        for row in PAPER_TABLE3:
            if (row.product, row.isp_key) not in seen:
                seen.add((row.product, row.isp_key))
                pairs.append((row.product, row.isp_key))
    targets = []
    for product, isp in pairs:
        rows = [
            row
            for row in PAPER_TABLE3
            if row.product == product and row.isp_key == isp
        ]
        if not rows:
            known = sorted({(r.product, r.isp_key) for r in PAPER_TABLE3})
            print(
                f"no such monitoring target ({product!r}, {isp!r}); "
                f"known (product, isp) pairs: {known}",
                file=sys.stderr,
            )
            return None
        targets.append(MonitorTarget(config_for_row(rows[0])))
    return targets


def _cmd_monitor_run(args) -> int:
    from pathlib import Path

    from repro.exec.checkpoint import CheckpointError
    from repro.exec.journal import JournalError
    from repro.exec.resilience import ResilienceConfig
    from repro.monitor import (
        ROUND_DELAY_ENV,
        AlertConfig,
        MonitorConfig,
        MonitorService,
        ScheduleConfig,
        SupervisorConfig,
    )

    if args.rounds < 1:
        print("--rounds must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
    targets = _monitor_targets_from_args(args)
    if targets is None:
        return EXIT_USAGE
    try:
        config = MonitorConfig(
            schedule=ScheduleConfig(
                base_interval_days=args.base_interval,
                min_interval_days=args.min_interval,
                max_interval_days=args.max_interval,
                retry_interval_days=args.retry_interval,
                quarantine_after=args.quarantine_after,
            ),
            supervisor=SupervisorConfig(
                max_retries=args.max_retries,
                resilience=ResilienceConfig(max_retries=args.max_retries),
                watchdog_seconds=args.watchdog,
            ),
            alerts=AlertConfig(
                hysteresis_rounds=args.hysteresis,
                flap_window=args.flap_window,
                flap_threshold=args.flap_threshold,
            ),
            checkpoint_every=args.checkpoint_every,
        )
    except ValueError as exc:
        print(f"bad monitor configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.round_delay is not None:
        if args.round_delay < 0:
            print("--round-delay must be >= 0", file=sys.stderr)
            return EXIT_USAGE
        os.environ[ROUND_DELAY_ENV] = str(args.round_delay)
    seed = _seed(args)
    service = MonitorService(
        Path(args.dir),
        Path(args.store),
        scenario_factory=lambda: build_scenario(seed=seed),
        targets=targets,
        config=config,
        fault_plan=fault_plan,
    )
    try:
        summary = service.run(args.rounds, resume=args.resume)
    except JournalError as exc:
        print(f"journal error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except CheckpointError as exc:
        print(f"resume refused: {exc}", file=sys.stderr)
        if service.last_recovery is not None:
            for line in service.last_recovery.describe():
                print(f"recovery: {line}", file=sys.stderr)
        return EXIT_HARD
    if args.resume and summary.recovery is not None:
        for line in summary.recovery.describe():
            print(f"recovery: {line}")
    for line in summary.describe():
        print(line)
    return EXIT_PARTIAL if summary.degraded else EXIT_OK


def _cmd_monitor_status(args) -> int:
    import json
    from pathlib import Path

    from repro.monitor import describe_status, describe_targets, read_status

    status = read_status(Path(args.dir))
    if status is None:
        print(f"no monitor journal in {args.dir}", file=sys.stderr)
        return EXIT_USAGE
    if args.as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
    elif args.monitor_command == "status":
        for line in describe_status(status):
            print(line)
    else:
        for line in describe_targets(status):
            print(line)
    return EXIT_PARTIAL if status["state"] == "DEGRADED" else EXIT_OK


def _cmd_monitor(args) -> int:
    if args.monitor_command == "run":
        return _cmd_monitor_run(args)
    return _cmd_monitor_status(args)


def _cmd_netalyzr(args) -> int:
    scenario = build_scenario(seed=_seed(args))
    unknown = [name for name in args.isp if name not in scenario.world.isps]
    if unknown:
        print(f"unknown ISPs: {unknown}", file=sys.stderr)
        return 2
    for name, report in survey_isps(scenario.world, args.isp).items():
        attribution = (
            ", ".join(report.attributed_products)
            if report.attributed_products
            else "unattributed"
        )
        state = f"PROXY ({attribution})" if report.proxy_detected else "clean"
        print(f"{name:16s} {state}")
        for finding in report.findings:
            print(f"    [{finding.kind}] {finding.detail}")
    return 0


def _cmd_discover(args) -> int:
    """Search-based discovery: crawl outward from known-blocked URLs.

    Exit taxonomy: 0 for a clean converged run, 3 when the run degraded
    (insufficient probes under a fault plan, or the round budget ran
    out before convergence), 2 on bad invocations.
    """
    from pathlib import Path

    from repro.discover import (
        CoverageReport,
        DiscoveryConfig,
        DiscoveryEngine,
        static_baseline,
    )
    from repro.exec.checkpoint import fingerprint
    from repro.exec.executor import Executor
    from repro.exec.resilience import ResilienceConfig, ResilientRunner
    from repro.net.errors import UrlError
    from repro.store import ResultsStore, discovery_epoch
    from repro.world.scenario import ScenarioConfig

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.latency < 0:
        print("--latency must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.population is not None and args.population < 1:
        print("--population must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    try:
        config = DiscoveryConfig(max_rounds=args.rounds)
    except ValueError as exc:
        print(f"bad --rounds: {exc}", file=sys.stderr)
        return EXIT_USAGE
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return EXIT_USAGE

    scenario_config = None
    if args.population is not None:
        scenario_config = ScenarioConfig(population_size=args.population)
    scenario = build_scenario(seed=_seed(args), config=scenario_config)
    world = scenario.world
    if args.isp not in world.isps:
        print(
            f"unknown ISP {args.isp!r}; known: "
            f"{', '.join(sorted(world.isps))}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    resilience = None
    if fault_plan is not None and fault_plan.active:
        world.install_faults(fault_plan)
        resilience = ResilientRunner(
            ResilienceConfig(
                max_retries=args.max_retries, jitter_seed=fault_plan.seed
            ),
            clock=lambda: world.now,
        )
    executor = Executor(workers=args.workers) if args.workers > 1 else None
    window_start = world.now.minutes

    baseline = static_baseline(
        world,
        args.isp,
        executor=executor,
        link_latency=args.latency,
        resilience=resilience,
    )
    seeds = args.seed_urls or baseline[:5]
    if not seeds:
        print(
            f"the static lists found no blocked URLs at {args.isp}; "
            "pass --seed-url to seed discovery explicitly",
            file=sys.stderr,
        )
        return EXIT_HARD
    engine = DiscoveryEngine(
        world,
        args.isp,
        config=config,
        executor=executor,
        link_latency=args.latency,
        resilience=resilience,
    )
    try:
        result = engine.run(seeds)
    except (UrlError, ValueError) as exc:
        print(f"bad seed URL: {exc}", file=sys.stderr)
        return EXIT_USAGE

    coverage = CoverageReport.evaluate(result, baseline)
    print(f"discovery from {args.isp} ({len(seeds)} seed URLs):")
    for trace in result.rounds:
        print(f"  {trace.line()}")
    state = "converged" if result.converged else "round budget exhausted"
    print(
        f"{state} after {len(result.rounds)} rounds: "
        f"{len(result.blocked_urls)} blocked URLs on "
        f"{len(result.blocked_hosts)} hosts "
        f"({result.insufficient_count} probes insufficient)"
    )
    print(coverage.describe())

    degraded = result.insufficient_count > 0 or not result.converged
    if args.store:
        identity = {
            "kind": "discovery",
            "seed": _seed(args),
            "isp": args.isp,
            "population": args.population,
            "config": config.identity(),
            "seed_urls": list(result.seed_urls),
        }
        epoch = discovery_epoch(
            result,
            identity=identity,
            fingerprint=fingerprint(identity),
            world=world,
            window=(window_start, world.now.minutes),
            coverage=coverage,
            partial=(
                ("discovery_rounds", "discovery_candidates")
                if degraded
                else ()
            ),
        )
        commit = ResultsStore(Path(args.store)).commit(epoch)
        verb = "committed" if commit.created else "already committed"
        print(f"epoch {commit.epoch_id[:12]} {verb} to {args.store}")
    return EXIT_PARTIAL if degraded else EXIT_OK


_COMMANDS = {
    "study": _cmd_study,
    "scan": _cmd_scan,
    "scan-worker": _cmd_scan_worker,
    "coord": _cmd_coord,
    "identify": _cmd_identify,
    "confirm": _cmd_confirm,
    "probe": _cmd_probe,
    "netalyzr": _cmd_netalyzr,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "monitor": _cmd_monitor,
    "discover": _cmd_discover,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # A downstream reader (``repro query ... | head``) closed the
        # pipe early; that is not an error. Point stdout at devnull so
        # the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

Subcommands mirror the methodology's stages::

    python -m repro study              # the full campaign + report
    python -m repro identify           # §3 only
    python -m repro confirm --product "McAfee SmartFilter" --isp bayanat
    python -m repro probe --isp yemennet
    python -m repro netalyzr --isp etisalat --isp du

All commands accept ``--seed``; the default seed reproduces the paper's
published cells exactly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import write_execution_summary, write_markdown_report
from repro.analysis.tables import (
    render_category_probe,
    render_figure1,
    render_table3,
)
from repro.analysis.paper_data import PAPER_TABLE3
from repro.core.confirm import ConfirmationStudy, run_category_probe
from repro.core.pipeline import FullStudy, PartialStudyResult, config_for_row
from repro.measure.netalyzr import survey_isps
from repro.products.registry import NETSWEEPER, default_registry
from repro.world.faults import FaultPlan
from repro.world.scenario import DEFAULT_SEED, build_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMC'13 URL-filter censorship study (reproduction)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"scenario seed (default {DEFAULT_SEED}, paper-calibrated)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the full campaign")
    study.add_argument(
        "--output", help="write the markdown report to this file"
    )
    study.add_argument(
        "--json", dest="json_output",
        help="also export the raw results as JSON to this file",
    )
    study.add_argument(
        "--workers", type=int, default=1,
        help="parallel campaign workers (default 1; results are "
        "byte-identical at any worker count)",
    )
    study.add_argument(
        "--latency", type=float, default=0.0, metavar="SECONDS",
        help="simulated field-link RTT per request (default 0; this is "
        "the cost --workers amortizes)",
    )
    study.add_argument(
        "--metrics", action="store_true",
        help="print the execution summary (timings, fan-out, caches)",
    )
    study.add_argument(
        "--products", action="append", metavar="NAME",
        help="repeatable: restrict the study to these registered "
        "products (default: the paper's four vendors)",
    )
    study.add_argument(
        "--fault-plan", metavar="SPEC",
        help="run under a seeded chaos plan, e.g. "
        "'seed=7,dns_timeout=0.05,reset=0.02,outage=yemennet:300:305'; "
        "the study degrades to a partial result instead of failing",
    )
    study.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per probe for transient faults (default 2)",
    )
    study.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first injected fault instead of degrading",
    )
    study.add_argument(
        "--journal", metavar="DIR",
        help="write a crash-safe journal + snapshots into DIR; a killed "
        "run can be continued with --resume",
    )
    study.add_argument(
        "--resume", action="store_true",
        help="resume a previous --journal run from its newest valid "
        "snapshot (requires --journal)",
    )
    study.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot after every N completed study units (default 1)",
    )

    identify = commands.add_parser("identify", help="run §3 identification")
    identify.add_argument(
        "--coverage", type=float, default=1.0,
        help="scanner coverage fraction (default 1.0)",
    )
    identify.add_argument(
        "--products", action="append", metavar="NAME",
        help="repeatable: restrict identification to these registered "
        "products (default: the paper's four vendors)",
    )

    confirm = commands.add_parser("confirm", help="run one §4 case study")
    confirm.add_argument("--product", required=True)
    confirm.add_argument("--isp", required=True)
    confirm.add_argument(
        "--category",
        help="Table 3 category label (default: the first matching row)",
    )

    probe = commands.add_parser(
        "probe", help=f"run the {NETSWEEPER} category probe (§4.4)"
    )
    probe.add_argument("--isp", required=True)

    netalyzr = commands.add_parser(
        "netalyzr", help="transparent-proxy fingerprinting from ISPs"
    )
    netalyzr.add_argument(
        "--isp", action="append", required=True,
        help="repeatable: ISPs to survey",
    )
    return parser


def _validated_products(args) -> Optional[List[str]]:
    """Check a --products selection against the registry (exit 2 style)."""
    selection = getattr(args, "products", None)
    if not selection:
        return None
    registry = default_registry()
    unknown = [name for name in selection if name not in registry]
    if unknown:
        print(
            f"unknown products {unknown}; registered: "
            f"{', '.join(registry.names())}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return list(selection)


#: Exit codes for ``repro study``: EXIT_OK on a clean, complete run;
#: EXIT_HARD on hard failures (``--fail-fast`` abort, refusing to resume
#: a journal written by a different study); EXIT_USAGE on bad
#: invocations; EXIT_PARTIAL when the study completed but degraded to
#: partial data under an active fault plan.
EXIT_OK = 0
EXIT_HARD = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3


def _cmd_study(args) -> int:
    from pathlib import Path

    from repro.analysis.export import to_json
    from repro.analysis.validation import validate_report
    from repro.exec.checkpoint import CheckpointError
    from repro.exec.journal import JournalError
    from repro.net.errors import NetError

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.latency < 0:
        print("--latency must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.resume and not args.journal:
        print("--resume requires --journal DIR", file=sys.stderr)
        return EXIT_USAGE
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
    products = _validated_products(args)
    scenario = build_scenario(seed=args.seed)
    study = FullStudy(
        scenario,
        products=products,
        workers=args.workers,
        link_latency=args.latency,
        fault_plan=fault_plan,
        max_retries=args.max_retries,
        fail_fast=args.fail_fast,
    )
    partial = None
    try:
        if args.journal:
            journal_dir = Path(args.journal)
            journal_dir.mkdir(parents=True, exist_ok=True)
            outcome = study.run_journaled(
                journal_dir,
                resume=args.resume,
                checkpoint_every=args.checkpoint_every,
            )
        elif study.resilience is not None:
            outcome = study.run_partial()
        else:
            outcome = study.run()
    except JournalError as exc:
        print(f"journal error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except CheckpointError as exc:
        print(f"resume refused: {exc}", file=sys.stderr)
        if study.last_recovery is not None:
            for line in study.last_recovery.describe():
                print(f"recovery: {line}", file=sys.stderr)
        return EXIT_HARD
    except NetError as exc:
        # Only --fail-fast lets a fault propagate out of the study.
        print(f"aborted (fail-fast): {exc!r}", file=sys.stderr)
        return EXIT_HARD
    if isinstance(outcome, PartialStudyResult):
        partial = outcome
        report = partial.report
    else:
        report = outcome
    if study.last_recovery is not None and not study.last_recovery.clean:
        for line in study.last_recovery.describe():
            print(f"recovery: {line}")
    document = write_markdown_report(report, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"report written to {args.output}")
    else:
        print(document)
    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            handle.write(to_json(report))
        print(f"raw results written to {args.json_output}")
    if partial is not None:
        for line in partial.summary_lines():
            print(line)
    if args.metrics:
        print(write_execution_summary(study.metrics, study.caches))
    print(validate_report(report).summary())
    if partial is not None and not partial.complete:
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_identify(args) -> int:
    products = _validated_products(args)
    scenario = build_scenario(seed=args.seed)
    report = FullStudy(
        scenario, products=products, shodan_coverage=args.coverage
    ).run_identification()
    print(render_figure1(report))
    print(
        f"\n{len(report.installations)} installations validated from "
        f"{len(report.candidates)} candidates "
        f"({report.queries_issued} queries)"
    )
    return 0


def _cmd_confirm(args) -> int:
    rows = [
        row
        for row in PAPER_TABLE3
        if row.product == args.product and row.isp_key == args.isp
        and (args.category is None or row.category == args.category)
    ]
    if not rows:
        known = sorted({(r.product, r.isp_key) for r in PAPER_TABLE3})
        print(
            f"no such case study; known (product, isp) pairs: {known}",
            file=sys.stderr,
        )
        return 2
    scenario = build_scenario(seed=args.seed)
    study = ConfirmationStudy(
        scenario.world,
        scenario.products[args.product],
        scenario.hosting_asns[0],
    )
    result = study.run(config_for_row(rows[0]))
    print(render_table3([result], paper_rows=rows[:1]))
    print(f"\nverdict: {'CONFIRMED' if result.confirmed else 'not confirmed'}")
    for note in result.notes:
        print(f"note: {note}")
    return 0


def _cmd_probe(args) -> int:
    scenario = build_scenario(seed=args.seed)
    if args.isp not in scenario.world.isps:
        print(f"unknown ISP {args.isp!r}", file=sys.stderr)
        return 2
    probe = run_category_probe(scenario.world, args.isp)
    print(render_category_probe(probe))
    return 0


def _cmd_netalyzr(args) -> int:
    scenario = build_scenario(seed=args.seed)
    unknown = [name for name in args.isp if name not in scenario.world.isps]
    if unknown:
        print(f"unknown ISPs: {unknown}", file=sys.stderr)
        return 2
    for name, report in survey_isps(scenario.world, args.isp).items():
        attribution = (
            ", ".join(report.attributed_products)
            if report.attributed_products
            else "unattributed"
        )
        state = f"PROXY ({attribution})" if report.proxy_detected else "clean"
        print(f"{name:16s} {state}")
        for finding in report.findings:
            print(f"    [{finding.kind}] {finding.detail}")
    return 0


_COMMANDS = {
    "study": _cmd_study,
    "identify": _cmd_identify,
    "confirm": _cmd_confirm,
    "probe": _cmd_probe,
    "netalyzr": _cmd_netalyzr,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""repro — a reproduction of Dalek et al., "A Method for Identifying and
Confirming the Use of URL Filtering Products for Censorship" (IMC 2013).

The package implements the paper's two-part methodology — identifying
externally visible URL-filter installations by banner scanning +
signature validation (§3), and confirming their use for censorship via
controlled submissions to vendor categorization portals (§4) — together
with every substrate it needs, as a deterministic simulation: a
synthetic Internet (:mod:`repro.world`), four commercial filter product
models (:mod:`repro.products`), deployment middleboxes
(:mod:`repro.middlebox`), a Shodan-like scanner (:mod:`repro.scan`),
geolocation/whois (:mod:`repro.geo`), and the in-country measurement
apparatus (:mod:`repro.measure`).

Quickstart::

    from repro import build_scenario, FullStudy

    scenario = build_scenario()
    report = FullStudy(scenario).run()
    for result in report.confirmations:
        print(result.summary_row())
"""

from repro.core.confirm import (
    ConfirmationConfig,
    ConfirmationResult,
    ConfirmationStudy,
    run_category_probe,
)
from repro.core.characterize import ContentCharacterization
from repro.core.identify import IdentificationPipeline, IdentificationReport
from repro.core.pipeline import (
    FullStudy,
    StudyReport,
    run_distributed_scan,
    run_full_study,
)
from repro.exec import Executor, MemoCache, Metrics, StudyCaches
from repro.monitor import MonitorConfig, MonitorService, MonitorTarget
from repro.query import QueryEngine, RecordFilter
from repro.serve import ResultsServer
from repro.store import ResultsStore
from repro.world.builder import CustomScenario, WorldBuilder
from repro.world.scenario import (
    DEFAULT_SEED,
    Scenario,
    ScenarioConfig,
    build_scenario,
)
from repro.world.world import Vantage, World

__version__ = "1.0.0"

__all__ = [
    "ConfirmationConfig",
    "ConfirmationResult",
    "ConfirmationStudy",
    "ContentCharacterization",
    "CustomScenario",
    "DEFAULT_SEED",
    "Executor",
    "WorldBuilder",
    "FullStudy",
    "IdentificationPipeline",
    "IdentificationReport",
    "MemoCache",
    "Metrics",
    "MonitorConfig",
    "MonitorService",
    "MonitorTarget",
    "QueryEngine",
    "RecordFilter",
    "ResultsServer",
    "ResultsStore",
    "Scenario",
    "ScenarioConfig",
    "StudyCaches",
    "StudyReport",
    "Vantage",
    "World",
    "__version__",
    "build_scenario",
    "run_category_probe",
    "run_distributed_scan",
    "run_full_study",
]

"""Flattening study outputs into storable epoch records.

An epoch's payload is a handful of *record kinds* — ``installations``
(Figure 1 backing data), ``confirmations`` (Table 3), ``characterizations``
(Table 4) and ``category_probe`` (§4.4) — each a list of plain JSON rows.
The rows extend the :mod:`repro.analysis.export` flatteners with the
geography the secondary indexes need (confirmation rows gain the ISP's
country and ASN from the world), so a store lookup by country or ASN
never has to re-derive ISP facts at read time.

Record building happens exactly once, at commit time, against the live
world; everything downstream (query engine, serving API) works from the
stored rows alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.analysis.export import (
    characterization_rows,
    confirmations_rows,
    installations_rows,
)

if TYPE_CHECKING:  # avoid runtime cycles: records are built *from* these
    from repro.core.confirm import CategoryProbeResult, ConfirmationResult
    from repro.core.pipeline import StudyReport
    from repro.world.world import World

#: The record kinds an epoch may carry, in canonical segment order.
RECORD_KINDS = (
    "installations",
    "confirmations",
    "characterizations",
    "category_probe",
    "discovery_rounds",
    "discovery_candidates",
)

#: The secondary-index dimensions and the row field each one reads.
INDEX_DIMENSIONS = ("country", "asn", "product", "isp", "category")


@dataclass(frozen=True)
class EpochData:
    """A pre-commit epoch payload: identity + window + flat records."""

    identity: Dict[str, Any]
    fingerprint: str
    seed: int
    window: Tuple[int, int]  # (start, end) in sim-clock minutes
    records: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    partial: Tuple[str, ...] = ()

    def keys(self) -> Dict[str, List[str]]:
        """Every index key this epoch's rows mention, per dimension.

        Stored in the manifest so a missing or damaged index can be
        rebuilt from manifests alone, without decompressing segments.
        """
        found: Dict[str, set] = {dim: set() for dim in INDEX_DIMENSIONS}
        for rows in self.records.values():
            for row in rows:
                for dim in INDEX_DIMENSIONS:
                    value = row.get(dim)
                    if value is None:
                        continue
                    found[dim].add(str(value))
        return {dim: sorted(values) for dim, values in found.items()}


def _isp_geography(world: "World", isp_name: str) -> Dict[str, Any]:
    isp = world.isps.get(isp_name)
    if isp is None:
        return {"country": None, "asn": None}
    return {"country": isp.country.code, "asn": isp.asn}


def confirmation_record(
    result: "ConfirmationResult",
    world: "World",
    *,
    include_confidence: bool = False,
) -> Dict[str, Any]:
    """One stored confirmation row (Table 3 cell + index geography).

    ``include_confidence`` persists the fused verdict confidence and
    per-classifier signal breakdown. Opt-in: epoch ids are content
    hashes over the row bytes, so the default row shape must not change.
    """
    config = result.config
    row = {
        "product": config.product_name,
        "isp": config.isp_name,
        "category": config.category_label,
        "submitted_at": str(result.submitted_at),
        "submitted_at_minutes": result.submitted_at.minutes,
        "retested_at": str(result.retested_at),
        "domains_total": config.total_domains,
        "domains_submitted": config.submit_count,
        "submitted_outcomes": len(result.submitted_outcomes),
        "blocked_submitted": result.blocked_submitted,
        "blocked_control": result.blocked_control,
        "confirmed": result.confirmed,
        "pre_check_accessible": result.pre_check_accessible,
    }
    if include_confidence:
        row["confidence"] = round(result.confidence, 4)
        row["signals"] = result.signal_summary()
    row.update(_isp_geography(world, config.isp_name))
    return row


def probe_record(
    probe: "CategoryProbeResult", world: "World"
) -> Dict[str, Any]:
    row = {
        "isp": probe.isp_name,
        "probed_at": str(probe.probed_at),
        "tested": probe.tested,
        "blocked": probe.blocked_names,
    }
    row.update(_isp_geography(world, probe.isp_name))
    return row


def build_epoch(
    *,
    identity: Dict[str, Any],
    fingerprint: str,
    seed: int,
    window: Tuple[int, int],
    records: Dict[str, List[Dict[str, Any]]],
    partial: Sequence[str] = (),
) -> EpochData:
    """Assemble an :class:`EpochData`, validating record kinds."""
    unknown = sorted(set(records) - set(RECORD_KINDS))
    if unknown:
        raise ValueError(f"unknown record kinds: {unknown}")
    if window[1] < window[0]:
        raise ValueError("epoch window ends before it starts")
    return EpochData(
        identity=dict(identity),
        fingerprint=fingerprint,
        seed=seed,
        window=(int(window[0]), int(window[1])),
        records={kind: list(rows) for kind, rows in records.items()},
        partial=tuple(partial),
    )


def study_epoch(
    report: "StudyReport",
    *,
    identity: Dict[str, Any],
    fingerprint: str,
    world: "World",
    window: Tuple[int, int],
    partial: Sequence[str] = (),
    record_confidence: bool = False,
) -> EpochData:
    """Flatten one completed (or partial) campaign into an epoch.

    ``record_confidence`` opts the confirmation/characterization rows
    into carrying fused confidences and signal breakdowns; the default
    keeps row bytes (hence epoch ids) identical to pre-fusion commits.
    """
    records: Dict[str, List[Dict[str, Any]]] = {
        "installations": installations_rows(report),
        "confirmations": [
            confirmation_record(
                result, world, include_confidence=record_confidence
            )
            for result in report.confirmations
        ],
        "characterizations": characterization_rows(
            report, include_confidence=record_confidence
        ),
    }
    if report.category_probe is not None:
        records["category_probe"] = [
            probe_record(report.category_probe, world)
        ]
    return build_epoch(
        identity=identity,
        fingerprint=fingerprint,
        seed=report_seed(identity),
        window=window,
        records=records,
        partial=partial,
    )


def confirmation_epoch(
    result: "ConfirmationResult",
    *,
    identity: Dict[str, Any],
    fingerprint: str,
    world: "World",
    window: Tuple[int, int],
) -> EpochData:
    """A single-confirmation epoch (one monitoring round)."""
    return build_epoch(
        identity=identity,
        fingerprint=fingerprint,
        seed=report_seed(identity),
        window=window,
        records={"confirmations": [confirmation_record(result, world)]},
    )


def discovery_round_record(
    trace: Any, result: Any, world: "World"
) -> Dict[str, Any]:
    """One stored discovery round (convergence-trace row + geography)."""
    row = {
        "isp": result.isp_name,
        "round": trace.index,
        "probed": trace.probed,
        "new_blocked": trace.new_blocked,
        "insufficient": trace.insufficient,
        "queries": trace.queries_issued,
        "enqueued": trace.enqueued,
        "converged": result.converged and trace is result.rounds[-1],
    }
    row.update(_isp_geography(world, result.isp_name))
    return row


def discovery_candidate_record(
    candidate: Any, world: "World", isp_name: str
) -> Dict[str, Any]:
    """One probed candidate URL and its fused verdict."""
    row = {
        "isp": isp_name,
        "url": candidate.url,
        "source": candidate.source,
        "round": candidate.round_index,
        "verdict": candidate.verdict,
        "blocked": candidate.blocked,
        "insufficient": candidate.insufficient,
        "product": candidate.vendor,
        "confidence": round(candidate.confidence, 4),
    }
    row.update(_isp_geography(world, isp_name))
    return row


def discovery_epoch(
    result: Any,
    *,
    identity: Dict[str, Any],
    fingerprint: str,
    world: "World",
    window: Tuple[int, int],
    coverage: Optional[Any] = None,
    partial: Sequence[str] = (),
) -> EpochData:
    """Flatten one discovery run into an epoch.

    ``result`` is a :class:`repro.discover.DiscoveryResult`; typed via
    ``Any`` to keep the store layer import-free of the workloads it
    persists. ``coverage`` (a ``CoverageReport``) annotates the summary
    row with the gain over the static lists.
    """
    summary: Dict[str, Any] = {
        "isp": result.isp_name,
        "round": 0,
        "probed": len(result.candidates),
        "new_blocked": len(result.blocked_urls),
        "insufficient": result.insufficient_count,
        "queries": sum(r.queries_issued for r in result.rounds),
        "enqueued": 0,
        "converged": result.converged,
        "seed_urls": list(result.seed_urls),
        "blocked_urls": list(result.blocked_urls),
    }
    if coverage is not None:
        summary["static_blocked"] = coverage.static_blocked
        summary["discovered_blocked"] = coverage.discovered_blocked
        summary["gain_ratio"] = round(coverage.gain_ratio, 4)
    summary.update(_isp_geography(world, result.isp_name))
    records = {
        "discovery_rounds": [summary]
        + [
            discovery_round_record(trace, result, world)
            for trace in result.rounds
        ],
        "discovery_candidates": [
            discovery_candidate_record(candidate, world, result.isp_name)
            for candidate in result.candidates
        ],
    }
    return build_epoch(
        identity=identity,
        fingerprint=fingerprint,
        seed=report_seed(identity),
        window=window,
        records=records,
        partial=partial,
    )


def report_seed(identity: Dict[str, Any]) -> int:
    seed = identity.get("seed")
    if not isinstance(seed, int):
        raise ValueError("epoch identity must carry an integer 'seed'")
    return seed

"""Partial-epoch reconciliation: per-shard result sets → one epoch.

Distributed scan workers each commit a durable *shard segment* — the
rows their leased shard produced, CRC-framed like a journal record —
rather than a full epoch. This module reconciles those per-shard files,
in shard order with duplicate and conflict detection, into the exact
content-addressed epoch a single-machine :class:`StreamingScan.run`
would commit: byte-identical segments, byte-identical manifest, hence
the identical epoch id.

The reconciliation contract is all-or-nothing:

- every shard in ``range(shard_count)`` must have a source, or
  :class:`MissingShard` is raised;
- two workers committing *different* rows for the same shard is
  :class:`DuplicateShard` (the population is a pure function of
  ``(seed, index)``, so divergent duplicates mean a broken worker, not
  a race) — identical duplicates are discarded idempotently;
- a shard file that fails its CRC, digest, or identity checks is
  :class:`ShardSegmentDamage`.

Any of these aborts the epoch stream with nothing published: a damaged
distributed scan degrades to a typed error, never to a committed epoch
that silently misses hosts.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.store.store import StoreError, _canonical, _write_durable

#: Version stamp for the shard-segment file format below.
SHARD_SCHEMA_VERSION = 1


class ReconciliationError(StoreError):
    """A distributed scan's shard set could not form a complete epoch."""

    def __init__(self, shard: Optional[int], message: str) -> None:
        super().__init__(message)
        self.shard = shard


class MissingShard(ReconciliationError):
    """A shard has no committed result set — the scan is incomplete."""


class DuplicateShard(ReconciliationError):
    """Two workers committed *conflicting* rows for the same shard."""


class ShardSegmentDamage(ReconciliationError):
    """A worker's shard file failed CRC/digest/identity verification."""


def rows_digest(rows: Sequence[Dict[str, Any]]) -> str:
    """Content digest of a shard's row list (canonical JSON, SHA-256).

    Workers stamp this into their commit record; reconciliation uses it
    to tell idempotent duplicates (same digest → discard) from
    conflicts (different digest → :class:`DuplicateShard`).
    """
    return hashlib.sha256(_canonical(list(rows)).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardSource:
    """Pointer to one worker's committed shard segment file."""

    shard: int
    path: Path
    rows_sha256: str
    worker: str = ""


@dataclass(frozen=True)
class ShardSegment:
    """A verified, loaded shard segment."""

    shard: int
    worker: str
    fingerprint: str
    scanned: int
    missed: int
    decoys: int
    rows: Tuple[Dict[str, Any], ...]
    rows_sha256: str


def write_shard_segment(
    path: Path,
    *,
    shard: int,
    fingerprint: str,
    worker: str,
    rows: Sequence[Dict[str, Any]],
    scanned: int,
    missed: int,
    decoys: int,
) -> ShardSegment:
    """Durably write one worker's shard result set.

    Same CRC-envelope framing as the journal (``{"crc": N, "rec": ...}``
    over the canonical body) so torn or bit-flipped files are detected
    at reconcile time, and written via temp + fsync + atomic replace so
    a worker SIGKILLed mid-write leaves either nothing or a valid file.
    """
    row_list = [dict(row) for row in rows]
    digest = rows_digest(row_list)
    body = {
        "schema": SHARD_SCHEMA_VERSION,
        "shard": shard,
        "fingerprint": fingerprint,
        "worker": worker,
        "scanned": scanned,
        "missed": missed,
        "decoys": decoys,
        "rows_sha256": digest,
        "rows": row_list,
    }
    canonical = _canonical(body)
    envelope = _canonical(
        {"crc": zlib.crc32(canonical.encode("utf-8")), "rec": body}
    )
    _write_durable(path, envelope.encode("utf-8"))
    return ShardSegment(
        shard=shard,
        worker=worker,
        fingerprint=fingerprint,
        scanned=scanned,
        missed=missed,
        decoys=decoys,
        rows=tuple(row_list),
        rows_sha256=digest,
    )


def load_shard_segment(
    path: Path,
    *,
    expected_shard: Optional[int] = None,
    expected_sha256: Optional[str] = None,
    fingerprint: Optional[str] = None,
) -> ShardSegment:
    """Load and verify one shard segment file.

    Every damage mode — vanished file, malformed JSON, CRC mismatch,
    schema skew, wrong shard, wrong scan identity, row digest mismatch
    — raises :class:`ShardSegmentDamage`; a file that loads is known
    intact end to end.
    """
    shard = expected_shard
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ShardSegmentDamage(
            shard, f"shard segment {path.name} unreadable: {exc}"
        ) from exc
    try:
        envelope = json.loads(raw)
    except ValueError as exc:
        raise ShardSegmentDamage(
            shard, f"shard segment {path.name} is not valid JSON (torn write?)"
        ) from exc
    if (
        not isinstance(envelope, dict)
        or set(envelope) != {"crc", "rec"}
        or not isinstance(envelope.get("rec"), dict)
    ):
        raise ShardSegmentDamage(
            shard, f"shard segment {path.name} has a malformed envelope"
        )
    body = envelope["rec"]
    if zlib.crc32(_canonical(body).encode("utf-8")) != envelope["crc"]:
        raise ShardSegmentDamage(
            shard, f"shard segment {path.name} failed its CRC check"
        )
    if body.get("schema") != SHARD_SCHEMA_VERSION:
        raise ShardSegmentDamage(
            shard,
            f"shard segment {path.name} has schema "
            f"{body.get('schema')!r}, expected {SHARD_SCHEMA_VERSION}",
        )
    if expected_shard is not None and body.get("shard") != expected_shard:
        raise ShardSegmentDamage(
            expected_shard,
            f"shard segment {path.name} claims shard {body.get('shard')!r}, "
            f"expected {expected_shard}",
        )
    if fingerprint is not None and body.get("fingerprint") != fingerprint:
        raise ShardSegmentDamage(
            body.get("shard"),
            f"shard segment {path.name} was produced under a different "
            "scan identity — refusing to merge across identities",
        )
    rows = tuple(body.get("rows") or ())
    digest = rows_digest(rows)
    if digest != body.get("rows_sha256"):
        raise ShardSegmentDamage(
            body.get("shard"),
            f"shard segment {path.name} row digest mismatch",
        )
    if expected_sha256 is not None and digest != expected_sha256:
        raise ShardSegmentDamage(
            body.get("shard"),
            f"shard segment {path.name} does not match its committed "
            "digest — file was replaced after commit",
        )
    return ShardSegment(
        shard=int(body["shard"]),
        worker=str(body.get("worker", "")),
        fingerprint=str(body.get("fingerprint", "")),
        scanned=int(body.get("scanned", 0)),
        missed=int(body.get("missed", 0)),
        decoys=int(body.get("decoys", 0)),
        rows=rows,
        rows_sha256=digest,
    )


@dataclass(frozen=True)
class ReconcileResult:
    """A successful reconciliation: the committed epoch plus totals."""

    epoch_id: str
    created: bool
    shards: int
    duplicates_discarded: int
    scanned: int
    missed: int
    decoys: int
    hits: int


def reconcile_shards(
    store: Any,
    *,
    identity: Dict[str, Any],
    fingerprint: str,
    seed: int,
    shard_count: int,
    sources: Iterable[ShardSource],
    window: Tuple[int, int] = (0, 0),
) -> ReconcileResult:
    """Merge per-shard segment files into one committed epoch.

    Streams rows shard-by-shard in ascending shard order through
    ``store.begin_stream`` — the same writer path, same ``window`` and
    same up-front ``installations`` touch as ``StreamingScan.run`` —
    so the sealed segments and manifest are byte-identical to a
    single-machine scan's, and the epoch id is therefore equal.

    Raises a typed :class:`ReconciliationError` subclass (and aborts
    the stream, publishing nothing) on any missing, conflicting, or
    damaged shard.
    """
    if shard_count < 1:
        raise ReconciliationError(None, "shard_count must be >= 1")
    chosen: Dict[int, ShardSource] = {}
    duplicates = 0
    for source in sources:
        if not 0 <= source.shard < shard_count:
            raise ReconciliationError(
                source.shard,
                f"shard {source.shard} outside range(0, {shard_count})",
            )
        prior = chosen.get(source.shard)
        if prior is None:
            chosen[source.shard] = source
        elif prior.rows_sha256 != source.rows_sha256:
            raise DuplicateShard(
                source.shard,
                f"shard {source.shard} was committed twice with "
                f"conflicting contents (workers {prior.worker!r} and "
                f"{source.worker!r}) — the scan is not trustworthy",
            )
        else:
            # Speculative re-execution produced the identical result;
            # first valid commit wins, the copy is discarded.
            duplicates += 1
    missing = [k for k in range(shard_count) if k not in chosen]
    if missing:
        preview = ", ".join(str(k) for k in missing[:8])
        raise MissingShard(
            missing[0],
            f"{len(missing)} shard(s) have no committed result set "
            f"(first few: {preview}) — refusing to publish an "
            "incomplete epoch",
        )
    stream = store.begin_stream(
        identity=identity,
        fingerprint=fingerprint,
        seed=seed,
        window_start=window[0],
    )
    scanned = 0
    missed = 0
    decoys = 0
    hits = 0
    try:
        # Match StreamingScan.run: a zero-hit scan still commits an
        # (empty) installations segment.
        stream.writer("installations")
        for shard in range(shard_count):
            source = chosen[shard]
            segment = load_shard_segment(
                source.path,
                expected_shard=shard,
                expected_sha256=source.rows_sha256,
                fingerprint=fingerprint,
            )
            scanned += segment.scanned
            missed += segment.missed
            decoys += segment.decoys
            for row in segment.rows:
                stream.write("installations", row)
                hits += 1
    except BaseException:
        stream.abort()
        raise
    commit = stream.finalize(window_end=window[1])
    return ReconcileResult(
        epoch_id=commit.epoch_id,
        created=commit.created,
        shards=shard_count,
        duplicates_discarded=duplicates,
        scanned=scanned,
        missed=missed,
        decoys=decoys,
        hits=hits,
    )

"""Content-addressed, append-only epoch store.

The durable half of the longitudinal story: every completed (or
partial) study run is committed as an immutable *epoch* — the on-disk
analogue of one of the paper's repeated Shodan scans (Figure 1) or
re-confirmations (§4.3 re-confirms SmartFilter in Etisalat in 9/2012
and again in 4/2013). Layout under the store root::

    epochs/<epoch-id>/manifest.json     identity, window, segment digests
    epochs/<epoch-id>/<kind>.seg        zlib-compressed canonical JSON rows
    epochs.jsonl                        append-only commit log (CRC lines)
    indexes/<dimension>.json            secondary indexes, atomically replaced

The epoch id is the SHA-256 of the manifest's canonical core (identity
fingerprint, seed, sim-clock window, per-segment digests, index keys) —
so identical results hash to the same epoch, committing is idempotent,
and two runs of the same study at different ``--workers`` counts land on
byte-identical epochs. Segments carry a CRC32 over their raw canonical
JSON in the spirit of :mod:`repro.exec.journal`, plus a SHA-256; reads
verify both, and any mismatch (torn file, flipped byte) raises
:class:`SegmentDamage` instead of returning silently wrong science.

Durability follows :mod:`repro.exec.checkpoint`'s protocol: epoch
directories are staged under a temp name, each file fsynced, the
directory atomically renamed into place, and the parent fsynced; the
commit log and indexes are written with the same temp+fsync+replace
dance. Secondary indexes (country, ASN, product, ISP, category) are a
pure function of the manifests, so a missing or damaged index file is
rebuilt on load rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.store.records import INDEX_DIMENSIONS, EpochData

#: Bump on any incompatible change to manifests, segments, or indexes.
STORE_SCHEMA_VERSION = 1

EPOCHS_DIRNAME = "epochs"
INDEXES_DIRNAME = "indexes"
COMMIT_LOG_FILENAME = "epochs.jsonl"
MANIFEST_FILENAME = "manifest.json"
SEGMENT_SUFFIX = ".seg"


class StoreError(Exception):
    """The store could not complete an operation."""


class SegmentDamage(StoreError):
    """A stored segment failed verification (torn write, bit flip)."""


class UnknownEpoch(StoreError):
    """No committed epoch matches the requested id."""


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_durable(path: Path, data: bytes) -> None:
    """temp + fsync + atomic replace + parent fsync."""
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    _fsync_file(path.parent)


@dataclass(frozen=True)
class SegmentInfo:
    """Digests and sizes for one stored record segment."""

    file: str
    count: int
    crc32: int
    sha256: str
    raw_bytes: int
    stored_bytes: int

    def to_document(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "count": self.count,
            "crc32": self.crc32,
            "sha256": self.sha256,
            "raw_bytes": self.raw_bytes,
            "stored_bytes": self.stored_bytes,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "SegmentInfo":
        return cls(
            file=document["file"],
            count=document["count"],
            crc32=document["crc32"],
            sha256=document["sha256"],
            raw_bytes=document["raw_bytes"],
            stored_bytes=document["stored_bytes"],
        )


@dataclass(frozen=True)
class EpochManifest:
    """One committed epoch's metadata (never its row payload)."""

    epoch_id: str
    fingerprint: str
    seed: int
    identity: Dict[str, Any]
    window_start: int
    window_end: int
    partial: Tuple[str, ...]
    segments: Dict[str, SegmentInfo]
    keys: Dict[str, Tuple[str, ...]]

    @property
    def short_id(self) -> str:
        return self.epoch_id[:12]

    def core_document(self) -> Dict[str, Any]:
        """The hashed portion of the manifest (excludes the id itself)."""
        return {
            "schema": STORE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "identity": self.identity,
            "window": {"start": self.window_start, "end": self.window_end},
            "partial": list(self.partial),
            "segments": {
                kind: info.to_document()
                for kind, info in sorted(self.segments.items())
            },
            "keys": {dim: list(vals) for dim, vals in sorted(self.keys.items())},
        }

    def to_document(self) -> Dict[str, Any]:
        document = self.core_document()
        document["epoch"] = self.epoch_id
        return document

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "EpochManifest":
        if document.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"manifest schema skew (found v{document.get('schema')}, "
                f"reader v{STORE_SCHEMA_VERSION})"
            )
        return cls(
            epoch_id=document["epoch"],
            fingerprint=document["fingerprint"],
            seed=document["seed"],
            identity=document["identity"],
            window_start=document["window"]["start"],
            window_end=document["window"]["end"],
            partial=tuple(document.get("partial", ())),
            segments={
                kind: SegmentInfo.from_document(info)
                for kind, info in document["segments"].items()
            },
            keys={
                dim: tuple(vals)
                for dim, vals in document.get("keys", {}).items()
            },
        )

    def summary(self) -> Dict[str, Any]:
        """The listing-sized view served by ``GET /epochs``."""
        return {
            "epoch": self.epoch_id,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "window": {
                "start_minutes": self.window_start,
                "end_minutes": self.window_end,
            },
            "partial": list(self.partial),
            "records": {
                kind: info.count for kind, info in sorted(self.segments.items())
            },
            "keys": {dim: list(vals) for dim, vals in sorted(self.keys.items())},
        }


@dataclass(frozen=True)
class CommitResult:
    """What :meth:`ResultsStore.commit` did."""

    epoch_id: str
    created: bool  # False: identical epoch was already committed
    path: Path


def _encode_segment(rows: List[Dict[str, Any]]) -> Tuple[bytes, SegmentInfo]:
    raw = _canonical(rows).encode("utf-8")
    compressed = zlib.compress(raw, 6)
    return compressed, SegmentInfo(
        file="",  # filled in by the caller, which knows the kind
        count=len(rows),
        crc32=zlib.crc32(raw),
        sha256=hashlib.sha256(raw).hexdigest(),
        raw_bytes=len(raw),
        stored_bytes=len(compressed),
    )


class ResultsStore:
    """Append-only longitudinal results store rooted at one directory."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._epochs_dir = self.root / EPOCHS_DIRNAME
        self._indexes_dir = self.root / INDEXES_DIRNAME
        self._log_path = self.root / COMMIT_LOG_FILENAME
        self._epochs_dir.mkdir(parents=True, exist_ok=True)
        self._indexes_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_cache: Dict[str, EpochManifest] = {}
        # (log mtime_ns, log size) -> epoch order, so the read-heavy
        # serving path does not re-parse the commit log per request.
        # Any append or rewrite changes the stat token; only clean
        # (non-dirty) reads are cached.
        self._order_cache: Optional[Tuple[Tuple[int, int], List[str]]] = None

    # ------------------------------------------------------------- commits
    def commit(self, epoch: EpochData) -> CommitResult:
        """Durably commit an epoch; idempotent for identical content."""
        segments: Dict[str, SegmentInfo] = {}
        payloads: Dict[str, bytes] = {}
        for kind, rows in sorted(epoch.records.items()):
            compressed, info = _encode_segment(rows)
            filename = f"{kind}{SEGMENT_SUFFIX}"
            segments[kind] = SegmentInfo(
                file=filename,
                count=info.count,
                crc32=info.crc32,
                sha256=info.sha256,
                raw_bytes=info.raw_bytes,
                stored_bytes=info.stored_bytes,
            )
            payloads[filename] = compressed
        manifest = self._seal_manifest(
            fingerprint=epoch.fingerprint,
            seed=epoch.seed,
            identity=epoch.identity,
            window_start=epoch.window[0],
            window_end=epoch.window[1],
            partial=epoch.partial,
            segments=segments,
            keys={dim: tuple(vals) for dim, vals in epoch.keys().items()},
        )
        epoch_id = manifest.epoch_id
        final = self._epochs_dir / epoch_id
        if final.is_dir():
            # Content-addressed: the identical epoch is already durable.
            return CommitResult(epoch_id=epoch_id, created=False, path=final)
        staging = self._epochs_dir / f".staging-{epoch_id}"
        if staging.exists():
            _remove_tree(staging)
        staging.mkdir(parents=True)
        try:
            for filename, payload in sorted(payloads.items()):
                with open(staging / filename, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._write_manifest(staging, manifest)
            os.replace(staging, final)
            _fsync_file(self._epochs_dir)
        except OSError as exc:
            _remove_tree(staging)
            raise StoreError(f"cannot commit epoch {epoch_id}: {exc}") from exc
        self._register_commit(manifest)
        return CommitResult(epoch_id=epoch_id, created=True, path=final)

    def begin_stream(
        self,
        *,
        identity: Dict[str, Any],
        fingerprint: str,
        seed: int,
        window_start: int,
    ):
        """Open a streaming epoch (rows written incrementally to disk).

        Returns an :class:`repro.store.segments.EpochStream`; identical
        rows finalize to the identical epoch id :meth:`commit` would
        produce, so the two paths are interchangeable per study.
        """
        from repro.store.segments import EpochStream

        return EpochStream(
            self,
            identity=identity,
            fingerprint=fingerprint,
            seed=seed,
            window_start=window_start,
        )

    @staticmethod
    def _seal_manifest(
        *,
        fingerprint: str,
        seed: int,
        identity: Dict[str, Any],
        window_start: int,
        window_end: int,
        partial: Tuple[str, ...],
        segments: Dict[str, SegmentInfo],
        keys: Dict[str, Tuple[str, ...]],
    ) -> EpochManifest:
        """Hash a manifest core into its content-addressed epoch id."""
        unsealed = EpochManifest(
            epoch_id="",
            fingerprint=fingerprint,
            seed=seed,
            identity=identity,
            window_start=window_start,
            window_end=window_end,
            partial=partial,
            segments=segments,
            keys=keys,
        )
        epoch_id = hashlib.sha256(
            _canonical(unsealed.core_document()).encode("utf-8")
        ).hexdigest()
        return EpochManifest(
            epoch_id=epoch_id,
            fingerprint=fingerprint,
            seed=seed,
            identity=identity,
            window_start=window_start,
            window_end=window_end,
            partial=partial,
            segments=segments,
            keys=keys,
        )

    @staticmethod
    def _write_manifest(directory: Path, manifest: EpochManifest) -> None:
        manifest_bytes = (
            json.dumps(manifest.to_document(), indent=2, sort_keys=True)
            + "\n"
        ).encode("utf-8")
        with open(directory / MANIFEST_FILENAME, "wb") as handle:
            handle.write(manifest_bytes)
            handle.flush()
            os.fsync(handle.fileno())

    def _register_commit(self, manifest: EpochManifest) -> None:
        """Post-rename bookkeeping shared by both commit paths."""
        self._manifest_cache[manifest.epoch_id] = manifest
        self._append_commit_log(manifest.epoch_id)
        self._write_indexes()

    # ----------------------------------------------------------- commit log
    def _append_commit_log(self, epoch_id: str) -> None:
        # The epoch directory being logged is already on disk, so it
        # must not count as an orphan here — only *other* unlisted
        # directories signal damage.
        order, dirty = self._read_log_lines()
        extras = self._orphaned_epochs(set(order) | {epoch_id})
        if extras:
            order.extend(extras)
            dirty = True
        if epoch_id not in order:
            order.append(epoch_id)
        if dirty:
            # Damage mid-log: rewrite the whole log from the recovered
            # order rather than appending after garbage.
            self._rewrite_commit_log(order)
            return
        line = self._log_line(len(order) - 1, epoch_id)
        with open(self._log_path, "ab") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _log_line(self, seq: int, epoch_id: str) -> bytes:
        body = _canonical(
            {"seq": seq, "v": STORE_SCHEMA_VERSION, "epoch": epoch_id}
        )
        crc = zlib.crc32(body.encode("utf-8"))
        return f'{{"crc": {crc}, "rec": {body}}}\n'.encode("utf-8")

    def _rewrite_commit_log(self, order: List[str]) -> None:
        data = b"".join(
            self._log_line(seq, epoch_id)
            for seq, epoch_id in enumerate(order)
        )
        _write_durable(self._log_path, data)

    def _read_commit_log(self) -> Tuple[List[str], bool]:
        """(epoch ids in commit order, log-was-damaged flag).

        Damage semantics mirror :mod:`repro.exec.journal`: the longest
        valid prefix is kept; committed epoch directories missing from
        that prefix are appended in sorted-name order so an epoch can
        never become unreachable through log damage alone.
        """
        token = self._log_stat_token()
        if token is not None and self._order_cache is not None:
            if self._order_cache[0] == token:
                return list(self._order_cache[1]), False
        order, dirty = self._read_log_lines()
        extras = self._orphaned_epochs(set(order))
        if extras:
            dirty = True
            order.extend(extras)
        if not dirty and token is not None:
            self._order_cache = (token, list(order))
        return order, dirty

    def _log_stat_token(self) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(self._log_path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _read_log_lines(self) -> Tuple[List[str], bool]:
        """The log's longest valid prefix, without orphan recovery."""
        order: List[str] = []
        dirty = False
        if self._log_path.exists():
            raw = self._log_path.read_bytes()
            lines = raw.split(b"\n")
            if lines and lines[-1] != b"":
                dirty = True  # torn tail
                lines = lines[:-1]
            for line in lines:
                if line == b"":
                    continue
                record = self._validate_log_line(line, len(order))
                if record is None:
                    dirty = True
                    break
                order.append(record)
        return order, dirty

    def _orphaned_epochs(self, known: set) -> List[str]:
        """Committed epoch directories absent from ``known``, by name."""
        return sorted(
            path.name
            for path in self._epochs_dir.iterdir()
            if path.is_dir()
            and not path.name.startswith(".")
            and path.name not in known
            and (path / MANIFEST_FILENAME).exists()
        )

    @staticmethod
    def _validate_log_line(line: bytes, expected_seq: int) -> Optional[str]:
        try:
            outer = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(outer, dict) or "crc" not in outer or "rec" not in outer:
            return None
        rec = outer["rec"]
        if not isinstance(rec, dict):
            return None
        if zlib.crc32(_canonical(rec).encode("utf-8")) != outer["crc"]:
            return None
        if rec.get("v") != STORE_SCHEMA_VERSION:
            return None
        if rec.get("seq") != expected_seq:
            return None
        epoch = rec.get("epoch")
        return epoch if isinstance(epoch, str) else None

    # -------------------------------------------------------------- reading
    def epoch_ids(self) -> List[str]:
        """Committed epoch ids, oldest first."""
        order, _dirty = self._read_commit_log()
        return order

    def __len__(self) -> int:
        return len(self.epoch_ids())

    def resolve(self, ref: str) -> str:
        """Resolve a full id or unique prefix to a committed epoch id."""
        ids = self.epoch_ids()
        if ref in ids:
            return ref
        matches = [epoch_id for epoch_id in ids if epoch_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise UnknownEpoch(f"no epoch matches {ref!r}")
        raise StoreError(
            f"ambiguous epoch prefix {ref!r} ({len(matches)} matches)"
        )

    def manifest(self, epoch_id: str) -> EpochManifest:
        cached = self._manifest_cache.get(epoch_id)
        if cached is not None:
            return cached
        path = self._epochs_dir / epoch_id / MANIFEST_FILENAME
        if not path.exists():
            raise UnknownEpoch(f"no epoch {epoch_id!r} in {self.root}")
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable manifest for {epoch_id}: {exc}") from exc
        manifest = EpochManifest.from_document(document)
        if manifest.epoch_id != epoch_id:
            raise StoreError(
                f"manifest id mismatch under {epoch_id} "
                f"(claims {manifest.epoch_id})"
            )
        self._manifest_cache[epoch_id] = manifest
        return manifest

    def manifests(self) -> List[EpochManifest]:
        return [self.manifest(epoch_id) for epoch_id in self.epoch_ids()]

    def records(self, epoch_id: str, kind: str) -> List[Dict[str, Any]]:
        """Read and verify one segment's rows (empty if kind absent)."""
        manifest = self.manifest(self.resolve(epoch_id))
        info = manifest.segments.get(kind)
        if info is None:
            return []
        path = self._epochs_dir / manifest.epoch_id / info.file
        try:
            compressed = path.read_bytes()
        except OSError as exc:
            raise SegmentDamage(
                f"segment {kind} of {manifest.short_id} unreadable: {exc}"
            ) from exc
        try:
            raw = zlib.decompress(compressed)
        except zlib.error as exc:
            raise SegmentDamage(
                f"segment {kind} of {manifest.short_id} torn or truncated "
                f"({exc})"
            ) from exc
        if zlib.crc32(raw) != info.crc32:
            raise SegmentDamage(
                f"segment {kind} of {manifest.short_id} failed CRC32"
            )
        if hashlib.sha256(raw).hexdigest() != info.sha256:
            raise SegmentDamage(
                f"segment {kind} of {manifest.short_id} failed SHA-256"
            )
        rows = json.loads(raw.decode("utf-8"))
        if len(rows) != info.count:
            raise SegmentDamage(
                f"segment {kind} of {manifest.short_id} row count mismatch"
            )
        return rows

    def verify(self, epoch_id: str) -> List[str]:
        """Full verification of one epoch; returns problem descriptions."""
        problems: List[str] = []
        try:
            manifest = self.manifest(self.resolve(epoch_id))
        except StoreError as exc:
            return [str(exc)]
        recomputed = hashlib.sha256(
            _canonical(manifest.core_document()).encode("utf-8")
        ).hexdigest()
        if recomputed != manifest.epoch_id:
            problems.append("manifest core does not hash to the epoch id")
        for kind in manifest.segments:
            try:
                self.records(manifest.epoch_id, kind)
            except SegmentDamage as exc:
                problems.append(str(exc))
        return problems

    # -------------------------------------------------------------- indexes
    def index(self, dimension: str) -> Dict[str, List[str]]:
        """key → epoch ids (commit order) for one index dimension.

        Reads the on-disk index when it is present and consistent with
        the committed epoch set; otherwise rebuilds from manifests and
        rewrites the file.
        """
        if dimension not in INDEX_DIMENSIONS:
            raise StoreError(
                f"unknown index dimension {dimension!r}; "
                f"one of {INDEX_DIMENSIONS}"
            )
        epoch_ids = self.epoch_ids()
        path = self._indexes_dir / f"{dimension}.json"
        if path.exists():
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                document = None
            if (
                isinstance(document, dict)
                and document.get("schema") == STORE_SCHEMA_VERSION
                and document.get("epochs") == epoch_ids
                and isinstance(document.get("keys"), dict)
            ):
                return document["keys"]
        self._write_indexes()
        return self._build_index(dimension, epoch_ids)

    def lookup(self, dimension: str, key: str) -> List[str]:
        """Epoch ids whose records mention ``key``, commit order."""
        return self.index(dimension).get(str(key), [])

    def _build_index(
        self, dimension: str, epoch_ids: List[str]
    ) -> Dict[str, List[str]]:
        keys: Dict[str, List[str]] = {}
        for epoch_id in epoch_ids:
            manifest = self.manifest(epoch_id)
            for value in manifest.keys.get(dimension, ()):
                keys.setdefault(value, []).append(epoch_id)
        return {key: ids for key, ids in sorted(keys.items())}

    def _write_indexes(self) -> None:
        epoch_ids = self.epoch_ids()
        for dimension in INDEX_DIMENSIONS:
            document = {
                "schema": STORE_SCHEMA_VERSION,
                "epochs": epoch_ids,
                "keys": self._build_index(dimension, epoch_ids),
            }
            data = (
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
            _write_durable(self._indexes_dir / f"{dimension}.json", data)

    def rebuild_indexes(self) -> None:
        """Force a rebuild of every index file from manifests."""
        self._write_indexes()

    # ------------------------------------------------------------- identity
    def content_state(self) -> str:
        """A digest over the committed epoch set, for serving ETags.

        Epoch ids are content hashes, so hashing the ordered id list is
        a strong digest of everything the store serves.
        """
        return hashlib.sha256(
            "\n".join(self.epoch_ids()).encode("utf-8")
        ).hexdigest()


def _remove_tree(path: Path) -> None:
    for child in sorted(path.rglob("*"), reverse=True):
        if child.is_dir():
            child.rmdir()
        else:
            child.unlink()
    if path.exists():
        path.rmdir()

"""repro.store — durable, content-addressed longitudinal results.

The paper's findings are longitudinal (repeated Shodan scans behind
Figure 1, re-confirmations across §4.3); this package is where repeated
study runs accumulate. See :mod:`repro.store.store` for the on-disk
format and :mod:`repro.store.records` for the row flatteners.
"""

from repro.store.records import (
    EpochData,
    INDEX_DIMENSIONS,
    RECORD_KINDS,
    build_epoch,
    confirmation_epoch,
    confirmation_record,
    discovery_epoch,
    study_epoch,
)
from repro.store.segments import EpochStream, SegmentWriter
from repro.store.store import (
    CommitResult,
    EpochManifest,
    ResultsStore,
    STORE_SCHEMA_VERSION,
    SegmentDamage,
    SegmentInfo,
    StoreError,
    UnknownEpoch,
)

__all__ = [
    "CommitResult",
    "EpochData",
    "EpochManifest",
    "EpochStream",
    "INDEX_DIMENSIONS",
    "RECORD_KINDS",
    "ResultsStore",
    "SegmentWriter",
    "STORE_SCHEMA_VERSION",
    "SegmentDamage",
    "SegmentInfo",
    "StoreError",
    "UnknownEpoch",
    "build_epoch",
    "confirmation_epoch",
    "confirmation_record",
    "discovery_epoch",
    "study_epoch",
]

"""Streaming epoch construction: segments written row-by-row.

:meth:`repro.store.store.ResultsStore.commit` takes a fully
materialized :class:`~repro.store.records.EpochData` — fine for the
paper-scale study, hopeless for a million-host scan whose rows must
never all live in memory at once. This module provides the streaming
half of the store: an :class:`EpochStream` opens a staging directory,
:class:`SegmentWriter` feeds each row's canonical JSON straight through
an incremental ``zlib`` compressor to disk (tracking CRC32, SHA-256,
counts and index keys as it goes), and ``finalize()`` seals the
manifest and publishes through the exact same commit path.

The contract that makes this safe to adopt anywhere: a streamed epoch
is **byte-identical** to the in-memory commit of the same rows. Raw
segment bytes are built as ``"[" + ",".join(canonical(row)) + "]"`` —
precisely ``canonical(rows)`` — and a single-``flush()`` compressobj
emits the same stream as one-shot ``zlib.compress(raw, 6)``. Same rows
⇒ same segment digests ⇒ same manifest core ⇒ same epoch id, so
content-addressed idempotence keeps working across the two code paths.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.store.records import INDEX_DIMENSIONS, RECORD_KINDS
from repro.store.store import (
    CommitResult,
    EpochManifest,
    MANIFEST_FILENAME,
    SEGMENT_SUFFIX,
    SegmentInfo,
    StoreError,
    _canonical,
    _fsync_file,
    _remove_tree,
)

if TYPE_CHECKING:
    from repro.store.store import ResultsStore

#: Compression level must match ``store._encode_segment`` or streamed
#: and in-memory commits of identical rows would stop being
#: byte-identical (and content addressing would fork).
COMPRESSION_LEVEL = 6


class SegmentWriter:
    """Incrementally writes one record segment to a staging file.

    Rows are appended with :meth:`write`; digests, byte counts and the
    index keys the manifest needs are accumulated on the fly, so
    closing the writer yields a :class:`SegmentInfo` without ever
    holding more than one row in memory.
    """

    def __init__(self, path: Path, kind: str) -> None:
        self.kind = kind
        self.path = path
        self.count = 0
        self.raw_bytes = 0
        self.stored_bytes = 0
        self.keys: Dict[str, Set[str]] = {
            dim: set() for dim in INDEX_DIMENSIONS
        }
        self._crc = 0
        self._sha = hashlib.sha256()
        self._compressor = zlib.compressobj(COMPRESSION_LEVEL)
        self._handle = open(path, "wb")
        self._closed = False
        self._feed(b"[")

    def _feed(self, data: bytes) -> None:
        self._crc = zlib.crc32(data, self._crc)
        self._sha.update(data)
        self.raw_bytes += len(data)
        out = self._compressor.compress(data)
        if out:
            self._handle.write(out)
            self.stored_bytes += len(out)

    def write(self, row: Dict[str, Any]) -> None:
        """Append one row (canonical JSON, comma-separated)."""
        if self._closed:
            raise StoreError(f"segment {self.kind} already sealed")
        chunk = _canonical(row).encode("utf-8")
        self._feed(b"," + chunk if self.count else chunk)
        self.count += 1
        for dim in INDEX_DIMENSIONS:
            value = row.get(dim)
            if value is not None:
                self.keys[dim].add(str(value))

    def close(self) -> SegmentInfo:
        """Seal the segment: flush compression, fsync, return digests."""
        if self._closed:
            raise StoreError(f"segment {self.kind} already sealed")
        self._closed = True
        self._feed(b"]")
        tail = self._compressor.flush()
        if tail:
            self._handle.write(tail)
            self.stored_bytes += len(tail)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        return SegmentInfo(
            file=self.path.name,
            count=self.count,
            crc32=self._crc,
            sha256=self._sha.hexdigest(),
            raw_bytes=self.raw_bytes,
            stored_bytes=self.stored_bytes,
        )

    def discard(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()


class EpochStream:
    """A streaming, durably-staged epoch under construction.

    Obtain one from :meth:`ResultsStore.begin_stream`, write rows with
    :meth:`write`, then :meth:`finalize` — which computes the
    content-addressed epoch id from the accumulated digests and
    publishes atomically (staging rename + commit log + indexes), or
    :meth:`abort` to drop the staging directory without a trace.
    """

    def __init__(
        self,
        store: "ResultsStore",
        *,
        identity: Dict[str, Any],
        fingerprint: str,
        seed: int,
        window_start: int,
    ) -> None:
        self._store = store
        self._identity = dict(identity)
        self._fingerprint = fingerprint
        self._seed = seed
        self._window_start = int(window_start)
        self._writers: Dict[str, SegmentWriter] = {}
        self._done = False
        # Staging name only needs to be unique among live writers on
        # this store; the content-addressed name arrives at finalize.
        nonce = f"{os.getpid()}-{id(self):x}"
        self._staging = store._epochs_dir / f".stream-{nonce}"
        if self._staging.exists():
            _remove_tree(self._staging)
        self._staging.mkdir(parents=True)

    # ------------------------------------------------------------- writing
    def writer(self, kind: str) -> SegmentWriter:
        """The (lazily created) writer for one record kind."""
        if self._done:
            raise StoreError("epoch stream already finalized or aborted")
        if kind not in RECORD_KINDS:
            raise StoreError(
                f"unknown record kind {kind!r}; one of {RECORD_KINDS}"
            )
        existing = self._writers.get(kind)
        if existing is not None:
            return existing
        writer = SegmentWriter(
            self._staging / f"{kind}{SEGMENT_SUFFIX}", kind
        )
        self._writers[kind] = writer
        return writer

    def write(self, kind: str, row: Dict[str, Any]) -> None:
        self.writer(kind).write(row)

    @property
    def rows_written(self) -> int:
        return sum(writer.count for writer in self._writers.values())

    # ----------------------------------------------------------- lifecycle
    def finalize(
        self,
        *,
        window_end: int,
        partial: Tuple[str, ...] = (),
    ) -> CommitResult:
        """Seal all segments, hash the manifest, publish the epoch."""
        if self._done:
            raise StoreError("epoch stream already finalized or aborted")
        self._done = True
        if int(window_end) < self._window_start:
            self.abort(_force=True)
            raise StoreError("epoch window ends before it starts")
        segments: Dict[str, SegmentInfo] = {}
        keys: Dict[str, Set[str]] = {dim: set() for dim in INDEX_DIMENSIONS}
        try:
            for kind, writer in sorted(self._writers.items()):
                segments[kind] = writer.close()
                for dim, values in writer.keys.items():
                    keys[dim].update(values)
            manifest = self._store._seal_manifest(
                fingerprint=self._fingerprint,
                seed=self._seed,
                identity=self._identity,
                window_start=self._window_start,
                window_end=int(window_end),
                partial=tuple(partial),
                segments=segments,
                keys={dim: tuple(sorted(vals)) for dim, vals in keys.items()},
            )
            final = self._store._epochs_dir / manifest.epoch_id
            if final.is_dir():
                # Identical epoch already durable (content addressing);
                # the staged copy is redundant.
                _remove_tree(self._staging)
                return CommitResult(
                    epoch_id=manifest.epoch_id, created=False, path=final
                )
            self._store._write_manifest(self._staging, manifest)
            os.replace(self._staging, final)
            _fsync_file(self._store._epochs_dir)
        except StoreError:
            raise
        except OSError as exc:
            _remove_tree(self._staging)
            raise StoreError(f"cannot finalize streamed epoch: {exc}") from exc
        self._store._register_commit(manifest)
        return CommitResult(
            epoch_id=manifest.epoch_id, created=True, path=final
        )

    def abort(self, _force: bool = False) -> None:
        """Drop the staging directory; nothing is published."""
        if self._done and not _force:
            return
        self._done = True
        for writer in self._writers.values():
            writer.discard()
        if self._staging.exists():
            _remove_tree(self._staging)

    def __enter__(self) -> "EpochStream":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> Optional[bool]:
        if exc_type is not None:
            self.abort()
        return None

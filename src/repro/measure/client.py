"""The measurement client (§4.1).

"Tests of Web page accessibility are performed using a measurement
client that accesses a specified list of URLs in the 'field' ... This
client software also triggers the same set of URLs to be accessed from a
server in our lab at the University of Toronto ... The results of the
Web page accesses in the field and lab are compared."
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exec.executor import Executor, Sequencer
from repro.exec.resilience import ResilientRunner
from repro.measure.classifiers.blockpage import BlockPagePatternMatcher
from repro.measure.classifiers.fusion import VerdictEngine
from repro.measure.verdict import Comparison, Verdict
from repro.net.fetch import FetchOutcome, FetchResult
from repro.net.url import Url
from repro.world.clock import SimTime
from repro.world.world import Vantage


@dataclass
class UrlTest:
    """One URL measured from field and lab simultaneously."""

    url: Url
    field_result: FetchResult
    lab_result: FetchResult
    comparison: Comparison
    measured_at: SimTime

    @property
    def blocked(self) -> bool:
        return self.comparison.blocked

    @property
    def accessible(self) -> bool:
        return self.comparison.verdict is Verdict.ACCESSIBLE

    @property
    def insufficient(self) -> bool:
        """True when the probe itself failed: no accessibility claim."""
        return self.comparison.verdict is Verdict.INSUFFICIENT

    @property
    def vendor(self) -> Optional[str]:
        return self.comparison.vendor

    @property
    def confidence(self) -> float:
        """The fused confidence behind this verdict (0.0 = unmeasured)."""
        return self.comparison.confidence


@dataclass
class MeasurementRun:
    """The results of testing one URL list from one vantage."""

    vantage_label: str
    tests: List[UrlTest] = field(default_factory=list)

    def blocked_tests(self) -> List[UrlTest]:
        return [t for t in self.tests if t.blocked]

    def accessible_tests(self) -> List[UrlTest]:
        return [t for t in self.tests if t.accessible]

    def blocked_count(self) -> int:
        return len(self.blocked_tests())

    def vendors_seen(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for test in self.blocked_tests():
            vendor = test.vendor
            if vendor:
                counts[vendor] = counts.get(vendor, 0) + 1
        return counts

    def result_for(self, url: Url) -> Optional[UrlTest]:
        for test in self.tests:
            if test.url == url:
                return test
        return None

    def __len__(self) -> int:
        return len(self.tests)


class MeasurementClient:
    """Dual field/lab fetcher producing per-URL verdicts.

    ``link_latency`` models the real network round trip a field fetch
    costs (the dominant wall-clock term of an in-country campaign); the
    simulated fetch itself is effectively instant. ``executor`` enables
    per-URL fan-out: the latency waits overlap across workers while a
    :class:`~repro.exec.executor.Sequencer` commits the field fetches —
    the only steps that can touch stateful middleboxes — in strict
    submission order, so results are byte-identical to a sequential run.
    """

    def __init__(
        self,
        field_vantage: Vantage,
        lab_vantage: Vantage,
        detector: Optional[BlockPagePatternMatcher] = None,
        *,
        engine: Optional[VerdictEngine] = None,
        executor: Optional[Executor] = None,
        link_latency: float = 0.0,
        resilience: Optional[ResilientRunner] = None,
        stage: str = "measure",
        endpoint: Optional[str] = None,
    ) -> None:
        if field_vantage.is_lab:
            raise ValueError("field vantage must sit inside a measured ISP")
        if not lab_vantage.is_lab:
            raise ValueError("lab vantage must be the unfiltered lab network")
        if link_latency < 0:
            raise ValueError("link_latency must be >= 0")
        self._field = field_vantage
        self._lab = lab_vantage
        # A full VerdictEngine wins over a bare matcher; passing both is
        # an error only in spirit — the matcher is simply ignored.
        self._engine = engine or VerdictEngine(matcher=detector)
        self._executor = executor
        self._link_latency = link_latency
        self._resilience = resilience
        self._stage = stage
        self._endpoint = endpoint

    @property
    def field_vantage(self) -> Vantage:
        return self._field

    def _wait_for_link(self) -> None:
        """Pay the field round-trip cost (a real wall-clock wait)."""
        if self._link_latency:
            time.sleep(self._link_latency)

    def _measure(self, url: Url) -> UrlTest:
        """One field+lab exchange and its comparison (no resilience)."""
        field_result = self._field.fetch(url)
        lab_result = self._lab.fetch(url)
        comparison = self._engine.compare(field_result, lab_result)
        return UrlTest(
            url,
            field_result,
            lab_result,
            comparison,
            self._field.world.now,
        )

    def _quarantined_test(self, url: Url, note: str) -> UrlTest:
        """The explicit "we could not measure this" record.

        Carries :data:`FetchOutcome.INFRA_FAILURE` results and an
        :data:`Verdict.INSUFFICIENT` comparison so downstream tallies can
        count the gap without ever mistaking it for blocking (or for
        accessibility).
        """
        placeholder = FetchResult.failure(url, FetchOutcome.INFRA_FAILURE, note)
        return UrlTest(
            url,
            placeholder,
            placeholder,
            Comparison(Verdict.INSUFFICIENT, note=note, confidence=0.0),
            self._field.world.now,
        )

    def _resilient_measure(self, url: Url) -> UrlTest:
        """Measure under the resilience policy; never raises for faults."""
        assert self._resilience is not None
        outcome = self._resilience.call(
            lambda: self._measure(url),
            stage=self._stage,
            key=str(url),
            endpoint=self._endpoint,
        )
        if outcome.ok:
            return outcome.value
        record = outcome.quarantine
        note = str(record) if record is not None else "measurement failed"
        return self._quarantined_test(url, note)

    def test_url(self, url: Url) -> UrlTest:
        """Fetch one URL from both vantages and compare."""
        self._wait_for_link()
        if self._resilience is not None:
            return self._resilient_measure(url)
        return self._measure(url)

    def run_list(self, urls: Iterable[Url]) -> MeasurementRun:
        """Test a URL list; §4.1 keeps these short for manual analysis."""
        targets = list(urls)
        run = MeasurementRun(self._field.location)
        executor = self._executor
        if executor is None or executor.workers == 1 or len(targets) <= 1:
            for url in targets:
                run.tests.append(self.test_url(url))
            return run

        # Parallel path: overlap the network waits, serialize the
        # world-mutating field fetches in submission order. The lab
        # fetch and the comparison are effect-free and run unordered.
        # Under a resilience policy the *whole* retry loop commits
        # inside the turn: retries and breaker transitions must observe
        # submission order or fault decisions would depend on timing.
        sequencer = Sequencer()

        def task(job: Tuple[int, Url]) -> UrlTest:
            index, url = job
            self._wait_for_link()
            if self._resilience is not None:
                with sequencer.turn(index):
                    return self._resilient_measure(url)
            with sequencer.turn(index):
                field_result = self._field.fetch(url)
            lab_result = self._lab.fetch(url)
            comparison = self._engine.compare(field_result, lab_result)
            return UrlTest(
                url,
                field_result,
                lab_result,
                comparison,
                self._field.world.now,
            )

        run.tests = executor.map(
            task, list(enumerate(targets)), label="measure"
        )
        return run

"""The measurement client (§4.1).

"Tests of Web page accessibility are performed using a measurement
client that accesses a specified list of URLs in the 'field' ... This
client software also triggers the same set of URLs to be accessed from a
server in our lab at the University of Toronto ... The results of the
Web page accesses in the field and lab are compared."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.measure.blockpage_detect import BlockPageDetector
from repro.measure.compare import Comparison, Verdict, compare
from repro.net.fetch import FetchResult
from repro.net.url import Url
from repro.world.clock import SimTime
from repro.world.world import Vantage


@dataclass
class UrlTest:
    """One URL measured from field and lab simultaneously."""

    url: Url
    field_result: FetchResult
    lab_result: FetchResult
    comparison: Comparison
    measured_at: SimTime

    @property
    def blocked(self) -> bool:
        return self.comparison.blocked

    @property
    def accessible(self) -> bool:
        return self.comparison.verdict is Verdict.ACCESSIBLE

    @property
    def vendor(self) -> Optional[str]:
        return self.comparison.vendor


@dataclass
class MeasurementRun:
    """The results of testing one URL list from one vantage."""

    vantage_label: str
    tests: List[UrlTest] = field(default_factory=list)

    def blocked_tests(self) -> List[UrlTest]:
        return [t for t in self.tests if t.blocked]

    def accessible_tests(self) -> List[UrlTest]:
        return [t for t in self.tests if t.accessible]

    def blocked_count(self) -> int:
        return len(self.blocked_tests())

    def vendors_seen(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for test in self.blocked_tests():
            vendor = test.vendor
            if vendor:
                counts[vendor] = counts.get(vendor, 0) + 1
        return counts

    def result_for(self, url: Url) -> Optional[UrlTest]:
        for test in self.tests:
            if test.url == url:
                return test
        return None

    def __len__(self) -> int:
        return len(self.tests)


class MeasurementClient:
    """Dual field/lab fetcher producing per-URL verdicts."""

    def __init__(
        self,
        field_vantage: Vantage,
        lab_vantage: Vantage,
        detector: Optional[BlockPageDetector] = None,
    ) -> None:
        if field_vantage.is_lab:
            raise ValueError("field vantage must sit inside a measured ISP")
        if not lab_vantage.is_lab:
            raise ValueError("lab vantage must be the unfiltered lab network")
        self._field = field_vantage
        self._lab = lab_vantage
        self._detector = detector or BlockPageDetector()

    @property
    def field_vantage(self) -> Vantage:
        return self._field

    def test_url(self, url: Url) -> UrlTest:
        """Fetch one URL from both vantages and compare."""
        field_result = self._field.fetch(url)
        lab_result = self._lab.fetch(url)
        comparison = compare(field_result, lab_result, self._detector)
        return UrlTest(
            url,
            field_result,
            lab_result,
            comparison,
            self._field.world.now,
        )

    def run_list(self, urls: Iterable[Url]) -> MeasurementRun:
        """Test a URL list; §4.1 keeps these short for manual analysis."""
        run = MeasurementRun(self._field.location)
        for url in urls:
            run.tests.append(self.test_url(url))
        return run

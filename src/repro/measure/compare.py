"""Deprecated shim over the evidence-based verdict path.

The §4.1 field-vs-lab comparator now lives in
:mod:`repro.measure.classifiers`: fetch pairs become
:class:`~repro.measure.classifiers.record.PageRecord` evidence,
independent classifiers emit signals, and a deterministic fusion stage
produces the final :class:`~repro.measure.verdict.Comparison`.

This module keeps the old import surface alive:

- ``Verdict`` / ``Comparison`` / ``Detection`` re-export from
  :mod:`repro.measure.verdict` (no warning — the types are canonical,
  only their home moved);
- ``compare()`` warns once per process, then delegates to the preserved
  legacy if-chain (:func:`repro.measure.classifiers.legacy.legacy_compare`).
  New code should construct a
  :class:`~repro.measure.classifiers.VerdictEngine` instead.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.measure.classifiers.blockpage import BlockPagePatternMatcher
from repro.measure.classifiers.legacy import legacy_compare
from repro.measure.verdict import Comparison, Detection, Verdict
from repro.net.fetch import FetchResult

__all__ = ["Comparison", "Detection", "Verdict", "compare"]

# A long campaign resolves this shim thousands of times; warn once per
# process so logs stay readable.
_warned: set = set()


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latch (test helper)."""
    _warned.clear()


def compare(
    field: FetchResult,
    lab: FetchResult,
    detector: Optional[BlockPagePatternMatcher] = None,
) -> Comparison:
    """Classify a field result given the lab's view of the same URL.

    Deprecated: this is the pre-fusion if-chain, kept verbatim for
    callers that have not migrated. Use
    ``repro.measure.classifiers.VerdictEngine`` for the evidence-based
    path with confidence fusion.
    """
    if "compare" not in _warned:
        _warned.add("compare")
        warnings.warn(
            "repro.measure.compare.compare() is deprecated; use "
            "repro.measure.classifiers.VerdictEngine for fused verdicts "
            "(or classifiers.legacy.legacy_compare for the historical "
            "if-chain)",
            DeprecationWarning,
            stacklevel=2,
        )
    return legacy_compare(field, lab, matcher=detector)

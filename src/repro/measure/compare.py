"""Field-vs-lab comparison: the §4.1 accessibility verdict.

"The results of the Web page accesses in the field and lab are compared
to determine if the page was blocked in the field location." The
comparator distinguishes explicit block pages (the products studied all
serve them) from the ambiguous failure modes the paper sidesteps —
resets, drops, DNS tampering — and from sites that are simply down
everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.measure.blockpage_detect import BlockPageDetector, Detection
from repro.net.fetch import FetchOutcome, FetchResult


class Verdict(enum.Enum):
    """Accessibility of one URL from one field vantage."""

    ACCESSIBLE = "accessible"
    BLOCKED_BLOCKPAGE = "blocked_blockpage"
    #: Field sees an interference page that matches no vendor pattern —
    #: what a fully unbranded block page (§2.2, §6.1) looks like. The
    #: confirmation differential still counts it as blocked; §5
    #: attribution cannot.
    BLOCKED_UNATTRIBUTED = "blocked_unattributed"
    BLOCKED_RESET = "blocked_reset"
    BLOCKED_TIMEOUT = "blocked_timeout"
    DNS_TAMPERED = "dns_tampered"
    SITE_DOWN = "site_down"  # lab could not reach it either
    ANOMALY = "anomaly"  # field differs from lab, cause unclear
    #: The measurement itself failed (retries exhausted, vantage down,
    #: breaker open): no field/lab pair exists to compare. Explicitly
    #: neither blocked nor accessible — a flaky probe must degrade to
    #: "we do not know", never to a censorship claim.
    INSUFFICIENT = "insufficient_data"

    @property
    def is_blocked(self) -> bool:
        return self in (
            Verdict.BLOCKED_BLOCKPAGE,
            Verdict.BLOCKED_UNATTRIBUTED,
            Verdict.BLOCKED_RESET,
            Verdict.BLOCKED_TIMEOUT,
            Verdict.DNS_TAMPERED,
        )


@dataclass
class Comparison:
    """The outcome of comparing one field fetch against the lab fetch."""

    verdict: Verdict
    detection: Optional[Detection] = None
    note: str = ""

    @property
    def blocked(self) -> bool:
        return self.verdict.is_blocked

    @property
    def vendor(self) -> Optional[str]:
        return self.detection.vendor if self.detection else None


def compare(
    field: FetchResult,
    lab: FetchResult,
    detector: Optional[BlockPageDetector] = None,
) -> Comparison:
    """Classify a field result given the lab's view of the same URL."""
    detector = detector or BlockPageDetector()
    lab_ok = lab.outcome is FetchOutcome.OK and (lab.status or 0) < 400

    if not lab_ok:
        # The control fetch failed: nothing can be said about censorship.
        return Comparison(Verdict.SITE_DOWN, note=f"lab outcome {lab.outcome.value}")

    if field.outcome is FetchOutcome.TCP_RESET:
        return Comparison(Verdict.BLOCKED_RESET)
    if field.outcome is FetchOutcome.TIMEOUT:
        return Comparison(Verdict.BLOCKED_TIMEOUT)
    if field.outcome is FetchOutcome.DNS_FAILURE:
        return Comparison(
            Verdict.DNS_TAMPERED, note="NXDOMAIN in field, resolvable in lab"
        )
    if field.outcome is not FetchOutcome.OK:
        return Comparison(Verdict.ANOMALY, note=f"field outcome {field.outcome.value}")

    detection = detector.detect(field)
    if detection is not None:
        return Comparison(Verdict.BLOCKED_BLOCKPAGE, detection)

    field_status = field.status or 0
    if field_status >= 400 and (lab.status or 0) < 400:
        # An error page the lab does not see and no vendor pattern
        # matched: an unbranded block page (§2.2, §6.1).
        return Comparison(
            Verdict.BLOCKED_UNATTRIBUTED,
            note=f"field HTTP {field_status} vs lab {lab.status}",
        )
    if not _content_similar(field, lab):
        # Both 200 but the field saw a different page — e.g. Netsweeper
        # serves its deny page with HTTP 200. The field/lab comparison
        # (§4.1) is exactly what catches this.
        return Comparison(
            Verdict.BLOCKED_UNATTRIBUTED, note="field content differs from lab"
        )
    return Comparison(Verdict.ACCESSIBLE)


def _content_similar(field: FetchResult, lab: FetchResult) -> bool:
    """Coarse page-equality check between the field and lab views."""
    field_response = field.response
    lab_response = lab.response
    if field_response is None or lab_response is None:
        return field_response is lab_response
    field_title = field_response.html_title()
    lab_title = lab_response.html_title()
    if field_title and lab_title:
        # Both views fetched the SAME URL: the title is decisive.
        return field_title == lab_title
    field_words = set(field_response.body.lower().split())
    lab_words = set(lab_response.body.lower().split())
    if not field_words and not lab_words:
        return True
    union = field_words | lab_words
    if not union:
        return True
    jaccard = len(field_words & lab_words) / len(union)
    return jaccard >= 0.4

"""The verdict model: accessibility verdicts, signals, and comparisons.

This is the canonical home of the types the whole measurement layer
speaks: :class:`Verdict` (one URL's accessibility from one field
vantage), :class:`Signal` (one classifier's weighted opinion about a
page record), :class:`Detection` (a positive vendor attribution) and
:class:`Comparison` (the fused final answer, with a confidence score
and the per-signal breakdown that produced it).

Historically these lived in :mod:`repro.measure.compare`, which decided
verdicts with a one-shot if-chain; they moved here when the verdict path
was restructured around pluggable classifiers with confidence fusion
(:mod:`repro.measure.classifiers`). The old module re-exports them, so
existing imports keep working.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Verdict(enum.Enum):
    """Accessibility of one URL from one field vantage."""

    ACCESSIBLE = "accessible"
    BLOCKED_BLOCKPAGE = "blocked_blockpage"
    #: Field sees an interference page that matches no vendor pattern —
    #: what a fully unbranded block page (§2.2, §6.1) looks like. The
    #: confirmation differential still counts it as blocked; §5
    #: attribution cannot.
    BLOCKED_UNATTRIBUTED = "blocked_unattributed"
    BLOCKED_RESET = "blocked_reset"
    BLOCKED_TIMEOUT = "blocked_timeout"
    #: TLS handshakes torn down on the server name alone while plain
    #: HTTP passes — the SNI-based filtering "How India Censors the
    #: Web" documents. Page content is never touched, so only the
    #: TLS/SNI evidence in the page record reveals it.
    BLOCKED_SNI = "blocked_sni"
    #: The page arrives intact but pathologically slowly compared to the
    #: lab view — soft censorship by throttling rather than denial.
    THROTTLED = "throttled"
    DNS_TAMPERED = "dns_tampered"
    SITE_DOWN = "site_down"  # lab could not reach it either
    ANOMALY = "anomaly"  # field differs from lab, cause unclear
    #: The measurement itself failed (retries exhausted, vantage down,
    #: breaker open): no field/lab pair exists to compare. Explicitly
    #: neither blocked nor accessible — a flaky probe must degrade to
    #: "we do not know", never to a censorship claim.
    INSUFFICIENT = "insufficient_data"

    @property
    def is_blocked(self) -> bool:
        return self in (
            Verdict.BLOCKED_BLOCKPAGE,
            Verdict.BLOCKED_UNATTRIBUTED,
            Verdict.BLOCKED_RESET,
            Verdict.BLOCKED_TIMEOUT,
            Verdict.BLOCKED_SNI,
            Verdict.THROTTLED,
            Verdict.DNS_TAMPERED,
        )


#: Verdict severity for deterministic fusion tie-breaking, most severe
#: first. An explicit block page outranks everything (it is the paper's
#: least ambiguous evidence); network-level denials follow; soft and
#: ambiguous outcomes trail. Equal fused scores resolve by this order,
#: never by signal arrival order.
SEVERITY_ORDER: Tuple[Verdict, ...] = (
    Verdict.BLOCKED_BLOCKPAGE,
    Verdict.DNS_TAMPERED,
    Verdict.BLOCKED_RESET,
    Verdict.BLOCKED_SNI,
    Verdict.BLOCKED_TIMEOUT,
    Verdict.BLOCKED_UNATTRIBUTED,
    Verdict.THROTTLED,
    Verdict.ANOMALY,
    Verdict.SITE_DOWN,
    Verdict.INSUFFICIENT,
    Verdict.ACCESSIBLE,
)

_SEVERITY_RANK = {verdict: rank for rank, verdict in enumerate(SEVERITY_ORDER)}


def severity_rank(verdict: Verdict) -> int:
    """Lower rank = more severe; total order over all verdicts."""
    return _SEVERITY_RANK[verdict]


@dataclass
class Detection:
    """A positive block-page identification."""

    vendor: str
    matched: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class Signal:
    """One classifier's opinion about one page record.

    ``confidence`` is the classifier's own calibration in [0, 1];
    fusion combines it with the per-classifier policy weight. A signal
    never decides anything alone — it is evidence, not a verdict.
    """

    classifier: str
    verdict: Verdict
    confidence: float
    evidence: str = ""
    detection: Optional[Detection] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"signal confidence must be in [0, 1]: {self.confidence}"
            )

    def describe(self) -> str:
        return f"{self.classifier}: {self.verdict.value} ({self.confidence:.2f})"


@dataclass
class Comparison:
    """The outcome of comparing one field fetch against the lab fetch.

    ``confidence`` is the fused score behind the verdict (1.0 for
    pre-classifier gates like SITE_DOWN, 0.0 for quarantined probes
    where nothing was measured); ``signals`` is the per-classifier
    breakdown the fusion stage saw, in its canonical order.
    """

    verdict: Verdict
    detection: Optional[Detection] = None
    note: str = ""
    confidence: float = 1.0
    signals: Tuple[Signal, ...] = ()

    @property
    def blocked(self) -> bool:
        return self.verdict.is_blocked

    @property
    def vendor(self) -> Optional[str]:
        return self.detection.vendor if self.detection else None

    def signal_names(self) -> Tuple[str, ...]:
        """Contributing classifier names, for stored breakdowns."""
        return tuple(signal.classifier for signal in self.signals)

"""Block-page detection via regular expressions.

§5: "Manual analysis identified regular expressions corresponding to the
vendors' block pages and automated analysis identified all URLs which
matched a given block page regular expression." The corpus is built from
the product registry's per-spec patterns and covers both branded and
structural signals, so detection degrades gracefully as vendors strip
branding (§2.2) — the structural patterns (deny-page paths, the 15871
port, cfauth redirects) survive cosmetic changes, and full header
stripping defeats attribution without hiding the *fact* of blocking (an
unexplained 403/redirect still differs from the lab view).

The vendor-name constants (``BLUE_COAT`` …) are deprecated here; import
them from :mod:`repro.products.registry` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.net.fetch import FetchResult
from repro.products import registry as _registry
from repro.products.registry import (
    CompiledBlockPattern as BlockPagePattern,
    default_registry,
)

#: The §5 regex corpus for the paper's default products.  Patterns
#: target block-page *content* and deny-redirect structure.  Generic
#: proxy residue (Via / Via-Proxy headers) is deliberately NOT block
#: evidence: proxy appliances stamp those on every forwarded response,
#: censored or not (that residue is what the Netalyzr-style
#: fingerprinting in :mod:`repro.measure.netalyzr` reads instead).
DEFAULT_PATTERNS: Sequence[BlockPagePattern] = (
    default_registry().block_page_patterns()
)


@dataclass
class Detection:
    """A positive block-page identification."""

    vendor: str
    matched: List[str] = field(default_factory=list)


class BlockPageDetector:
    """Matches a fetch result against the block-page regex corpus."""

    def __init__(
        self, patterns: Sequence[BlockPagePattern] = DEFAULT_PATTERNS
    ) -> None:
        self._patterns = list(patterns)

    @classmethod
    def for_products(
        cls, products: Optional[Sequence[str]] = None
    ) -> "BlockPageDetector":
        """A detector over the registry corpus for a product selection."""
        return cls(default_registry().block_page_patterns(products))

    def without_branded_patterns(self) -> "BlockPageDetector":
        """A detector limited to structural signals (evasion studies)."""
        return BlockPageDetector(
            [p for p in self._patterns if not p.branded]
        )

    def detect(self, result: FetchResult) -> Optional[Detection]:
        """Attribute a fetch to a vendor's block flow, if any pattern hits.

        Every hop is inspected — deny flows are redirect chains, and the
        telltale strings often live in the *first* hop's Location header
        rather than the final page.
        """
        votes: Dict[str, List[str]] = {}
        for hop in result.hops:
            response = hop.response
            headers_text = f"{response.status_line()}\n{response.headers.as_text()}"
            body_text = response.body
            for pattern in self._patterns:
                if pattern.scope == "headers":
                    haystacks = [headers_text]
                elif pattern.scope == "body":
                    haystacks = [body_text]
                else:
                    haystacks = [headers_text, body_text]
                if any(pattern.pattern.search(h) for h in haystacks):
                    votes.setdefault(pattern.vendor, []).append(
                        pattern.pattern.pattern
                    )
            # Request URLs matter too: after following a deny redirect the
            # final request path contains webadmin/deny or blockpage.cgi.
            # Only *structural* (non-branded) patterns apply here — a
            # vendor's own hostname (denypagetests.netsweeper.com) must
            # not read as a block page.
            request_url = str(hop.request.url)
            for pattern in self._patterns:
                if (
                    pattern.scope == "any"
                    and not pattern.branded
                    and pattern.pattern.search(request_url)
                ):
                    votes.setdefault(pattern.vendor, []).append(
                        pattern.pattern.pattern
                    )
        if not votes:
            return None
        # Most distinct patterns wins; ties break lexicographically by
        # vendor name so the verdict never depends on corpus order.
        best_vendor = min(votes, key=lambda v: (-len(set(votes[v])), v))
        return Detection(best_vendor, sorted(set(votes[best_vendor])))


_DEPRECATED_CONSTANTS = {
    "BLUE_COAT": _registry.BLUE_COAT,
    "SMARTFILTER": _registry.SMARTFILTER,
    "NETSWEEPER": _registry.NETSWEEPER,
    "WEBSENSE": _registry.WEBSENSE,
}

# A long campaign resolves these shims thousands of times; warn once per
# constant per process so logs stay readable.
_warned: set = set()


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latch (test helper)."""
    _warned.clear()


def __getattr__(name: str) -> str:
    if name in _DEPRECATED_CONSTANTS:
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"repro.measure.blockpage_detect.{name} is deprecated; import "
                "it from repro.products.registry",
                DeprecationWarning,
                stacklevel=2,
            )
        return _DEPRECATED_CONSTANTS[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

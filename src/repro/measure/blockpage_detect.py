"""Deprecated shim over the classifier-layer block-page matcher.

The §5 regex matching engine now lives in
:mod:`repro.measure.classifiers.blockpage` as
:class:`~repro.measure.classifiers.blockpage.BlockPagePatternMatcher`;
the fusion path wraps it in a ``BlockPageClassifier`` that emits a
weighted signal instead of deciding the verdict alone.

This module keeps the old import surface alive:

- ``BlockPagePattern`` / ``DEFAULT_PATTERNS`` / ``Detection`` re-export
  unchanged (no warning);
- ``BlockPageDetector`` still works but warns once per process on first
  instantiation — it is now a thin subclass of the canonical matcher;
- the vendor-name constants (``BLUE_COAT`` …) remain deprecated; import
  them from :mod:`repro.products.registry` instead.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.measure.classifiers.blockpage import (
    BlockPagePatternMatcher,
    BlockPagePattern,
    default_patterns,
)
from repro.measure.verdict import Detection
from repro.products import registry as _registry

__all__ = [
    "BlockPageDetector",
    "BlockPagePattern",
    "DEFAULT_PATTERNS",
    "Detection",
]

#: The §5 regex corpus for the paper's default products (re-export).
DEFAULT_PATTERNS: Sequence[BlockPagePattern] = default_patterns()

# A long campaign resolves these shims thousands of times; warn once per
# name per process so logs stay readable.
_warned: set = set()


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latch (test helper)."""
    _warned.clear()


def _warn_once(name: str, replacement: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.measure.blockpage_detect.{name} is deprecated; use "
        f"{replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


class BlockPageDetector(BlockPagePatternMatcher):
    """Deprecated alias of the classifier-layer pattern matcher.

    Matching behavior is identical; only the home moved. ``detect()``,
    ``for_products()`` and ``without_branded_patterns()`` all come from
    the base class.
    """

    def __init__(
        self, patterns: Optional[Sequence[BlockPagePattern]] = None
    ) -> None:
        _warn_once(
            "BlockPageDetector",
            "repro.measure.classifiers.BlockPagePatternMatcher",
        )
        super().__init__(DEFAULT_PATTERNS if patterns is None else patterns)


_DEPRECATED_CONSTANTS = {
    "BLUE_COAT": _registry.BLUE_COAT,
    "SMARTFILTER": _registry.SMARTFILTER,
    "NETSWEEPER": _registry.NETSWEEPER,
    "WEBSENSE": _registry.WEBSENSE,
}


def __getattr__(name: str) -> str:
    if name in _DEPRECATED_CONSTANTS:
        _warn_once(name, "repro.products.registry")
        return _DEPRECATED_CONSTANTS[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

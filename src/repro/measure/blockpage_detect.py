"""Block-page detection via regular expressions.

§5: "Manual analysis identified regular expressions corresponding to the
vendors' block pages and automated analysis identified all URLs which
matched a given block page regular expression." The corpus below covers
both branded and structural signals, so detection degrades gracefully as
vendors strip branding (§2.2) — the structural patterns (deny-page
paths, the 15871 port, cfauth redirects) survive cosmetic changes, and
full header stripping defeats attribution without hiding the *fact* of
blocking (an unexplained 403/redirect still differs from the lab view).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Pattern, Sequence

from repro.net.fetch import FetchResult

BLUE_COAT = "Blue Coat"
SMARTFILTER = "McAfee SmartFilter"
NETSWEEPER = "Netsweeper"
WEBSENSE = "Websense"


@dataclass(frozen=True)
class BlockPagePattern:
    """One regex attributed to one vendor's block flow."""

    vendor: str
    pattern: Pattern
    scope: str  # "headers" | "body" | "any"
    branded: bool  # True when the pattern relies on vendor branding


def _compile(vendor: str, regex: str, scope: str, branded: bool) -> BlockPagePattern:
    return BlockPagePattern(vendor, re.compile(regex, re.IGNORECASE), scope, branded)


#: Patterns target block-page *content* and deny-redirect structure.
#: Generic proxy residue (Via / Via-Proxy headers) is deliberately NOT
#: block evidence: proxy appliances stamp those on every forwarded
#: response, censored or not (that residue is what the Netalyzr-style
#: fingerprinting in :mod:`repro.measure.netalyzr` reads instead).
DEFAULT_PATTERNS: Sequence[BlockPagePattern] = (
    # Blue Coat
    _compile(BLUE_COAT, r"www\.cfauth\.com", "any", False),
    _compile(BLUE_COAT, r"cfru=", "any", False),
    _compile(BLUE_COAT, r"blue ?coat", "body", True),
    _compile(BLUE_COAT, r"proxysg", "body", True),
    _compile(BLUE_COAT, r"content categorization", "body", False),
    # McAfee SmartFilter / Web Gateway
    _compile(SMARTFILTER, r"mcafee web gateway", "body", True),
    _compile(SMARTFILTER, r"<h1>\s*URL Blocked\s*</h1>", "body", False),
    # Netsweeper
    _compile(NETSWEEPER, r"webadmin/deny", "any", False),
    _compile(NETSWEEPER, r"netsweeper", "body", True),
    _compile(NETSWEEPER, r"Web Page Blocked", "body", False),
    # Websense
    _compile(WEBSENSE, r"blockpage\.cgi", "any", False),
    _compile(WEBSENSE, r"ws-session", "any", False),
    _compile(WEBSENSE, r"websense", "body", True),
)


@dataclass
class Detection:
    """A positive block-page identification."""

    vendor: str
    matched: List[str] = field(default_factory=list)


class BlockPageDetector:
    """Matches a fetch result against the block-page regex corpus."""

    def __init__(
        self, patterns: Sequence[BlockPagePattern] = DEFAULT_PATTERNS
    ) -> None:
        self._patterns = list(patterns)

    def without_branded_patterns(self) -> "BlockPageDetector":
        """A detector limited to structural signals (evasion studies)."""
        return BlockPageDetector(
            [p for p in self._patterns if not p.branded]
        )

    def detect(self, result: FetchResult) -> Optional[Detection]:
        """Attribute a fetch to a vendor's block flow, if any pattern hits.

        Every hop is inspected — deny flows are redirect chains, and the
        telltale strings often live in the *first* hop's Location header
        rather than the final page.
        """
        votes: Dict[str, List[str]] = {}
        for hop in result.hops:
            response = hop.response
            headers_text = f"{response.status_line()}\n{response.headers.as_text()}"
            body_text = response.body
            for pattern in self._patterns:
                if pattern.scope == "headers":
                    haystacks = [headers_text]
                elif pattern.scope == "body":
                    haystacks = [body_text]
                else:
                    haystacks = [headers_text, body_text]
                if any(pattern.pattern.search(h) for h in haystacks):
                    votes.setdefault(pattern.vendor, []).append(
                        pattern.pattern.pattern
                    )
            # Request URLs matter too: after following a deny redirect the
            # final request path contains webadmin/deny or blockpage.cgi.
            # Only *structural* (non-branded) patterns apply here — a
            # vendor's own hostname (denypagetests.netsweeper.com) must
            # not read as a block page.
            request_url = str(hop.request.url)
            for pattern in self._patterns:
                if (
                    pattern.scope == "any"
                    and not pattern.branded
                    and pattern.pattern.search(request_url)
                ):
                    votes.setdefault(pattern.vendor, []).append(
                        pattern.pattern.pattern
                    )
        if not votes:
            return None
        best_vendor = max(votes, key=lambda v: len(set(votes[v])))
        return Detection(best_vendor, sorted(set(votes[best_vendor])))

"""Netalyzr-style transparent-proxy fingerprinting.

§1 and §7: "our methodology can provide a useful ground truth for more
general identification of transparent proxies (e.g., Netalyzr)". This
module implements that client-side fingerprinting: a vantage inside an
ISP fetches a researcher-controlled *reference* URL whose canonical
response is known exactly, and diffs what arrives against what the
server sent. Header residue (Via, Via-Proxy, X-Cache) betrays an
on-path proxy; the residue's content attributes the product.

The §4 confirmation methodology serves as ground truth for this
fingerprinting — the benches cross-validate the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.executor import Campaign, Executor
from repro.net.http import Headers, HttpRequest, HttpResponse, html_page
from repro.net.url import Url
from repro.products.registry import default_registry
from repro.world.content import ContentClass
from repro.world.entities import Host
from repro.world.world import Vantage, World

REFERENCE_HOST = "aperture.netalyzr-reference.example"

#: Headers a reference fetch should never gain in transit; each maps a
#: residue substring to the product it attributes (each registered
#: spec's ``residue_tokens``).
RESIDUE_ATTRIBUTION: Sequence[Tuple[str, str]] = (
    default_registry().residue_attribution()
)

_TRANSIT_HEADERS = ("via", "via-proxy", "x-cache", "proxy-agent")


def canonical_reference_response() -> HttpResponse:
    """The exact response the reference server serves — byte-stable."""
    headers = Headers()
    headers.set("Server", "aperture/1.0")
    headers.set("Content-Type", "text/html; charset=utf-8")
    headers.set("X-Aperture-Token", "d41d8cd98f00b204")
    return HttpResponse(
        200,
        headers,
        html_page("Aperture Reference", "<p>reference-payload-3c59dc</p>"),
    )


def install_reference_server(world: World, hosting_asn: int) -> Host:
    """Register the reference host (idempotent)."""
    if REFERENCE_HOST in world.zone:
        ip = world.zone.resolve(REFERENCE_HOST)
        host = world.host_at(ip)
        assert host is not None
        return host
    ip = world.allocate_ip(hosting_asn)
    host = Host(ip=ip, hostname=REFERENCE_HOST, tags=["netalyzr-reference"])
    host.add_service(80, lambda _request: canonical_reference_response())
    host.add_service(443, lambda _request: canonical_reference_response())
    world.add_host(host)
    return host


@dataclass
class ProxyFinding:
    """One piece of in-transit modification evidence."""

    kind: str  # added_header | modified_header | missing_header | status
    detail: str


@dataclass
class ProxyDetectionReport:
    """What the in-network fingerprinting concluded."""

    vantage_label: str
    proxy_detected: bool
    findings: List[ProxyFinding] = field(default_factory=list)
    attributed_products: List[str] = field(default_factory=list)

    @property
    def attributable(self) -> bool:
        return bool(self.attributed_products)


def detect_proxy(vantage: Vantage, *, scheme: str = "http") -> ProxyDetectionReport:
    """Fetch the reference URL from ``vantage`` and diff the response.

    Raises LookupError when the reference server has not been installed
    in the vantage's world.
    """
    world = vantage.world
    if REFERENCE_HOST not in world.zone:
        raise LookupError(
            "reference server not installed; call install_reference_server()"
        )
    url = Url.for_host(REFERENCE_HOST, scheme=scheme)
    result = vantage.fetch(url)
    report = ProxyDetectionReport(vantage_label=vantage.location, proxy_detected=False)
    canonical = canonical_reference_response()

    if not result.ok or result.response is None:
        report.proxy_detected = True
        report.findings.append(
            ProxyFinding("status", f"fetch failed: {result.outcome.value}")
        )
        return report

    observed = result.response
    if observed.status != canonical.status:
        report.proxy_detected = True
        report.findings.append(
            ProxyFinding("status", f"{canonical.status} -> {observed.status}")
        )
    if observed.body != canonical.body:
        report.proxy_detected = True
        report.findings.append(ProxyFinding("modified_header", "body rewritten"))

    canonical_names = {name.lower() for name, _v in canonical.headers.items()}
    for name, value in observed.headers.items():
        lowered = name.lower()
        if lowered in canonical_names:
            if canonical.headers.get(name) != value:
                report.proxy_detected = True
                report.findings.append(
                    ProxyFinding("modified_header", f"{name}: {value}")
                )
            continue
        report.proxy_detected = True
        report.findings.append(ProxyFinding("added_header", f"{name}: {value}"))
        if lowered in _TRANSIT_HEADERS:
            for needle, product in RESIDUE_ATTRIBUTION:
                if needle in value.lower() and product not in report.attributed_products:
                    report.attributed_products.append(product)
    for name, _value in canonical.headers.items():
        if observed.headers.get(name) is None:
            report.proxy_detected = True
            report.findings.append(ProxyFinding("missing_header", name))
    return report


def survey_isps(
    world: World,
    isp_names: Sequence[str],
    *,
    executor: Optional[Executor] = None,
) -> Dict[str, ProxyDetectionReport]:
    """Run proxy detection from a vantage in each named ISP.

    Each ISP's reference fetch is an independent campaign, so they fan
    out across workers; the report dict keeps the caller's ISP order
    regardless of completion order.
    """
    if executor is None or executor.workers == 1:
        return {name: detect_proxy(world.vantage(name)) for name in isp_names}

    def make_campaign(name: str) -> Campaign:
        return Campaign(key=name, run=lambda: detect_proxy(world.vantage(name)))

    outcomes = executor.run_campaigns(
        [make_campaign(name) for name in isp_names], label="netalyzr"
    )
    reports: Dict[str, ProxyDetectionReport] = {}
    for outcome in outcomes:
        if not outcome.ok:
            raise outcome.error
        reports[outcome.key] = outcome.result
    return reports

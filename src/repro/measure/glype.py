"""Glype proxy script content.

§4.3: the test domains "contained the Glype proxy script as their index
page". Glype was the era's ubiquitous PHP web-proxy script; hosting it
is what makes a vendor analyst categorize the site as a proxy/anonymizer.
"""

from __future__ import annotations

from repro.net.http import Headers, HttpResponse, html_page

GLYPE_MARKER = "Powered by Glype"


def glype_index_page(domain: str) -> HttpResponse:
    """The Glype index page a fresh proxy site serves."""
    body = (
        "<h1>Web Proxy</h1>"
        "<p>Surf the web anonymously. Enter a URL to begin browsing "
        "through this proxy.</p>"
        '<form action="/browse.php" method="post">'
        '<input type="text" name="u" size="40" />'
        '<input type="submit" value="Go" />'
        "</form>"
        '<p><label><input type="checkbox" name="allowCookies" checked>'
        "Allow Cookies</label> "
        '<label><input type="checkbox" name="encodeURL" checked>'
        "Encode URL</label> "
        '<label><input type="checkbox" name="stripJS">'
        "Remove Scripts</label></p>"
        f"<p><small>{GLYPE_MARKER} &reg; v1.4.9</small></p>"
    )
    headers = Headers()
    headers.set("Server", "Apache/2.2.22 (Ubuntu)")
    headers.set("X-Powered-By", "PHP/5.3.10")
    headers.set("Content-Type", "text/html; charset=utf-8")
    return HttpResponse(200, headers, html_page(f"{domain} - Web Proxy", body))


def glype_browse_page(domain: str) -> HttpResponse:
    """The /browse.php endpoint (content irrelevant to the study)."""
    headers = Headers()
    headers.set("Server", "Apache/2.2.22 (Ubuntu)")
    headers.set("Content-Type", "text/html; charset=utf-8")
    return HttpResponse(
        200,
        headers,
        html_page(f"{domain} - Browsing", "<p>Proxied content frame.</p>"),
    )

"""Measurement layer: field/lab clients, verdicts, test lists, domains."""

from repro.measure.blockpage_detect import (
    BlockPageDetector,
    BlockPagePattern,
    DEFAULT_PATTERNS,
    Detection,
)
from repro.measure.classifiers import (
    BlockPagePatternMatcher,
    FusionPolicy,
    PageRecord,
    PageView,
    VerdictEngine,
    default_classifiers,
    default_filters,
    fuse,
    legacy_compare,
)
from repro.measure.client import MeasurementClient, MeasurementRun, UrlTest
from repro.measure.compare import compare
from repro.measure.verdict import Comparison, Signal, Verdict
from repro.measure.domains import (
    ADULT_IMAGE_PATH,
    BENIGN_IMAGE_PATH,
    TestDomain,
    TestDomainFactory,
)
from repro.measure.glype import GLYPE_MARKER, glype_index_page
from repro.measure.netalyzr import (
    ProxyDetectionReport,
    ProxyFinding,
    REFERENCE_HOST,
    detect_proxy,
    install_reference_server,
    survey_isps,
)
from repro.measure.testlists import (
    CATEGORY_BY_NAME,
    LIST_CATEGORIES,
    ListCategory,
    Table4Column,
    TestList,
    TestListEntry,
    Theme,
    build_global_list,
    build_local_list,
)

__all__ = [
    "ADULT_IMAGE_PATH",
    "BENIGN_IMAGE_PATH",
    "BlockPageDetector",
    "BlockPagePattern",
    "BlockPagePatternMatcher",
    "CATEGORY_BY_NAME",
    "Comparison",
    "DEFAULT_PATTERNS",
    "Detection",
    "FusionPolicy",
    "PageRecord",
    "PageView",
    "Signal",
    "VerdictEngine",
    "GLYPE_MARKER",
    "LIST_CATEGORIES",
    "ListCategory",
    "MeasurementClient",
    "MeasurementRun",
    "ProxyDetectionReport",
    "ProxyFinding",
    "REFERENCE_HOST",
    "detect_proxy",
    "install_reference_server",
    "survey_isps",
    "Table4Column",
    "TestDomain",
    "TestDomainFactory",
    "TestList",
    "TestListEntry",
    "Theme",
    "UrlTest",
    "Verdict",
    "build_global_list",
    "build_local_list",
    "compare",
    "default_classifiers",
    "default_filters",
    "fuse",
    "glype_index_page",
    "legacy_compare",
]

"""Measurement layer: field/lab clients, verdicts, test lists, domains."""

from repro.measure.blockpage_detect import (
    BlockPageDetector,
    BlockPagePattern,
    DEFAULT_PATTERNS,
    Detection,
)
from repro.measure.client import MeasurementClient, MeasurementRun, UrlTest
from repro.measure.compare import Comparison, Verdict, compare
from repro.measure.domains import (
    ADULT_IMAGE_PATH,
    BENIGN_IMAGE_PATH,
    TestDomain,
    TestDomainFactory,
)
from repro.measure.glype import GLYPE_MARKER, glype_index_page
from repro.measure.netalyzr import (
    ProxyDetectionReport,
    ProxyFinding,
    REFERENCE_HOST,
    detect_proxy,
    install_reference_server,
    survey_isps,
)
from repro.measure.testlists import (
    CATEGORY_BY_NAME,
    LIST_CATEGORIES,
    ListCategory,
    Table4Column,
    TestList,
    TestListEntry,
    Theme,
    build_global_list,
    build_local_list,
)

__all__ = [
    "ADULT_IMAGE_PATH",
    "BENIGN_IMAGE_PATH",
    "BlockPageDetector",
    "BlockPagePattern",
    "CATEGORY_BY_NAME",
    "Comparison",
    "DEFAULT_PATTERNS",
    "Detection",
    "GLYPE_MARKER",
    "LIST_CATEGORIES",
    "ListCategory",
    "MeasurementClient",
    "MeasurementRun",
    "ProxyDetectionReport",
    "ProxyFinding",
    "REFERENCE_HOST",
    "detect_proxy",
    "install_reference_server",
    "survey_isps",
    "Table4Column",
    "TestDomain",
    "TestDomainFactory",
    "TestList",
    "TestListEntry",
    "Theme",
    "UrlTest",
    "Verdict",
    "build_global_list",
    "build_local_list",
    "compare",
    "glype_index_page",
]

"""Test-domain factory for the confirmation methodology.

§4.3-§4.4: the researchers register fresh domains "of two random
(non-profane) words registered with the .info top-level domain", host
controlled content on them (the Glype proxy script for anonymizer tests,
a single adult image for the Saudi pornography test), verify
accessibility, submit a subset, and retest. §4.6's ethics notes are
honored in the model: the adult image lives at one path, testers fetch a
*benign* image on the same host, and the image is removed after the
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.measure.glype import glype_browse_page, glype_index_page
from repro.net.http import Headers, HttpResponse, html_page, ok_response
from repro.net.url import Url
from repro.world.content import ContentClass
from repro.world.entities import WebSite
from repro.world.population import DomainSynthesizer
from repro.world.rng import derive_rng
from repro.world.world import World

ADULT_IMAGE_PATH = "/gallery/image1.jpg"
BENIGN_IMAGE_PATH = "/files/benign.jpg"


@dataclass
class TestDomain:
    """One researcher-controlled domain."""

    __test__ = False  # not a pytest collectable despite the name

    domain: str
    content_class: ContentClass
    site: WebSite

    @property
    def url(self) -> Url:
        return Url.for_host(self.domain)

    @property
    def test_url(self) -> Url:
        """What testers actually fetch (§4.6: benign path on adult hosts)."""
        if self.content_class in (
            ContentClass.ADULT_IMAGES,
            ContentClass.PORNOGRAPHY,
        ):
            return self.url.with_path(BENIGN_IMAGE_PATH)
        return self.url


def _image_response(label: str) -> HttpResponse:
    headers = Headers()
    headers.set("Server", "Apache/2.2.22 (Ubuntu)")
    headers.set("Content-Type", "image/jpeg")
    return HttpResponse(200, headers, f"JFIF::{label}")


class TestDomainFactory:
    """Registers researcher-controlled sites into the world."""

    __test__ = False  # not a pytest collectable despite the name

    def __init__(
        self,
        world: World,
        hosting_asn: int,
        *,
        tld: str = "info",
        rng_label: str = "test-domains",
    ) -> None:
        self._world = world
        self._hosting_asn = hosting_asn
        self._tld = tld
        self._synthesizer = DomainSynthesizer(derive_rng(world.seed, rng_label))
        for domain in world.websites:
            self._synthesizer.reserve(domain)
        self.created: List[TestDomain] = []

    def create(self, content_class: ContentClass) -> TestDomain:
        """Register one fresh two-word domain hosting the given content."""
        domain = self._synthesizer.two_word(self._tld)
        site = self._world.register_website(
            domain, content_class, self._hosting_asn
        )
        self._install_content(site, content_class)
        test_domain = TestDomain(domain, content_class, site)
        self.created.append(test_domain)
        return test_domain

    def create_batch(
        self, count: int, content_class: ContentClass
    ) -> List[TestDomain]:
        """Register ``count`` fresh domains of one content class."""
        return [self.create(content_class) for _ in range(count)]

    def _install_content(self, site: WebSite, content_class: ContentClass) -> None:
        domain = site.domain
        if content_class is ContentClass.PROXY_ANONYMIZER:
            site.add_page("/", glype_index_page(domain))
            site.add_page("/browse.php", glype_browse_page(domain))
        elif content_class in (ContentClass.ADULT_IMAGES, ContentClass.PORNOGRAPHY):
            site.add_page(
                "/",
                ok_response(
                    domain,
                    f'<img src="{ADULT_IMAGE_PATH}" alt="gallery" />',
                ),
            )
            site.add_page(ADULT_IMAGE_PATH, _image_response("adult-image"))
            site.add_page(BENIGN_IMAGE_PATH, _image_response("benign-image"))
        else:
            site.add_page(
                "/",
                ok_response(domain, f"<h1>{domain}</h1><p>Placeholder page.</p>"),
            )
            site.add_page(BENIGN_IMAGE_PATH, _image_response("benign-image"))

    def remove_sensitive_content(self, test_domain: TestDomain) -> None:
        """§4.6: take the adult image down promptly after the experiment."""
        site = test_domain.site
        if ADULT_IMAGE_PATH in site.pages:
            del site.pages[ADULT_IMAGE_PATH]
            site.add_page(
                "/",
                ok_response(site.domain, "<p>This page has been retired.</p>"),
            )
            # Ground truth changes too: the host no longer serves adult
            # content, so future analyst reviews see a benign site.
            site.content_class = ContentClass.BENIGN

    def teardown(self) -> None:
        """Unregister every created domain (end-of-study cleanup)."""
        for test_domain in self.created:
            self._world.unregister_website(test_domain.domain)
        self.created.clear()

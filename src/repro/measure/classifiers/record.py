"""The page-record evidence layer.

Every field/lab fetch pair is distilled into one structured
:class:`PageRecord` — DNS outcome, TCP/TLS outcome, status, title,
body features, header text, timings — before any classifier sees it.
Classifiers read records, never raw fetch machinery, which keeps them
independent and unit-testable over crafted evidence (the HAR-like page
records Berkman's classifurlr scores are the architectural model).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.fetch import FetchOutcome, FetchResult
from repro.net.url import Url

_TAG_RE = re.compile(r"<([a-zA-Z][a-zA-Z0-9]*)")


def _tag_profile(body: str) -> Tuple[str, ...]:
    """The ordered HTML tag sequence — a cheap page-structure signature."""
    return tuple(tag.lower() for tag in _TAG_RE.findall(body))


@dataclass(frozen=True)
class PageView:
    """One vantage's distilled evidence for one URL."""

    outcome: FetchOutcome
    status: Optional[int]
    title: Optional[str]
    body: str
    body_length: int
    tag_profile: Tuple[str, ...]
    headers_text: str
    elapsed_ms: float
    rst_injected: bool
    hop_count: int

    @property
    def ok(self) -> bool:
        return self.outcome is FetchOutcome.OK

    @classmethod
    def from_result(cls, result: FetchResult) -> "PageView":
        response = result.response
        body = response.body if response is not None else ""
        headers_text = ""
        if response is not None:
            headers_text = (
                f"{response.status_line()}\n{response.headers.as_text()}"
            )
        return cls(
            outcome=result.outcome,
            status=result.status,
            title=response.html_title() if response is not None else None,
            body=body,
            body_length=len(body),
            tag_profile=_tag_profile(body),
            headers_text=headers_text,
            elapsed_ms=getattr(result, "elapsed_ms", 0.0),
            rst_injected=getattr(result, "rst_injected", False),
            hop_count=len(result.hops),
        )

    def word_set(self) -> frozenset:
        return frozenset(self.body.lower().split())


@dataclass(frozen=True)
class PageRecord:
    """The full evidence for one URL: field view vs lab view.

    The raw :class:`~repro.net.fetch.FetchResult` pair rides along for
    classifiers that need the hop chain (the block-page matcher inspects
    every redirect hop's headers and request URLs), but classifiers
    should prefer the distilled views wherever they suffice.
    """

    url: Url
    field: PageView
    lab: PageView
    field_result: FetchResult
    lab_result: FetchResult

    @classmethod
    def from_results(
        cls, field_result: FetchResult, lab_result: FetchResult
    ) -> "PageRecord":
        return cls(
            url=field_result.url,
            field=PageView.from_result(field_result),
            lab=PageView.from_result(lab_result),
            field_result=field_result,
            lab_result=lab_result,
        )

    @property
    def lab_ok(self) -> bool:
        """The control view succeeded: censorship claims are possible."""
        return self.lab.ok and (self.lab.status or 0) < 400

    def word_jaccard(self) -> float:
        """Word-set overlap between the two bodies (1.0 = identical sets)."""
        field_words = self.field.word_set()
        lab_words = self.lab.word_set()
        union = field_words | lab_words
        if not union:
            return 1.0
        return len(field_words & lab_words) / len(union)

    def tag_jaccard(self) -> float:
        """Structural overlap between the two pages' tag inventories."""
        field_tags = set(self.field.tag_profile)
        lab_tags = set(self.lab.tag_profile)
        union = field_tags | lab_tags
        if not union:
            return 1.0
        return len(field_tags & lab_tags) / len(union)

    def titles_match(self) -> bool:
        """Both views carry the same non-empty HTML title."""
        return bool(
            self.field.title
            and self.lab.title
            and self.field.title == self.lab.title
        )

    def length_ratio(self) -> float:
        """Smaller body over larger body (1.0 = equal length)."""
        larger = max(self.field.body_length, self.lab.body_length)
        if larger == 0:
            return 1.0
        return min(self.field.body_length, self.lab.body_length) / larger

"""Inconclusive filters: evidence that poisons a censorship claim.

A filter does not vote for a verdict — it recognizes page shapes that
*look* like blocking but are not attributable to a censor: CDN
anti-abuse captchas, law-enforcement domain seizures, and ISP
login/payment portals. When one matches, fusion demotes any blocked
verdict to INSUFFICIENT (the classifurlr "inconclusive" pattern): a
measurement tainted this way must degrade to "we do not know", never
count as censorship.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.measure.classifiers.record import PageRecord
from repro.measure.verdict import Signal, Verdict


class _MarkerFilter:
    """Shared engine: case-insensitive body/header markers in the field view."""

    name = "marker"
    confidence = 0.8
    markers: Sequence[str] = ()
    reason = ""

    def applies(self, record: PageRecord) -> Optional[Signal]:
        if not record.field.ok:
            return None
        haystack = (
            f"{record.field.headers_text}\n{record.field.body}".lower()
        )
        matched = [marker for marker in self.markers if marker in haystack]
        if not matched:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.INSUFFICIENT,
            confidence=self.confidence,
            evidence=f"{self.reason}: matched {matched[0]!r}",
        )


class CdnCaptchaFilter(_MarkerFilter):
    """CDN anti-abuse interstitials: rate-limits, not censorship."""

    name = "cdn-captcha"
    markers = (
        "checking your browser before accessing",
        "complete the captcha",
        "cf-chl",
        "attention required!",
    )
    reason = "CDN anti-abuse interstitial"


class SeizedDomainFilter(_MarkerFilter):
    """Law-enforcement seizure banners: the domain is gone everywhere."""

    name = "seized-domain"
    markers = (
        "this domain has been seized",
        "seized pursuant to",
        "domain seizure",
    )
    reason = "law-enforcement domain seizure"


class IspLoginPortalFilter(_MarkerFilter):
    """Captive subscriber portals: the vantage is unauthenticated, not censored."""

    name = "isp-login-portal"
    markers = (
        "subscriber login",
        "sign in to continue browsing",
        "account suspended - please pay",
        "captive portal",
    )
    reason = "ISP subscriber/captive portal"


def default_filters() -> tuple:
    """The standard inconclusive-filter set, in canonical order."""
    return (CdnCaptchaFilter(), SeizedDomainFilter(), IspLoginPortalFilter())

"""The legacy one-shot if-chain comparator, preserved verbatim.

This is the pre-fusion verdict path that used to live in
``repro.measure.compare``: a fixed precedence ladder ending in a title
short-circuit and a single Jaccard threshold. It is kept (a) as the
implementation behind the deprecated ``compare()`` shim and (b) as the
baseline the fusion integration tests measure against — the new
middlebox behaviors are *provably* misclassified here.

Do not "improve" this module; its value is that it does not change.
"""

from __future__ import annotations

from typing import Optional

from repro.measure.classifiers.blockpage import BlockPagePatternMatcher
from repro.measure.verdict import Comparison, Verdict
from repro.net.fetch import FetchOutcome, FetchResult

LEGACY_JACCARD_THRESHOLD = 0.4


def legacy_compare(
    field: FetchResult,
    lab: FetchResult,
    matcher: Optional[BlockPagePatternMatcher] = None,
) -> Comparison:
    """Classify a field result with the historical if-chain semantics."""
    matcher = matcher or BlockPagePatternMatcher()
    lab_ok = lab.outcome is FetchOutcome.OK and (lab.status or 0) < 400

    if not lab_ok:
        # The control fetch failed: nothing can be said about censorship.
        return Comparison(Verdict.SITE_DOWN, note=f"lab outcome {lab.outcome.value}")

    if field.outcome is FetchOutcome.TCP_RESET:
        return Comparison(Verdict.BLOCKED_RESET)
    if field.outcome is FetchOutcome.TIMEOUT:
        return Comparison(Verdict.BLOCKED_TIMEOUT)
    if field.outcome is FetchOutcome.DNS_FAILURE:
        return Comparison(
            Verdict.DNS_TAMPERED, note="NXDOMAIN in field, resolvable in lab"
        )
    if field.outcome is not FetchOutcome.OK:
        # NOTE: a TLS-layer reset lands here as a mere ANOMALY — the
        # legacy chain has no notion of SNI filtering. The fusion path
        # classifies it as BLOCKED_SNI.
        return Comparison(Verdict.ANOMALY, note=f"field outcome {field.outcome.value}")

    detection = matcher.detect(field)
    if detection is not None:
        return Comparison(Verdict.BLOCKED_BLOCKPAGE, detection)

    field_status = field.status or 0
    if field_status >= 400 and (lab.status or 0) < 400:
        # An error page the lab does not see and no vendor pattern
        # matched: an unbranded block page (§2.2, §6.1).
        return Comparison(
            Verdict.BLOCKED_UNATTRIBUTED,
            note=f"field HTTP {field_status} vs lab {lab.status}",
        )
    if not _content_similar(field, lab):
        # Both 200 but the field saw a different page — e.g. Netsweeper
        # serves its deny page with HTTP 200. The field/lab comparison
        # (§4.1) is exactly what catches this.
        return Comparison(
            Verdict.BLOCKED_UNATTRIBUTED, note="field content differs from lab"
        )
    return Comparison(Verdict.ACCESSIBLE)


def _content_similar(field: FetchResult, lab: FetchResult) -> bool:
    """Coarse page-equality check between the field and lab views.

    The title short-circuit is the historically load-bearing flaw: an
    HTTP-200 censorship page that spoofs the origin's title reads as
    "similar" here no matter what its body says.
    """
    field_response = field.response
    lab_response = lab.response
    if field_response is None or lab_response is None:
        return field_response is lab_response
    field_title = field_response.html_title()
    lab_title = lab_response.html_title()
    if field_title and lab_title:
        # Both views fetched the SAME URL: the title is decisive.
        return field_title == lab_title
    field_words = set(field_response.body.lower().split())
    lab_words = set(lab_response.body.lower().split())
    if not field_words and not lab_words:
        return True
    union = field_words | lab_words
    if not union:
        return True
    jaccard = len(field_words & lab_words) / len(union)
    return jaccard >= LEGACY_JACCARD_THRESHOLD

"""Network-level classifiers: DNS tampering, resets, timeouts, SNI.

Each classifier reads one :class:`~repro.measure.classifiers.record.PageRecord`
and emits at most one :class:`~repro.measure.verdict.Signal`. They are
deliberately narrow: a TCP reset is *evidence* of reset-based blocking,
not a verdict — the fusion stage weighs it against everything else.
"""

from __future__ import annotations

from typing import Optional

from repro.measure.classifiers.record import PageRecord
from repro.measure.verdict import Signal, Verdict
from repro.net.fetch import FetchOutcome


class DnsTamperingClassifier:
    """NXDOMAIN in the field while the lab resolves the same name.

    The products studied block over HTTP, but the comparator must be
    able to tell DNS tampering apart (§4.1); resolvable-in-lab is what
    separates tampering from a dead domain.
    """

    name = "dns-tampering"
    confidence = 0.85

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if record.field.outcome is not FetchOutcome.DNS_FAILURE:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.DNS_TAMPERED,
            confidence=self.confidence,
            evidence="NXDOMAIN in field, resolvable in lab",
        )


class ResetTimeoutClassifier:
    """Connection-level denial: injected RSTs and silent drops.

    Resets carry more weight than timeouts — a timeout is also what an
    overloaded path looks like, so its confidence is deliberately lower.
    """

    name = "rst-timeout"
    reset_confidence = 0.8
    timeout_confidence = 0.7

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if record.field.outcome is FetchOutcome.TCP_RESET:
            return Signal(
                classifier=self.name,
                verdict=Verdict.BLOCKED_RESET,
                confidence=self.reset_confidence,
                evidence="field connection reset; lab exchange completed",
            )
        if record.field.outcome is FetchOutcome.TIMEOUT:
            return Signal(
                classifier=self.name,
                verdict=Verdict.BLOCKED_TIMEOUT,
                confidence=self.timeout_confidence,
                evidence="field connection timed out; lab exchange completed",
            )
        return None


class RstInjectionClassifier:
    """A middlebox RST that lost the race with the origin's response.

    "Where The Light Gets In"-style injection middleboxes fire an RST at
    the client *alongside* the origin's packets; when the content wins
    the race the page arrives intact and a content comparison sees
    nothing. The on-wire RST recorded in the page record is the only
    evidence — exactly the case a one-shot regex verdict cannot reach.
    """

    name = "rst-injection"
    confidence = 0.85

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if not record.field.ok or not record.field.rst_injected:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.BLOCKED_RESET,
            confidence=self.confidence,
            evidence=(
                "RST injected mid-flow; origin content still received "
                "(injection lost the race)"
            ),
        )


class SniFilterClassifier:
    """TLS handshakes torn down on the server name while HTTP passes.

    SNI-based filtering ("How India Censors the Web") never touches page
    content: the only evidence is the TLS-layer reset in the field view
    against a clean lab handshake.
    """

    name = "sni-filter"
    confidence = 0.85

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if record.field.outcome is not FetchOutcome.TLS_RESET:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.BLOCKED_SNI,
            confidence=self.confidence,
            evidence=(
                "TLS handshake reset on SNI in field; lab handshake "
                "completed"
            ),
        )

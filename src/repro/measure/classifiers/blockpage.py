"""Block-page similarity against the registry's §5 regex corpus.

§5: "Manual analysis identified regular expressions corresponding to the
vendors' block pages and automated analysis identified all URLs which
matched a given block page regular expression." The corpus comes from
the product registry's per-spec patterns and covers both branded and
structural signals, so detection degrades gracefully as vendors strip
branding (§2.2) — the structural patterns (deny-page paths, the 15871
port, cfauth redirects) survive cosmetic changes.

The matching engine lived in :mod:`repro.measure.blockpage_detect`
(which now shims onto this module); the classifier wraps it to emit a
fusion :class:`~repro.measure.verdict.Signal` instead of deciding the
verdict alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.measure.classifiers.record import PageRecord
from repro.measure.verdict import Detection, Signal, Verdict
from repro.net.fetch import FetchResult
from repro.products.registry import (
    CompiledBlockPattern as BlockPagePattern,
    default_registry,
)


def default_patterns() -> Sequence[BlockPagePattern]:
    """The §5 regex corpus for the paper's default products."""
    return default_registry().block_page_patterns()


class BlockPagePatternMatcher:
    """Matches a fetch result against the block-page regex corpus.

    Generic proxy residue (Via / Via-Proxy headers) is deliberately NOT
    block evidence: proxy appliances stamp those on every forwarded
    response, censored or not (that residue is what the Netalyzr-style
    fingerprinting in :mod:`repro.measure.netalyzr` reads instead).
    """

    def __init__(
        self, patterns: Optional[Sequence[BlockPagePattern]] = None
    ) -> None:
        self._patterns = list(
            default_patterns() if patterns is None else patterns
        )

    @classmethod
    def for_products(
        cls, products: Optional[Sequence[str]] = None
    ) -> "BlockPagePatternMatcher":
        """A matcher over the registry corpus for a product selection."""
        return cls(default_registry().block_page_patterns(products))

    def without_branded_patterns(self) -> "BlockPagePatternMatcher":
        """A matcher limited to structural signals (evasion studies)."""
        return type(self)([p for p in self._patterns if not p.branded])

    def detect(self, result: FetchResult) -> Optional[Detection]:
        """Attribute a fetch to a vendor's block flow, if any pattern hits.

        Every hop is inspected — deny flows are redirect chains, and the
        telltale strings often live in the *first* hop's Location header
        rather than the final page.
        """
        votes: Dict[str, List[str]] = {}
        for hop in result.hops:
            response = hop.response
            headers_text = f"{response.status_line()}\n{response.headers.as_text()}"
            body_text = response.body
            for pattern in self._patterns:
                if pattern.scope == "headers":
                    haystacks = [headers_text]
                elif pattern.scope == "body":
                    haystacks = [body_text]
                else:
                    haystacks = [headers_text, body_text]
                if any(pattern.pattern.search(h) for h in haystacks):
                    votes.setdefault(pattern.vendor, []).append(
                        pattern.pattern.pattern
                    )
            # Request URLs matter too: after following a deny redirect the
            # final request path contains webadmin/deny or blockpage.cgi.
            # Only *structural* (non-branded) patterns apply here — a
            # vendor's own hostname (denypagetests.netsweeper.com) must
            # not read as a block page.
            request_url = str(hop.request.url)
            for pattern in self._patterns:
                if (
                    pattern.scope == "any"
                    and not pattern.branded
                    and pattern.pattern.search(request_url)
                ):
                    votes.setdefault(pattern.vendor, []).append(
                        pattern.pattern.pattern
                    )
        if not votes:
            return None
        # Most distinct patterns wins; ties break lexicographically by
        # vendor name so the verdict never depends on corpus order.
        best_vendor = min(votes, key=lambda v: (-len(set(votes[v])), v))
        return Detection(best_vendor, sorted(set(votes[best_vendor])))


class BlockPageClassifier:
    """The least ambiguous evidence the paper uses: an explicit block page.

    Fires only on a completed field exchange; a vendor pattern match is
    near-certain, so the confidence outranks any stack of circumstantial
    content signals at default fusion weights.
    """

    name = "blockpage"
    confidence = 0.95

    def __init__(
        self, matcher: Optional[BlockPagePatternMatcher] = None
    ) -> None:
        self.matcher = matcher or BlockPagePatternMatcher()

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if not record.field.ok:
            return None
        detection = self.matcher.detect(record.field_result)
        if detection is None:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.BLOCKED_BLOCKPAGE,
            confidence=self.confidence,
            evidence=(
                f"{detection.vendor} block flow: "
                f"{len(detection.matched)} pattern(s) matched"
            ),
            detection=detection,
        )

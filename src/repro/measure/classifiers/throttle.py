"""Throttling detection via field/lab timing deltas.

Timings in the page record come from the world's deterministic latency
model (per-hop base cost plus any on-path device delay), never from
wall-clock measurement or chaos-plan noise — so a throttling signal is a
pure function of what middleboxes actually did to the flow.
"""

from __future__ import annotations

from typing import Optional

from repro.measure.classifiers.record import PageRecord
from repro.measure.verdict import Signal, Verdict

#: The field fetch must be at least this many times slower than the lab
#: fetch, AND slower by at least the absolute floor, before throttling
#: is claimed. Redirect-chain length differences alone (a few base hop
#: costs) can never clear the floor.
RATIO_THRESHOLD = 3.0
ABSOLUTE_FLOOR_MS = 500.0


class ThrottlingClassifier:
    """Soft censorship: the page arrives, but pathologically slowly."""

    name = "throttle"
    confidence = 0.7

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if not record.field.ok or not record.lab.ok:
            return None
        field_ms = record.field.elapsed_ms
        lab_ms = record.lab.elapsed_ms
        if field_ms <= 0 or lab_ms < 0:
            return None
        delta = field_ms - lab_ms
        if delta < ABSOLUTE_FLOOR_MS:
            return None
        if lab_ms > 0 and field_ms / lab_ms < RATIO_THRESHOLD:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.THROTTLED,
            confidence=self.confidence,
            evidence=(
                f"field {field_ms:.0f}ms vs lab {lab_ms:.0f}ms "
                f"(+{delta:.0f}ms)"
            ),
        )

"""Content classifiers: status-code anomaly and page-length/structure delta.

Both require a completed field exchange and a healthy lab view: they
compare what the two vantages *saw*, the §4.1 field/lab differential.
"""

from __future__ import annotations

from typing import Optional

from repro.measure.classifiers.record import PageRecord
from repro.measure.verdict import Signal, Verdict

#: Word-overlap floor below which two differently-titled pages count as
#: different documents — the legacy comparator's Jaccard threshold.
DIVERGENT_JACCARD = 0.4

#: Stricter overlap floor applied when the titles *match*: a censorship
#: page that spoofs the origin's title (HTTP-200 plain block pages) still
#: shares almost no body text with the real page, while benign A/B copy
#: variations share most of it.
SPOOFED_TITLE_JACCARD = 0.3


class StatusAnomalyClassifier:
    """An error status the lab does not see.

    An unexplained field-side 403/451/5xx against a lab 200 is what a
    fully unbranded block page looks like at the status line (§2.2,
    §6.1).
    """

    name = "status-anomaly"
    confidence = 0.7

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if not record.field.ok:
            return None
        field_status = record.field.status or 0
        lab_status = record.lab.status or 0
        if field_status < 400 or lab_status >= 400:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.BLOCKED_UNATTRIBUTED,
            confidence=self.confidence,
            evidence=f"field HTTP {field_status} vs lab {lab_status}",
        )


class PageDeltaClassifier:
    """The field saw a different document than the lab did.

    Both views fetched the SAME URL, so heavy divergence in body words
    and page structure means an interposed page — e.g. Netsweeper's
    HTTP-200 deny page, or a plain censorship page that even spoofs the
    origin's title. Title equality narrows but never ends the analysis:
    a spoofed title with an alien body still fires (the case the legacy
    title short-circuit provably missed).
    """

    name = "page-delta"
    divergent_confidence = 0.75
    spoofed_confidence = 0.7

    def classify(self, record: PageRecord) -> Optional[Signal]:
        if not record.field.ok or not record.lab.ok:
            return None
        jaccard = record.word_jaccard()
        field_title = record.field.title
        lab_title = record.lab.title
        if field_title and lab_title:
            # Both views fetched the SAME URL, so differing titles are
            # decisive divergence (the legacy rule, kept verbatim).
            if field_title != lab_title:
                return Signal(
                    classifier=self.name,
                    verdict=Verdict.BLOCKED_UNATTRIBUTED,
                    confidence=self.divergent_confidence,
                    evidence=(
                        "field content differs from lab (title "
                        f"{field_title!r} vs {lab_title!r}, word overlap "
                        f"{jaccard:.2f})"
                    ),
                )
            # Matching titles narrow but do not end the analysis: a
            # spoofed-title censorship page still has an alien body.
            if jaccard >= SPOOFED_TITLE_JACCARD:
                return None
            return Signal(
                classifier=self.name,
                verdict=Verdict.BLOCKED_UNATTRIBUTED,
                confidence=self.spoofed_confidence,
                evidence=(
                    "title matches but body diverges "
                    f"(word overlap {jaccard:.2f}, structure overlap "
                    f"{record.tag_jaccard():.2f}, length ratio "
                    f"{record.length_ratio():.2f})"
                ),
            )
        if jaccard >= DIVERGENT_JACCARD:
            return None
        return Signal(
            classifier=self.name,
            verdict=Verdict.BLOCKED_UNATTRIBUTED,
            confidence=self.divergent_confidence,
            evidence=(
                f"field content differs from lab (word overlap "
                f"{jaccard:.2f}, length ratio {record.length_ratio():.2f})"
            ),
        )

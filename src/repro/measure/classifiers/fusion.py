"""Deterministic weighted fusion of classifier signals.

``fuse`` is a pure function from a bag of signals to a
:class:`~repro.measure.verdict.Comparison`: per-verdict scores combine
signal confidences noisy-or style (two independent weak signals for the
same verdict reinforce each other, but never exceed certainty), the
highest score wins, and *all* ties resolve by the fixed verdict
severity order and then by classifier name — never by signal arrival
order, so permuting the input changes nothing.

Two safety bands preserve the chaos invariant (injected faults may
degrade a verdict toward INSUFFICIENT, never manufacture one):

- a winner scoring below ``insufficient_floor`` yields INSUFFICIENT —
  weak circumstantial evidence is "we do not know", not a claim; and
- any inconclusive-filter signal (CDN captcha, seized domain, ISP
  portal) demotes a blocked winner to INSUFFICIENT outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.measure.classifiers.blockpage import (
    BlockPageClassifier,
    BlockPagePatternMatcher,
)
from repro.measure.classifiers.content import (
    PageDeltaClassifier,
    StatusAnomalyClassifier,
)
from repro.measure.classifiers.filters import default_filters
from repro.measure.classifiers.network import (
    DnsTamperingClassifier,
    ResetTimeoutClassifier,
    RstInjectionClassifier,
    SniFilterClassifier,
)
from repro.measure.classifiers.record import PageRecord
from repro.measure.classifiers.throttle import ThrottlingClassifier
from repro.measure.verdict import (
    Comparison,
    Signal,
    Verdict,
    severity_rank,
)
from repro.net.fetch import FetchOutcome, FetchResult

#: The paper-default per-classifier weights. All 1.0: each classifier's
#: own confidence calibration already encodes how decisive its evidence
#: is (an explicit block page at 0.95 outranks any default stack of
#: circumstantial content signals). Pinned explicitly so a policy change
#: is a visible diff, not an accident.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "blockpage": 1.0,
    "dns-tampering": 1.0,
    "rst-timeout": 1.0,
    "rst-injection": 1.0,
    "sni-filter": 1.0,
    "status-anomaly": 1.0,
    "page-delta": 1.0,
    "throttle": 1.0,
    "cdn-captcha": 1.0,
    "seized-domain": 1.0,
    "isp-login-portal": 1.0,
}


@dataclass(frozen=True)
class FusionPolicy:
    """Tunable fusion knobs; the defaults pin the paper's behavior."""

    weights: Dict[str, float] = dataclass_field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    #: Winning scores below this band yield INSUFFICIENT: weak evidence
    #: must degrade to "we do not know", never to a censorship claim.
    insufficient_floor: float = 0.3

    def weight(self, classifier: str) -> float:
        return self.weights.get(classifier, 1.0)


DEFAULT_POLICY = FusionPolicy()


def _canonical_order(signals: Iterable[Signal]) -> Tuple[Signal, ...]:
    """A deterministic signal order independent of arrival order."""
    return tuple(
        sorted(
            signals,
            key=lambda s: (s.classifier, s.verdict.value, -s.confidence),
        )
    )


def fuse(
    signals: Sequence[Signal], policy: Optional[FusionPolicy] = None
) -> Comparison:
    """Combine signals into the final comparison (pure, order-invariant).

    INSUFFICIENT-verdict signals are demotion evidence from the
    inconclusive filters: they never win on score, but any one of them
    forces a blocked winner down to INSUFFICIENT.
    """
    policy = policy or DEFAULT_POLICY
    ordered = _canonical_order(signals)
    demotions = [s for s in ordered if s.verdict is Verdict.INSUFFICIENT]
    votes = [s for s in ordered if s.verdict is not Verdict.INSUFFICIENT]

    if not votes:
        if demotions:
            return Comparison(
                Verdict.INSUFFICIENT,
                note=demotions[0].evidence,
                confidence=max(s.confidence for s in demotions),
                signals=ordered,
            )
        return Comparison(Verdict.ACCESSIBLE, confidence=1.0)

    # Noisy-or per verdict, multiplied in canonical signal order so the
    # float result is bit-identical under input permutation.
    residual: Dict[Verdict, float] = {}
    for signal in votes:
        contribution = min(
            1.0, max(0.0, signal.confidence * policy.weight(signal.classifier))
        )
        residual[signal.verdict] = residual.get(signal.verdict, 1.0) * (
            1.0 - contribution
        )
    scores = {verdict: 1.0 - r for verdict, r in residual.items()}

    winner = min(
        scores,
        key=lambda v: (-scores[v], severity_rank(v), v.value),
    )
    score = scores[winner]
    # The winner's strongest signal carries the attribution and the
    # note; equal strengths resolve by classifier name.
    primary = min(
        (s for s in votes if s.verdict is winner),
        key=lambda s: (-s.confidence * policy.weight(s.classifier), s.classifier),
    )

    if score < policy.insufficient_floor:
        return Comparison(
            Verdict.INSUFFICIENT,
            note=(
                f"signals too weak for a verdict (best "
                f"{winner.value} at {score:.2f})"
            ),
            confidence=score,
            signals=ordered,
        )
    if demotions and winner.is_blocked:
        return Comparison(
            Verdict.INSUFFICIENT,
            note=(
                f"{winner.value} ({score:.2f}) demoted: "
                f"{demotions[0].evidence}"
            ),
            confidence=max(s.confidence for s in demotions),
            signals=ordered,
        )
    return Comparison(
        winner,
        detection=primary.detection,
        note=primary.evidence,
        confidence=score,
        signals=ordered,
    )


def default_classifiers(
    matcher: Optional[BlockPagePatternMatcher] = None,
    products: Optional[Sequence[str]] = None,
) -> Tuple[object, ...]:
    """The standard classifier set, in canonical order."""
    if matcher is None:
        matcher = (
            BlockPagePatternMatcher()
            if products is None
            else BlockPagePatternMatcher.for_products(products)
        )
    return (
        BlockPageClassifier(matcher),
        DnsTamperingClassifier(),
        ResetTimeoutClassifier(),
        RstInjectionClassifier(),
        SniFilterClassifier(),
        StatusAnomalyClassifier(),
        PageDeltaClassifier(),
        ThrottlingClassifier(),
    )


class VerdictEngine:
    """The evidence-based verdict path: record → classifiers → fusion.

    Replaces the legacy one-shot if-chain in ``measure/compare.py``.
    Two gates run before any classifier, mirroring the §4.1 preconditions:

    - an INFRA_FAILURE field result means the measurement itself failed
      (quarantine placeholder): INSUFFICIENT at zero confidence;
    - a failed control fetch means nothing can be said about censorship:
      SITE_DOWN.

    Everything else flows through the classifier set and ``fuse``.
    """

    def __init__(
        self,
        classifiers: Optional[Sequence[object]] = None,
        filters: Optional[Sequence[object]] = None,
        policy: Optional[FusionPolicy] = None,
        *,
        matcher: Optional[BlockPagePatternMatcher] = None,
        products: Optional[Sequence[str]] = None,
    ) -> None:
        self.classifiers = tuple(
            default_classifiers(matcher, products)
            if classifiers is None
            else classifiers
        )
        self.filters = tuple(
            default_filters() if filters is None else filters
        )
        self.policy = policy or DEFAULT_POLICY

    def compare(self, field: FetchResult, lab: FetchResult) -> Comparison:
        """Classify a field result given the lab's view of the same URL."""
        return self.classify(PageRecord.from_results(field, lab))

    def classify(self, record: PageRecord) -> Comparison:
        if record.field.outcome is FetchOutcome.INFRA_FAILURE:
            return Comparison(
                Verdict.INSUFFICIENT,
                note=record.field_result.error or "measurement failed",
                confidence=0.0,
            )
        if not record.lab_ok:
            # The control fetch failed: nothing can be said about
            # censorship.
            return Comparison(
                Verdict.SITE_DOWN,
                note=f"lab outcome {record.lab.outcome.value}",
                confidence=0.9,
            )
        signals = [
            signal
            for classifier in self.classifiers
            for signal in (classifier.classify(record),)
            if signal is not None
        ]
        signals.extend(
            signal
            for page_filter in self.filters
            for signal in (page_filter.applies(record),)
            if signal is not None
        )
        if not signals:
            if record.field.ok:
                return Comparison(Verdict.ACCESSIBLE, confidence=1.0)
            return Comparison(
                Verdict.ANOMALY,
                note=f"field outcome {record.field.outcome.value}",
                confidence=0.5,
            )
        return fuse(signals, self.policy)

"""Pluggable verdict classifiers with confidence fusion.

The evidence-based verdict path (modeled on Berkman's classifurlr):
every field/lab fetch pair becomes a structured
:class:`~repro.measure.classifiers.record.PageRecord`; a set of
independent classifiers each emit a
:class:`~repro.measure.verdict.Signal` (verdict, confidence, evidence);
inconclusive filters contribute demotion evidence; and a deterministic
weighted-fusion stage (:func:`~repro.measure.classifiers.fusion.fuse`)
produces the final :class:`~repro.measure.verdict.Comparison` with a
confidence score and the full per-signal breakdown.

:class:`VerdictEngine` is the front door; ``legacy_compare`` preserves
the old if-chain for the deprecation shims and baseline tests.
"""

from repro.measure.classifiers.blockpage import (
    BlockPageClassifier,
    BlockPagePatternMatcher,
    default_patterns,
)
from repro.measure.classifiers.content import (
    DIVERGENT_JACCARD,
    SPOOFED_TITLE_JACCARD,
    PageDeltaClassifier,
    StatusAnomalyClassifier,
)
from repro.measure.classifiers.filters import (
    CdnCaptchaFilter,
    IspLoginPortalFilter,
    SeizedDomainFilter,
    default_filters,
)
from repro.measure.classifiers.fusion import (
    DEFAULT_POLICY,
    DEFAULT_WEIGHTS,
    FusionPolicy,
    VerdictEngine,
    default_classifiers,
    fuse,
)
from repro.measure.classifiers.legacy import legacy_compare
from repro.measure.classifiers.network import (
    DnsTamperingClassifier,
    ResetTimeoutClassifier,
    RstInjectionClassifier,
    SniFilterClassifier,
)
from repro.measure.classifiers.record import PageRecord, PageView
from repro.measure.classifiers.throttle import ThrottlingClassifier
from repro.measure.verdict import (
    Comparison,
    Detection,
    Signal,
    Verdict,
    severity_rank,
)

__all__ = [
    "BlockPageClassifier",
    "BlockPagePatternMatcher",
    "CdnCaptchaFilter",
    "Comparison",
    "DEFAULT_POLICY",
    "DEFAULT_WEIGHTS",
    "DIVERGENT_JACCARD",
    "Detection",
    "DnsTamperingClassifier",
    "FusionPolicy",
    "IspLoginPortalFilter",
    "PageDeltaClassifier",
    "PageRecord",
    "PageView",
    "ResetTimeoutClassifier",
    "RstInjectionClassifier",
    "SPOOFED_TITLE_JACCARD",
    "SeizedDomainFilter",
    "Signal",
    "SniFilterClassifier",
    "StatusAnomalyClassifier",
    "ThrottlingClassifier",
    "Verdict",
    "VerdictEngine",
    "default_classifiers",
    "default_filters",
    "default_patterns",
    "fuse",
    "legacy_compare",
    "severity_rank",
]

"""Global and local URL test lists (§5).

"Two lists of URLs were tested in each country; a 'global list' of
internationally relevant content which is constant for all countries,
and a 'local list' of locally relevant content which is designed for
each country by regional experts ... Each of the URLs on these lists was
assigned to one of 40 content categories (e.g. 'human rights' or
'gambling') under four general themes: political, social, Internet tools
and conflict/security content."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.net.url import GENERIC_TLDS, Url
from repro.world.content import ContentClass
from repro.world.rng import derive_rng
from repro.world.world import World


class Theme(enum.Enum):
    """The four general themes of the ONI test lists."""

    POLITICAL = "political"
    SOCIAL = "social"
    INTERNET_TOOLS = "internet_tools"
    CONFLICT_SECURITY = "conflict_security"


class Table4Column(enum.Enum):
    """The six content columns of Table 4."""

    MEDIA_FREEDOM = "Media Freedom"
    HUMAN_RIGHTS = "Human Rights"
    POLITICAL_REFORM = "Political Reform"
    LGBT = "LGBT"
    RELIGIOUS_CRITICISM = "Religious Criticism"
    MINORITY_GROUPS = "Minority Groups and Religions"


@dataclass(frozen=True)
class ListCategory:
    """One of the 40 test-list content categories."""

    name: str
    theme: Theme
    content_classes: FrozenSet[ContentClass]
    table4_column: Optional[Table4Column] = None


def _cat(
    name: str,
    theme: Theme,
    classes: Sequence[ContentClass],
    column: Optional[Table4Column] = None,
) -> ListCategory:
    return ListCategory(name, theme, frozenset(classes), column)


#: The 40 content categories under four themes.
LIST_CATEGORIES: Sequence[ListCategory] = (
    # Political (11)
    _cat("Human Rights", Theme.POLITICAL, [ContentClass.HUMAN_RIGHTS],
         Table4Column.HUMAN_RIGHTS),
    _cat("Political Reform", Theme.POLITICAL, [ContentClass.POLITICAL_REFORM],
         Table4Column.POLITICAL_REFORM),
    _cat("Opposition Parties", Theme.POLITICAL,
         [ContentClass.POLITICAL_OPPOSITION], Table4Column.POLITICAL_REFORM),
    _cat("Media Freedom", Theme.POLITICAL, [ContentClass.MEDIA_FREEDOM],
         Table4Column.MEDIA_FREEDOM),
    _cat("Independent Media", Theme.POLITICAL,
         [ContentClass.INDEPENDENT_MEDIA], Table4Column.MEDIA_FREEDOM),
    _cat("Women's Rights", Theme.POLITICAL, [ContentClass.WOMENS_RIGHTS],
         Table4Column.HUMAN_RIGHTS),
    _cat("Minority Groups", Theme.POLITICAL, [ContentClass.MINORITY_GROUPS],
         Table4Column.MINORITY_GROUPS),
    _cat("Religious Criticism", Theme.POLITICAL,
         [ContentClass.RELIGIOUS_CRITICISM], Table4Column.RELIGIOUS_CRITICISM),
    _cat("Minority Faiths", Theme.POLITICAL, [ContentClass.MINORITY_RELIGION],
         Table4Column.MINORITY_GROUPS),
    _cat("Foreign Relations", Theme.POLITICAL, [ContentClass.GOVERNMENT]),
    _cat("Political Satire", Theme.POLITICAL,
         [ContentClass.POLITICAL_OPPOSITION], Table4Column.POLITICAL_REFORM),
    # Social (14)
    _cat("Pornography", Theme.SOCIAL, [ContentClass.PORNOGRAPHY]),
    _cat("Nudity", Theme.SOCIAL, [ContentClass.ADULT_IMAGES]),
    _cat("LGBT", Theme.SOCIAL, [ContentClass.LGBT], Table4Column.LGBT),
    _cat("Dating", Theme.SOCIAL, [ContentClass.DATING]),
    _cat("Gambling", Theme.SOCIAL, [ContentClass.GAMBLING]),
    _cat("Alcohol and Drugs", Theme.SOCIAL, [ContentClass.ALCOHOL_DRUGS]),
    _cat("Health", Theme.SOCIAL, [ContentClass.HEALTH]),
    _cat("Entertainment", Theme.SOCIAL, [ContentClass.ENTERTAINMENT]),
    _cat("Music and Culture", Theme.SOCIAL, [ContentClass.ENTERTAINMENT]),
    _cat("Sports", Theme.SOCIAL, [ContentClass.SPORTS]),
    _cat("Shopping", Theme.SOCIAL, [ContentClass.SHOPPING]),
    _cat("Social Networking", Theme.SOCIAL, [ContentClass.SOCIAL_MEDIA]),
    _cat("Mainstream Religion", Theme.SOCIAL,
         [ContentClass.RELIGION_MAINSTREAM]),
    _cat("Education", Theme.SOCIAL, [ContentClass.EDUCATION]),
    # Internet tools (8)
    _cat("Anonymizers and Proxies", Theme.INTERNET_TOOLS,
         [ContentClass.PROXY_ANONYMIZER]),
    _cat("VPN and Circumvention", Theme.INTERNET_TOOLS,
         [ContentClass.VPN_TOOLS]),
    _cat("Translation", Theme.INTERNET_TOOLS, [ContentClass.TRANSLATION]),
    _cat("Search Engines", Theme.INTERNET_TOOLS, [ContentClass.SEARCH_ENGINE]),
    _cat("Web Mail", Theme.INTERNET_TOOLS, [ContentClass.EMAIL_PROVIDER]),
    _cat("Hosting and Blogging", Theme.INTERNET_TOOLS,
         [ContentClass.HOSTING_SERVICE]),
    _cat("File Sharing", Theme.INTERNET_TOOLS, [ContentClass.TECHNOLOGY]),
    _cat("Internet Telephony", Theme.INTERNET_TOOLS,
         [ContentClass.TECHNOLOGY]),
    # Conflict / security (7)
    _cat("Militant Groups", Theme.CONFLICT_SECURITY, [ContentClass.MILITANT]),
    _cat("Weapons", Theme.CONFLICT_SECURITY, [ContentClass.WEAPONS]),
    _cat("Hacking and Malware", Theme.CONFLICT_SECURITY,
         [ContentClass.MALWARE]),
    _cat("Phishing and Fraud", Theme.CONFLICT_SECURITY,
         [ContentClass.PHISHING]),
    _cat("Armed Conflict News", Theme.CONFLICT_SECURITY, [ContentClass.NEWS]),
    _cat("Security Services", Theme.CONFLICT_SECURITY,
         [ContentClass.GOVERNMENT]),
    _cat("Extremism", Theme.CONFLICT_SECURITY, [ContentClass.MILITANT]),
)

assert len(LIST_CATEGORIES) == 40, len(LIST_CATEGORIES)

CATEGORY_BY_NAME: Dict[str, ListCategory] = {
    category.name: category for category in LIST_CATEGORIES
}


@dataclass(frozen=True)
class TestListEntry:
    __test__ = False  # not a pytest collectable despite the name

    url: Url
    category: ListCategory

    @property
    def theme(self) -> Theme:
        return self.category.theme


@dataclass
class TestList:
    """A named URL list (the global list or one country's local list)."""

    __test__ = False  # not a pytest collectable despite the name

    name: str
    entries: List[TestListEntry] = field(default_factory=list)

    def urls(self) -> List[Url]:
        return [entry.url for entry in self.entries]

    def category_of(self, url: Url) -> Optional[ListCategory]:
        for entry in self.entries:
            if entry.url.host == url.host:
                return entry.category
        return None

    def by_theme(self, theme: Theme) -> List[TestListEntry]:
        return [entry for entry in self.entries if entry.theme is theme]

    def __len__(self) -> int:
        return len(self.entries)


def build_global_list(
    world: World, *, per_category: int = 3, rng_label: str = "global-list"
) -> TestList:
    """Sample internationally relevant sites (generic TLDs) per category."""
    return _build_list(
        world,
        name="global",
        per_category=per_category,
        rng_label=rng_label,
        predicate=lambda site: site.domain.rsplit(".", 1)[-1] in GENERIC_TLDS,
    )


def build_local_list(
    world: World,
    country_code: str,
    *,
    per_category: int = 2,
    rng_label: str = "local-list",
) -> TestList:
    """Sample locally relevant sites: ccTLD or operated in-country."""
    code = country_code.lower()

    def is_local(site) -> bool:
        if site.domain.endswith(f".{code}"):
            return True
        return (
            site.operator_country is not None
            and site.operator_country.code == code
        )

    return _build_list(
        world,
        name=f"local-{code}",
        per_category=per_category,
        rng_label=f"{rng_label}-{code}",
        predicate=is_local,
    )


def _build_list(world, name, per_category, rng_label, predicate) -> TestList:
    rng = derive_rng(world.seed, rng_label)
    sites_by_class: Dict[ContentClass, List] = {}
    for domain in sorted(world.websites):
        site = world.websites[domain]
        if predicate(site):
            sites_by_class.setdefault(site.content_class, []).append(site)
    test_list = TestList(name)
    for category in LIST_CATEGORIES:
        pool = []
        for content_class in sorted(category.content_classes, key=lambda c: c.value):
            pool.extend(sites_by_class.get(content_class, []))
        if not pool:
            continue
        count = min(per_category, len(pool))
        for site in rng.sample(pool, count):
            test_list.entries.append(
                TestListEntry(Url.for_host(site.domain), category)
            )
    return test_list

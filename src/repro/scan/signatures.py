"""Table 2: the identification keywords and validation signatures.

Everything here is derived from the product registry
(:mod:`repro.products.registry`); this module remains as the scanning
layer's view of Table 2 and as a compatibility surface for older
imports.  Two artifacts per product:

- **Shodan keywords** — the strings searched (with ccTLD expansion) to
  locate candidate installations. Deliberately *not conservative*
  (§3.1): false positives are expected and weeded out by validation.
- **WhatWeb signature** — the rule the validation engine applies against
  live probes of a candidate IP.

The vendor-name constants (``BLUE_COAT`` …) are deprecated here; import
them from :mod:`repro.products.registry` instead.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Sequence

from repro.products.bluecoat import bluecoat_signature
from repro.products.netsweeper import netsweeper_signature
from repro.products import registry as _registry
from repro.products.registry import default_registry
from repro.products.signatures import (
    Evidence,
    ProbeObservation,
    SignatureFn,
)
from repro.products.smartfilter import smartfilter_signature
from repro.products.websense import websense_signature

__all__ = [
    "DEFAULT_PROBE_PLAN",
    "Evidence",
    "PRODUCT_NAMES",
    "ProbeObservation",
    "SHODAN_KEYWORDS",
    "SignatureFn",
    "WHATWEB_SIGNATURES",
    "bluecoat_signature",
    "netsweeper_signature",
    "smartfilter_signature",
    "websense_signature",
]

_REGISTRY = default_registry()

PRODUCT_NAMES: Sequence[str] = _REGISTRY.default_names()

#: Table 2, column "Shodan keywords".
SHODAN_KEYWORDS: Dict[str, List[str]] = _REGISTRY.shodan_keywords()

#: Table 2, column "WhatWeb signature".
WHATWEB_SIGNATURES: Dict[str, SignatureFn] = _REGISTRY.whatweb_signatures()

#: Probe plan: the (port, path) pairs WhatWeb requests on a candidate IP.
DEFAULT_PROBE_PLAN: Sequence = _REGISTRY.probe_plan()

_DEPRECATED_CONSTANTS = {
    "BLUE_COAT": _registry.BLUE_COAT,
    "SMARTFILTER": _registry.SMARTFILTER,
    "NETSWEEPER": _registry.NETSWEEPER,
    "WEBSENSE": _registry.WEBSENSE,
}

# A long campaign resolves these shims thousands of times; warn once per
# constant per process so logs stay readable.
_warned: set = set()


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latch (test helper)."""
    _warned.clear()


def __getattr__(name: str) -> str:
    if name in _DEPRECATED_CONSTANTS:
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"repro.scan.signatures.{name} is deprecated; import it from "
                "repro.products.registry",
                DeprecationWarning,
                stacklevel=2,
            )
        return _DEPRECATED_CONSTANTS[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

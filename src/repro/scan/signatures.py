"""Table 2: the identification keywords and validation signatures.

Two artifacts per product:

- **Shodan keywords** — the strings searched (with ccTLD expansion) to
  locate candidate installations. Deliberately *not conservative*
  (§3.1): false positives are expected and weeded out by validation.
- **WhatWeb signature** — the rule the validation engine applies against
  live probes of a candidate IP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.net.http import HttpResponse

BLUE_COAT = "Blue Coat"
SMARTFILTER = "McAfee SmartFilter"
NETSWEEPER = "Netsweeper"
WEBSENSE = "Websense"

PRODUCT_NAMES: Sequence[str] = (BLUE_COAT, SMARTFILTER, NETSWEEPER, WEBSENSE)

#: Table 2, column "Shodan keywords".
SHODAN_KEYWORDS: Dict[str, List[str]] = {
    BLUE_COAT: ["proxysg", "cfru="],
    SMARTFILTER: ['"mcafee web gateway"', '"url blocked"'],
    NETSWEEPER: ["netsweeper", "webadmin", "webadmin/deny", "8080/webadmin/"],
    WEBSENSE: ["blockpage.cgi", '"gateway websense"'],
}


@dataclass
class ProbeObservation:
    """One WhatWeb probe: the response (if any) at (port, path)."""

    port: int
    path: str
    response: Optional[HttpResponse]


@dataclass
class Evidence:
    """Why a signature matched: the observation kind and the detail."""

    kind: str  # header | title | body | location | realm
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


SignatureFn = Callable[[List[ProbeObservation]], List[Evidence]]


def _header_contains(
    observations: List[ProbeObservation], header: str, needle: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        for value in obs.response.headers.get_all(header):
            if needle.lower() in value.lower():
                evidence.append(Evidence("header", f"{header}: {value}"))
    return evidence


def _header_present(
    observations: List[ProbeObservation], header: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        value = obs.response.headers.get(header)
        if value is not None:
            evidence.append(Evidence("header", f"{header}: {value}"))
    return evidence


def _title_contains(
    observations: List[ProbeObservation], needle: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        title = obs.response.html_title() or ""
        if needle.lower() in title.lower():
            evidence.append(Evidence("title", title))
    return evidence


def _body_contains(
    observations: List[ProbeObservation], needle: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        if needle.lower() in obs.response.body.lower():
            evidence.append(Evidence("body", needle))
    return evidence


def _location_matches(
    observations: List[ProbeObservation], predicate: Callable[[str], bool], label: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        location = obs.response.location
        if location and predicate(location):
            evidence.append(Evidence("location", f"{label}: {location}"))
    return evidence


def bluecoat_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """Built-in ProxySG detection OR a Location containing www.cfauth.com."""
    evidence: List[Evidence] = []
    for header in ("Server", "Via", "WWW-Authenticate"):
        evidence.extend(_header_contains(observations, header, "proxysg"))
        evidence.extend(_header_contains(observations, header, "blue coat"))
    evidence.extend(
        _location_matches(
            observations, lambda loc: "www.cfauth.com" in loc.lower(), "cfauth"
        )
    )
    return evidence


def smartfilter_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """A Via-Proxy header OR an HTML title containing McAfee Web Gateway."""
    evidence = _header_present(observations, "Via-Proxy")
    evidence.extend(_title_contains(observations, "mcafee web gateway"))
    return evidence


def netsweeper_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """Built-in detection: Netsweeper branding or the deny-page path.

    A bare ``/webadmin/`` redirect is NOT sufficient — plenty of router
    consoles use that path (the keyword search will surface them as
    candidates); validation demands Netsweeper-specific markers.
    """
    evidence = _body_contains(observations, "netsweeper")
    evidence.extend(_title_contains(observations, "netsweeper"))
    evidence.extend(
        _location_matches(
            observations,
            lambda loc: "/webadmin/deny" in loc.lower(),
            "deny-path",
        )
    )
    return evidence


def websense_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """A redirect to port 15871 with ws-session, or a Websense server banner."""
    evidence = _location_matches(
        observations,
        lambda loc: ":15871" in loc and "ws-session" in loc.lower(),
        "blockpage",
    )
    evidence.extend(_header_contains(observations, "Server", "websense"))
    return evidence


#: Table 2, column "WhatWeb signature".
WHATWEB_SIGNATURES: Dict[str, SignatureFn] = {
    BLUE_COAT: bluecoat_signature,
    SMARTFILTER: smartfilter_signature,
    NETSWEEPER: netsweeper_signature,
    WEBSENSE: websense_signature,
}

#: Probe plan: the (port, path) pairs WhatWeb requests on a candidate IP.
DEFAULT_PROBE_PLAN: Sequence = (
    (80, "/"),
    (443, "/"),
    (8080, "/"),
    (8080, "/webadmin/"),
    (9090, "/"),
    (15871, "/"),
    (15871, "/cgi-bin/blockpage.cgi"),
    (3128, "/"),
)

"""Scanning substrate: banners, Shodan-like index, census, WhatWeb."""

from repro.scan.banner import (
    BannerRecord,
    DEFAULT_SCAN_PORTS,
    grab_banner,
    scan_world,
)
from repro.scan.census import CensusDataset, run_census
from repro.scan.shodan import (
    DEFAULT_RESULT_CAP,
    PrematchTable,
    ShodanIndex,
    ShodanQueryLog,
    build_prematch,
    keyword_tokens,
)
from repro.products.registry import (
    BLUE_COAT,
    NETSWEEPER,
    SMARTFILTER,
    WEBSENSE,
)
from repro.scan.stream import (
    BatchJob,
    BatchResult,
    DEFAULT_BATCH_SIZE,
    SCAN_VANTAGE,
    ScanSummary,
    StreamingScan,
    scan_batch,
)
from repro.scan.signatures import (
    DEFAULT_PROBE_PLAN,
    Evidence,
    PRODUCT_NAMES,
    ProbeObservation,
    SHODAN_KEYWORDS,
    WHATWEB_SIGNATURES,
)
from repro.scan.whatweb import (
    ProductMatch,
    WhatWebEngine,
    WhatWebReport,
    world_probe,
)

__all__ = [
    "BLUE_COAT",
    "BannerRecord",
    "BatchJob",
    "BatchResult",
    "CensusDataset",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_PROBE_PLAN",
    "DEFAULT_RESULT_CAP",
    "DEFAULT_SCAN_PORTS",
    "Evidence",
    "SCAN_VANTAGE",
    "ScanSummary",
    "StreamingScan",
    "scan_batch",
    "NETSWEEPER",
    "PRODUCT_NAMES",
    "PrematchTable",
    "ProbeObservation",
    "ProductMatch",
    "SHODAN_KEYWORDS",
    "SMARTFILTER",
    "ShodanIndex",
    "ShodanQueryLog",
    "WEBSENSE",
    "WHATWEB_SIGNATURES",
    "WhatWebEngine",
    "WhatWebReport",
    "build_prematch",
    "grab_banner",
    "keyword_tokens",
    "run_census",
    "scan_world",
    "world_probe",
]

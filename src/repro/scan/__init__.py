"""Scanning substrate: banners, Shodan-like index, census, WhatWeb."""

from repro.scan.banner import (
    BannerRecord,
    DEFAULT_SCAN_PORTS,
    grab_banner,
    scan_world,
)
from repro.scan.census import CensusDataset, run_census
from repro.scan.shodan import DEFAULT_RESULT_CAP, ShodanIndex, ShodanQueryLog
from repro.products.registry import (
    BLUE_COAT,
    NETSWEEPER,
    SMARTFILTER,
    WEBSENSE,
)
from repro.scan.signatures import (
    DEFAULT_PROBE_PLAN,
    Evidence,
    PRODUCT_NAMES,
    ProbeObservation,
    SHODAN_KEYWORDS,
    WHATWEB_SIGNATURES,
)
from repro.scan.whatweb import (
    ProductMatch,
    WhatWebEngine,
    WhatWebReport,
    world_probe,
)

__all__ = [
    "BLUE_COAT",
    "BannerRecord",
    "CensusDataset",
    "DEFAULT_PROBE_PLAN",
    "DEFAULT_RESULT_CAP",
    "DEFAULT_SCAN_PORTS",
    "Evidence",
    "NETSWEEPER",
    "PRODUCT_NAMES",
    "ProbeObservation",
    "ProductMatch",
    "SHODAN_KEYWORDS",
    "SMARTFILTER",
    "ShodanIndex",
    "ShodanQueryLog",
    "WEBSENSE",
    "WHATWEB_SIGNATURES",
    "WhatWebEngine",
    "WhatWebReport",
    "grab_banner",
    "run_census",
    "scan_world",
    "world_probe",
]

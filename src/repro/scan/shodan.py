"""A Shodan-like banner search engine.

Models the properties of the real service that shaped the paper's
methodology (§3.1):

- keyword queries match as substrings over banner text and hostname;
- results per query are **capped**, which is exactly why the authors
  combined each keyword "with each of the two letter country-code
  top-level domains, to maximize the set of results";
- a ``country:xx`` token filters on the scanner's own (GeoIP-derived)
  country tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exec.cache import MemoCache
from repro.net.ip import Ipv4Address
from repro.scan.banner import BannerRecord

DEFAULT_RESULT_CAP = 100


@dataclass(frozen=True)
class PrematchTable:
    """Precomputed keyword-token matches for a fixed banner corpus.

    Signature matching is the CPU-bound half of a Shodan sweep: every
    query token is substring-checked against every banner. A prematch
    table moves that work to a fan-out stage — for each record, which
    of the known keyword ``tokens`` its banner contains — so queries
    become set lookups. Built by :func:`build_prematch`, consumed by
    :class:`ShodanIndex`; query semantics are byte-identical with or
    without one (the table is keyed on the exact ``matches_keyword``
    predicate).
    """

    tokens: frozenset
    matches: Dict[Tuple[int, int], Tuple[str, ...]]


def keyword_tokens(keywords: Iterable[str]) -> frozenset:
    """The lowered token universe of a set of query keywords."""
    tokens: Set[str] = set()
    for keyword in keywords:
        for token in _tokenize(keyword):
            tokens.add(token.lower())
    return frozenset(tokens)


def prematch_chunk(
    payload: Tuple[List[BannerRecord], Tuple[str, ...]],
) -> Dict[Tuple[int, int], Tuple[str, ...]]:
    """Match one record chunk against the token universe.

    Module-level and fed plain picklable data so a process-pool
    :class:`~repro.exec.executor.Executor` can run it.
    """
    records, tokens = payload
    matched: Dict[Tuple[int, int], Tuple[str, ...]] = {}
    for record in records:
        matched[(record.ip.value, record.port)] = tuple(
            token for token in tokens if record.matches_keyword(token)
        )
    return matched


def build_prematch(
    records: Iterable[BannerRecord],
    keywords: Iterable[str],
    executor,
    *,
    chunk_size: int = 256,
) -> PrematchTable:
    """Fan signature matching out over an executor (any backend).

    Chunks merge in submission order, but the result is a per-record
    mapping, so the table — and every query answered from it — is
    independent of worker count and backend.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    tokens = tuple(sorted(keyword_tokens(keywords)))
    pool = list(records)
    payloads = [
        (pool[start: start + chunk_size], tokens)
        for start in range(0, len(pool), chunk_size)
    ]
    matches: Dict[Tuple[int, int], Tuple[str, ...]] = {}
    for chunk in executor.map(prematch_chunk, payloads, label="prematch"):
        matches.update(chunk)
    return PrematchTable(tokens=frozenset(tokens), matches=matches)


@dataclass
class ShodanQueryLog:
    """Bookkeeping: queries issued and how many results each returned."""

    entries: List[Tuple[str, int]] = field(default_factory=list)

    def record(self, query: str, count: int) -> None:
        self.entries.append((query, count))

    @property
    def query_count(self) -> int:
        return len(self.entries)


class ShodanIndex:
    """Searchable index over banner records."""

    def __init__(
        self,
        records: Iterable[BannerRecord],
        *,
        result_cap: int = DEFAULT_RESULT_CAP,
        geolocate: Optional[Callable[[Ipv4Address], Optional[str]]] = None,
        query_cache: Optional[MemoCache] = None,
        prematch: Optional[PrematchTable] = None,
    ) -> None:
        """``geolocate`` overrides each record's country tag (e.g. with a
        MaxMind-style database including its errors); records the
        function cannot place keep their original tag.

        ``query_cache`` memoizes whole query result lists. A cache hit
        models *not issuing the API query again*, so it is answered
        without touching the query log — the paper counts queries
        actually sent to the service.

        ``prematch`` (see :func:`build_prematch`) answers keyword
        tokens from a precomputed table; tokens outside its universe
        fall back to direct substring matching.
        """
        self._records: List[BannerRecord] = []
        for record in records:
            if geolocate is not None:
                code = geolocate(record.ip)
                if code is not None:
                    record.country_code = code
            self._records.append(record)
        if result_cap <= 0:
            raise ValueError("result_cap must be positive")
        self.result_cap = result_cap
        self.log = ShodanQueryLog()
        self._query_cache = query_cache
        self._prematch = prematch

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[BannerRecord]:
        return list(self._records)

    def search(
        self, query: str, *, log: Optional[ShodanQueryLog] = None
    ) -> List[BannerRecord]:
        """Run one query; results are capped at ``result_cap``.

        Tokens: ``country:xx`` filters by country tag; ``port:N`` by
        port; every other token must appear as a substring of the
        banner. Quoted phrases ("mcafee web gateway") match as one
        token.

        ``log`` overrides the index-wide query log — parallel callers
        record into private logs and merge them back in task order so
        the combined log is independent of scheduling.
        """
        target_log = log if log is not None else self.log
        if self._query_cache is not None:
            if query in self._query_cache:
                # Served from cache: no query reaches the service, so
                # nothing is logged.
                return list(self._query_cache.get_or_compute(query, list))
            hits = self._execute(query)
            self._query_cache.get_or_compute(query, lambda: hits)
            target_log.record(query, len(hits))
            return list(hits)
        hits = self._execute(query)
        target_log.record(query, len(hits))
        return hits

    def _execute(self, query: str) -> List[BannerRecord]:
        tokens = _tokenize(query)
        hits: List[BannerRecord] = []
        for record in self._records:
            if all(self._matches(record, token) for token in tokens):
                hits.append(record)
                if len(hits) >= self.result_cap:
                    break
        return hits

    def _matches(self, record: BannerRecord, token: str) -> bool:
        prematch = self._prematch
        if prematch is not None:
            lowered = token.lower()
            if lowered in prematch.tokens:
                return lowered in prematch.matches.get(
                    (record.ip.value, record.port), ()
                )
        return _token_matches(record, token)

    def search_expanded(
        self,
        keyword: str,
        country_codes: Sequence[str],
        *,
        log: Optional[ShodanQueryLog] = None,
    ) -> List[BannerRecord]:
        """The paper's keyword x ccTLD expansion (§3.1).

        Runs the bare keyword plus one country-scoped query per code and
        unions the results, defeating the per-query cap.
        """
        seen: Set[Tuple[int, int]] = set()
        merged: List[BannerRecord] = []
        for query in [keyword] + [
            f"{keyword} country:{code}" for code in country_codes
        ]:
            for record in self.search(query, log=log):
                key = (record.ip.value, record.port)
                if key not in seen:
                    seen.add(key)
                    merged.append(record)
        return merged


def _tokenize(query: str) -> List[str]:
    tokens: List[str] = []
    rest = query.strip()
    while rest:
        if rest.startswith('"'):
            end = rest.find('"', 1)
            if end == -1:
                tokens.append(rest[1:])
                break
            tokens.append(rest[1:end])
            rest = rest[end + 1:].strip()
        else:
            piece, _, rest = rest.partition(" ")
            tokens.append(piece)
            rest = rest.strip()
    return [t for t in tokens if t]


def _token_matches(record: BannerRecord, token: str) -> bool:
    lowered = token.lower()
    if lowered.startswith("country:"):
        return record.country_code.lower() == lowered[len("country:"):]
    if lowered.startswith("port:"):
        value = lowered[len("port:"):]
        return value.isdigit() and record.port == int(value)
    return record.matches_keyword(token)

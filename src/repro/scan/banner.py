"""Banner grabbing: what an Internet-wide scanner records per service.

Shodan entries "consist of an IP address, along with meta-data and HTTP
headers observed when the IP address was accessed by the search engine"
(§3.1). A :class:`BannerRecord` captures exactly that: the status line,
headers, HTML title, and hostname — enough for keyword search, not a
full crawl.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exec.executor import Executor, TaskFailure, THREAD_BACKEND
from repro.exec.resilience import ResilientRunner
from repro.net.fetch import FetchOutcome
from repro.net.ip import Ipv4Address
from repro.net.url import Url
from repro.products.registry import default_registry
from repro.world.clock import SimTime
from repro.world.faults import corrupt_text
from repro.world.world import World

#: Ports a Shodan-style scanner probes: the common web set plus every
#: default product's distinctive ports (block-page services, webadmin
#: consoles) from the registry.
DEFAULT_SCAN_PORTS: Sequence[int] = default_registry().scan_ports()


@dataclass
class BannerRecord:
    """One (ip, port) observation from an Internet-wide scan."""

    ip: Ipv4Address
    port: int
    status_line: str
    headers_text: str
    html_title: str
    hostname: str
    observed_at: SimTime
    country_code: str = ""  # scanner-side geolocation tag (may be wrong)

    @property
    def banner_text(self) -> str:
        """The searchable text of this record."""
        return "\n".join(
            part
            for part in (
                self.status_line,
                self.headers_text,
                self.html_title,
                self.hostname,
            )
            if part
        )

    @property
    def _banner_lower(self) -> str:
        cached = getattr(self, "_banner_lower_cache", None)
        if cached is None:
            cached = self.banner_text.lower()
            object.__setattr__(self, "_banner_lower_cache", cached)
        return cached

    def matches_keyword(self, keyword: str) -> bool:
        return keyword.lower() in self._banner_lower


def grab_banner(
    world: World, ip: Ipv4Address, port: int
) -> Optional[BannerRecord]:
    """Probe one (ip, port) from the open Internet; None if nothing answers.

    The probe does not follow redirects: a scanner records the raw
    response, so Location headers (Netsweeper's ``/webadmin/`` redirect,
    Websense's ``blockpage.cgi``) appear verbatim in the banner.
    """
    host = world.host_at(ip)
    if host is None or port not in host.services:
        return None
    scheme = "https" if port in (443, 8443) else "http"
    url = Url(scheme, str(ip), port, "/")
    result = world.fetch(None, url, follow_redirects=False)
    if result.outcome is not FetchOutcome.OK or result.response is None:
        return None
    response = result.response
    country = world.country_of(ip)
    status_line = response.status_line()
    headers_text = response.headers.as_text()
    html_title = response.html_title() or ""
    corruption = world.faults.banner_corruption(str(ip), port)
    if corruption is not None:
        # A half-read socket or line noise damages the recorded text but
        # still yields an entry — the scanner indexes what it saw, and
        # keyword queries simply miss the mangled signature.
        status_line = corrupt_text(corruption, status_line)
        headers_text = corrupt_text(corruption, headers_text)
        html_title = corrupt_text(corruption, html_title)
    return BannerRecord(
        ip=ip,
        port=port,
        status_line=status_line,
        headers_text=headers_text,
        html_title=html_title,
        hostname=world.zone.reverse(ip) or "",
        observed_at=world.now,
        country_code=country.code if country else "",
    )


def scan_world(
    world: World,
    ports: Sequence[int] = DEFAULT_SCAN_PORTS,
    *,
    coverage: float = 1.0,
    coverage_salt: str = "scan",
    executor: Optional[Executor] = None,
    probe_latency: float = 0.0,
    resilience: Optional[ResilientRunner] = None,
    shards: Optional[int] = None,
) -> List[BannerRecord]:
    """Banner-grab every visible service in the world.

    ``coverage`` < 1 models a scanner that has only indexed part of the
    address space (Shodan's view is always partial); inclusion is a
    deterministic hash of (salt, ip) so repeated scans agree.

    Probing is read-only against the world, so ``executor`` fans the
    scan out over target hosts; per-host batches merge back in address
    order, keeping the record list identical at any worker count.
    ``probe_latency`` models the per-host network round trip.

    ``resilience`` wraps each probe with retry/quarantine (stage
    ``"scan"``) when the world runs under a fault plan; a probe whose
    retries are exhausted is quarantined and its record simply missing —
    scan coverage counters report the gap. No circuit breaker attaches
    here: the fan-out is unordered, and breaker state would then depend
    on scheduling.

    ``shards`` switches the fan-out to contiguous target chunks driven
    through :meth:`Executor.stream` — bounded in-flight work instead of
    one pending future per host, which is what keeps memory flat when
    the target list is large. Chunked or not, batches merge in address
    order, so the record list is identical either way. World objects
    cannot cross process boundaries, so sharded world scans require the
    thread backend; the process backend's home is
    :class:`repro.scan.stream.StreamingScan`.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be within [0, 1]")
    if shards is not None and shards < 1:
        raise ValueError("shards must be >= 1")
    targets: List[Ipv4Address] = []
    for ip_value in sorted(world.hosts):
        ip = Ipv4Address(ip_value)
        if coverage < 1.0 and not _covered(ip, coverage, coverage_salt):
            continue
        targets.append(ip)

    def scan_host(ip: Ipv4Address) -> List[BannerRecord]:
        if probe_latency:
            time.sleep(probe_latency)
        slow = world.faults.extra_latency("scanner", str(ip))
        if slow:
            time.sleep(slow)
        found: List[BannerRecord] = []
        for port in ports:
            if resilience is not None:
                outcome = resilience.call(
                    lambda port=port: grab_banner(world, ip, port),
                    stage="scan",
                    key=f"{ip}:{port}",
                )
                record = outcome.value if outcome.ok else None
            else:
                record = grab_banner(world, ip, port)
            if record is not None:
                found.append(record)
        return found

    if executor is None or executor.workers == 1:
        batches = [scan_host(ip) for ip in targets]
    elif shards is not None:
        if executor.backend != THREAD_BACKEND:
            raise ValueError(
                "sharded world scans require the thread backend "
                "(worlds are not picklable); use "
                "repro.scan.stream.StreamingScan for process-pool scans"
            )
        from repro.world.population import shard_bounds_for

        shard_count = min(shards, len(targets)) or 1

        def scan_chunk(bounds: tuple) -> List[List[BannerRecord]]:
            start, stop = bounds
            return [scan_host(ip) for ip in targets[start:stop]]

        batches = []
        for _index, outcome in executor.stream(
            scan_chunk,
            [
                shard_bounds_for(len(targets), shard_count, shard)
                for shard in range(shard_count)
            ],
            label="scan",
        ):
            if isinstance(outcome, TaskFailure):
                raise outcome
            batches.extend(outcome)
    else:
        batches = executor.map(scan_host, targets, label="scan")
    return [record for batch in batches for record in batch]


def _covered(ip: Ipv4Address, coverage: float, salt: str) -> bool:
    import hashlib

    digest = hashlib.sha256(f"{salt}:{ip.value}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return fraction < coverage

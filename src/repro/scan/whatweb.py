"""WhatWeb-style fingerprinting of candidate installations.

§3.1's validation step: "we use the WhatWeb profiling tool to confirm
the product that is installed on a given host", using built-in plugins
where they exist and custom header signatures otherwise (Table 2). The
engine probes a live IP over a small (port, path) plan and applies every
product signature; a host may legitimately match several products
(stacked appliances, §4.5).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.net.fetch import FetchOutcome
from repro.net.http import HttpResponse
from repro.net.ip import Ipv4Address
from repro.net.url import Url
from repro.scan.signatures import (
    DEFAULT_PROBE_PLAN,
    Evidence,
    ProbeObservation,
    SignatureFn,
    WHATWEB_SIGNATURES,
)
from repro.world.world import World

# A probe function fetches (ip, port, path) and returns the raw response.
ProbeFn = Callable[[Ipv4Address, int, str], Optional[HttpResponse]]


@dataclass
class ProductMatch:
    product: str
    evidence: List[Evidence]


@dataclass
class WhatWebReport:
    """Everything WhatWeb concluded about one IP."""

    ip: Ipv4Address
    observations: List[ProbeObservation]
    matches: List[ProductMatch] = field(default_factory=list)

    @property
    def products(self) -> List[str]:
        return [match.product for match in self.matches]

    def matched(self, product: str) -> bool:
        return product in self.products


def world_probe(world: World) -> ProbeFn:
    """A probe function backed by open-Internet fetches in ``world``."""

    def probe(ip: Ipv4Address, port: int, path: str) -> Optional[HttpResponse]:
        scheme = "https" if port in (443, 8443) else "http"
        url = Url(scheme, str(ip), port, path)
        result = world.fetch(None, url, follow_redirects=False)
        if result.outcome is not FetchOutcome.OK:
            return None
        return result.response

    return probe


class WhatWebEngine:
    """Signature engine: probe a host and report matching products."""

    def __init__(
        self,
        probe: ProbeFn,
        signatures: Optional[Dict[str, SignatureFn]] = None,
        probe_plan: Sequence = DEFAULT_PROBE_PLAN,
    ) -> None:
        self._probe = probe
        self._signatures = dict(signatures or WHATWEB_SIGNATURES)
        self._probe_plan = list(probe_plan)
        self.probe_count = 0
        # identify() runs concurrently under the parallel executor; the
        # probe counter must not lose increments to racing threads.
        self._count_lock = threading.Lock()

    def add_signature(self, product: str, signature: SignatureFn) -> None:
        """Register a custom signature (the paper created several)."""
        self._signatures[product] = signature

    def identify(self, ip: Ipv4Address) -> WhatWebReport:
        """Probe one IP and apply every signature."""
        observations: List[ProbeObservation] = []
        for port, path in self._probe_plan:
            with self._count_lock:
                self.probe_count += 1
            response = self._probe(ip, port, path)
            observations.append(ProbeObservation(port, path, response))
        report = WhatWebReport(ip, observations)
        for product, signature in self._signatures.items():
            evidence = signature(observations)
            if evidence:
                report.matches.append(ProductMatch(product, evidence))
        return report

"""Internet-Census-style full sweep.

§3.1 notes the authors were "working towards applying [the methodology]
on a larger scale with the Internet Census data". Where Shodan is a
partial, query-capped index, a census sweep enumerates everything: full
coverage, no result cap, and the consumer filters locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.scan.banner import DEFAULT_SCAN_PORTS, BannerRecord, scan_world
from repro.world.world import World


@dataclass
class CensusDataset:
    """A complete banner sweep of the world at one point in time."""

    records: List[BannerRecord]

    def __len__(self) -> int:
        return len(self.records)

    def grep(self, keyword: str) -> List[BannerRecord]:
        """Uncapped local filtering over the full dataset."""
        return [r for r in self.records if r.matches_keyword(keyword)]

    def by_port(self, port: int) -> List[BannerRecord]:
        return [r for r in self.records if r.port == port]


def run_census(
    world: World, ports: Sequence[int] = DEFAULT_SCAN_PORTS
) -> CensusDataset:
    """Sweep the entire visible world (coverage 1.0)."""
    return CensusDataset(scan_world(world, ports, coverage=1.0))

"""Streaming batched scan over a sharded synthetic host population.

The paper's identification step (§3) sweeps Shodan's banner corpus for
product keywords, then validates candidates to reject keyword
collisions (§3.2). :mod:`repro.scan.banner` reproduces that against the
~2k-host simulated world; this module is the same pipeline rebuilt for
*internet-scale* populations — millions of lazily generated hosts from
:class:`repro.world.population.ShardedPopulation` — without ever
materializing the population or the result set in memory:

- the host space is cut into contiguous **batches** (shard-aligned, so
  any shard subset scans independently);
- each batch is a picklable :class:`BatchJob` executed by the
  module-level :func:`scan_batch` — generate hosts, apply the world's
  :class:`~repro.world.faults.FaultPlan` (connection faults drop hosts,
  corruption degrades banners), keyword-match against the product
  registry's Shodan signatures, validate console candidates;
- batches flow through :meth:`repro.exec.executor.Executor.stream`
  under a bounded in-flight window (backpressure), and matched rows are
  appended straight to a :class:`repro.store.segments.EpochStream`
  segment in **submission order**.

Because batch results merge in submission order and every host is a
pure function of ``(seed, index)``, the committed epoch id is invariant
to worker count, backend (thread/process) and shard count — the
determinism contract the integration matrix pins down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.exec.checkpoint import fingerprint as identity_fingerprint
from repro.exec.executor import Executor, StreamStats, TaskFailure
from repro.world.faults import FaultPlan, corrupt_text

if TYPE_CHECKING:  # the store package imports analysis/core; stay acyclic
    from repro.store.store import ResultsStore
from repro.world.population import (
    CONSOLE_MARKER,
    ShardedPopulation,
    ShardedPopulationConfig,
)

#: Vantage label scan-side faults are addressed by (the paper scans
#: from a measurement network, not an in-country ISP vantage).
SCAN_VANTAGE = "scanner"

#: Default hosts per batch: large enough that per-batch overhead
#: (pickling, one simulated round-trip) amortizes, small enough that a
#: bounded window of batches keeps memory flat.
DEFAULT_BATCH_SIZE = 1000


def _signature_table(
    products: Optional[Tuple[str, ...]],
) -> Tuple[Tuple[str, str], ...]:
    """Flattened ``(lowered keyword, product)`` pairs in registry order.

    First match wins, so ordering must be deterministic — registry
    order is, and it is identical in every worker process.
    """
    from repro.products.registry import default_registry

    pairs: List[Tuple[str, str]] = []
    for spec in default_registry().resolve(
        None if products is None else list(products)
    ):
        for keyword in spec.shodan_keywords:
            pairs.append((keyword.strip('"').lower(), spec.name))
    return tuple(pairs)


def _ip_string(value: int) -> str:
    return (
        f"{(value >> 24) & 255}.{(value >> 16) & 255}."
        f"{(value >> 8) & 255}.{value & 255}"
    )


@dataclass(frozen=True)
class BatchJob:
    """One contiguous index range of the population (picklable)."""

    seed: int
    config: ShardedPopulationConfig
    start: int
    stop: int
    latency: float = 0.0
    fault_plan: Optional[FaultPlan] = None

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class BatchResult:
    """What one batch scan observed (picklable, submission-mergeable)."""

    start: int
    stop: int
    scanned: int
    missed: int
    decoys: int
    rows: Tuple[Dict[str, Any], ...]


def scan_batch(job: BatchJob) -> BatchResult:
    """Scan one batch of hosts; module-level so process pools can run it.

    Mirrors §3's pipeline per host: banner grab (with injected
    connection faults and corruption), keyword match against the
    registry's Shodan signatures, then validation — a matched banner
    must carry the product console marker or it is dismissed as a
    keyword collision (§3.2's false positives).
    """
    population = ShardedPopulation(job.seed, job.config)
    signatures = _signature_table(job.config.products)
    plan = job.fault_plan
    rows: List[Dict[str, Any]] = []
    missed = 0
    decoys = 0
    for index in range(job.start, job.stop):
        _, ip, port, country, asn, banner, _product, _kw = (
            population.raw_at(index)
        )
        ip_str = _ip_string(ip)
        if plan is not None:
            if plan.connection_fault(SCAN_VANTAGE, ip_str) is not None:
                missed += 1
                continue
            corruption = plan.banner_corruption(ip_str, port)
            if corruption is not None:
                banner = corrupt_text(corruption, banner)
        lowered = banner.lower()
        matched: Optional[Tuple[str, str]] = None
        for keyword, product in signatures:
            if keyword in lowered:
                matched = (keyword, product)
                break
        if matched is None:
            continue
        if CONSOLE_MARKER not in lowered:
            decoys += 1
            continue
        keyword, product = matched
        rows.append(
            {
                "ip": ip_str,
                "port": port,
                "product": product,
                "country": country,
                "asn": asn,
                "as_name": f"AS{asn}",
                "org_name": None,
                "org_kind": None,
                "evidence": [f"keyword:{keyword}"],
            }
        )
    if job.latency > 0.0:
        # One simulated network round-trip per batch — the wall-clock
        # cost threads/processes overlap, exactly like real banner
        # grabs against distinct hosts.
        time.sleep(job.latency)
    return BatchResult(
        start=job.start,
        stop=job.stop,
        scanned=job.stop - job.start,
        missed=missed,
        decoys=decoys,
        rows=tuple(rows),
    )


@dataclass(frozen=True)
class ShardScanResult:
    """Everything one shard contributed, in index order (picklable).

    This is the distributed unit of work: a coordination worker leasing
    shard *k* produces exactly this, and because every host is a pure
    function of ``(seed, index)``, any worker that scans shard *k*
    under the same scan identity produces a byte-identical row tuple —
    which is what makes duplicate completions discardable and the
    reconciled epoch id equal to the single-machine one.
    """

    shard: int
    start: int
    stop: int
    scanned: int
    missed: int
    decoys: int
    batches: int
    rows: Tuple[Dict[str, Any], ...]


@dataclass(frozen=True)
class ScanSummary:
    """Outcome of one streamed identify pass."""

    epoch_id: str
    created: bool
    hosts: int
    scanned: int
    missed: int
    decoys: int
    hits: int
    batches: int
    peak_inflight: int
    elapsed_seconds: float

    @property
    def hosts_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.hosts / self.elapsed_seconds

    def to_document(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch_id,
            "created": self.created,
            "hosts": self.hosts,
            "scanned": self.scanned,
            "missed": self.missed,
            "decoys": self.decoys,
            "hits": self.hits,
            "batches": self.batches,
            "peak_inflight": self.peak_inflight,
            "elapsed_seconds": self.elapsed_seconds,
            "hosts_per_second": self.hosts_per_second,
        }


class StreamingScan:
    """A full identify pass: population → batches → executor → store.

    The scan's identity (hence the committed epoch id) is a function of
    the population identity and the fault plan only — batch size,
    window, worker count and backend are execution knobs and excluded,
    which is what makes the §3 sweep reproducible at any parallelism.
    """

    def __init__(
        self,
        seed: int,
        config: Optional[ShardedPopulationConfig] = None,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        latency: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.population = ShardedPopulation(seed, config)
        self.batch_size = batch_size
        self.latency = latency
        self.fault_plan = fault_plan

    def identity(self) -> Dict[str, Any]:
        plan = self.fault_plan
        return {
            "kind": "streaming-scan",
            **self.population.identity(),
            "fault_plan": None if plan is None else plan.describe(),
        }

    def jobs(
        self, shards: Optional[Sequence[int]] = None
    ) -> Iterator[BatchJob]:
        """Batch jobs in index order, optionally restricted to shards.

        Batches never straddle a shard boundary, so scanning shard
        subsets on different machines partitions the exact batch set a
        full scan would run.
        """
        population = self.population
        shard_list = (
            range(population.shard_count) if shards is None else shards
        )
        for shard in shard_list:
            start, stop = population.shard_bounds(shard)
            for batch_start in range(start, stop, self.batch_size):
                yield BatchJob(
                    seed=population.seed,
                    config=population.config,
                    start=batch_start,
                    stop=min(batch_start + self.batch_size, stop),
                    latency=self.latency,
                    fault_plan=self.fault_plan,
                )

    def scan_shard(
        self,
        shard: int,
        *,
        after_batch: Optional[Callable[[BatchResult], None]] = None,
    ) -> ShardScanResult:
        """Scan one shard's batches inline, in index order.

        The unit a coordination worker executes under a lease.
        ``after_batch`` is a progress hook invoked after every batch —
        workers use it to heartbeat their lease between batches (and
        the chaos harness to kill a worker mid-shard); a hook that
        raises abandons the shard with nothing written.
        """
        rows: List[Dict[str, Any]] = []
        scanned = 0
        missed = 0
        decoys = 0
        batches = 0
        start, stop = self.population.shard_bounds(shard)
        for job in self.jobs([shard]):
            result = scan_batch(job)
            batches += 1
            scanned += result.scanned
            missed += result.missed
            decoys += result.decoys
            rows.extend(result.rows)
            if after_batch is not None:
                after_batch(result)
        return ShardScanResult(
            shard=shard,
            start=start,
            stop=stop,
            scanned=scanned,
            missed=missed,
            decoys=decoys,
            batches=batches,
            rows=tuple(rows),
        )

    def run(
        self,
        store: "ResultsStore",
        executor: Executor,
        *,
        shards: Optional[Sequence[int]] = None,
        window: Optional[int] = None,
        stats: Optional[StreamStats] = None,
    ) -> ScanSummary:
        """Stream the scan into ``store``; returns the committed epoch.

        Rows land in the ``installations`` segment in submission order.
        A failed batch aborts the stream and re-raises — a partial scan
        must never publish as if it were complete.
        """
        if stats is None:
            stats = StreamStats()
        identity = self.identity()
        epoch_stream = store.begin_stream(
            identity=identity,
            fingerprint=identity_fingerprint(identity),
            seed=self.population.seed,
            window_start=0,
        )
        scanned = 0
        missed = 0
        decoys = 0
        hits = 0
        batches = 0
        started = time.perf_counter()
        try:
            # Touch the segment up front so a zero-hit scan still
            # commits an (empty) installations segment.
            epoch_stream.writer("installations")
            for _index, outcome in executor.stream(
                scan_batch,
                self.jobs(shards),
                label="scan",
                window=window,
                stats=stats,
            ):
                if isinstance(outcome, TaskFailure):
                    raise outcome
                batches += 1
                scanned += outcome.scanned
                missed += outcome.missed
                decoys += outcome.decoys
                for row in outcome.rows:
                    epoch_stream.write("installations", row)
                    hits += 1
        except BaseException:
            epoch_stream.abort()
            raise
        elapsed = time.perf_counter() - started
        result = epoch_stream.finalize(window_end=0)
        return ScanSummary(
            epoch_id=result.epoch_id,
            created=result.created,
            hosts=scanned,
            scanned=scanned,
            missed=missed,
            decoys=decoys,
            hits=hits,
            batches=batches,
            peak_inflight=stats.peak_inflight,
            elapsed_seconds=elapsed,
        )

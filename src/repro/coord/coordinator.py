"""The coordinator side: create the queue, wait, reconcile or degrade.

The coordinator never scans. It owns the directory's identity document,
reaps leases while waiting (so a fleet that dies entirely still
converges to explicit dead letters instead of hanging forever), and —
once the queue is terminal — either reconciles every shard's committed
result into the single content-addressed epoch a one-machine scan
would produce, or returns an explicit :class:`PartialScanResult`.
There is no third outcome: a scan with dead-lettered shards publishes
nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.coord.queue import (
    CoordinationError,
    DeadLetter,
    QueueConfig,
    QueueSnapshot,
    WorkQueue,
)
from repro.exec.checkpoint import fingerprint as identity_fingerprint
from repro.scan.stream import StreamingScan
from repro.store.merge import ShardSource, reconcile_shards


@dataclass(frozen=True)
class PartialScanResult:
    """A distributed scan that ended with unrecoverable shards.

    The explicit degradation the tentpole demands: retry budgets ran
    out on ``dead`` shards, so *no epoch exists* — completed shards'
    results stay in the coordinator directory (re-runnable after the
    operator fixes whatever kept killing workers), but nothing was
    published that could be mistaken for a full scan.
    """

    fingerprint: str
    shard_count: int
    completed_shards: int
    dead: Tuple[DeadLetter, ...]
    duplicates_discarded: int

    @property
    def complete(self) -> bool:
        return False

    def describe(self) -> List[str]:
        lines = [
            f"PARTIAL scan: {self.completed_shards}/{self.shard_count} "
            f"shard(s) completed, {len(self.dead)} dead-lettered — "
            "no epoch committed"
        ]
        for letter in self.dead:
            lines.append(
                f"  shard {letter.shard}: {letter.reason} "
                f"({letter.attempts} attempt(s))"
            )
        return lines


@dataclass(frozen=True)
class DistributedScanSummary:
    """A distributed scan that converged to a committed epoch."""

    epoch_id: str
    created: bool
    shards: int
    workers: Tuple[str, ...]
    duplicates_discarded: int
    scanned: int
    missed: int
    decoys: int
    hits: int
    elapsed_seconds: float

    @property
    def complete(self) -> bool:
        return True


class Coordinator:
    """Lifecycle owner of one distributed scan."""

    def __init__(
        self,
        directory: Path,
        scan: StreamingScan,
        *,
        lease_ttl: float = 30.0,
        straggler_after: Optional[float] = None,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
    ) -> None:
        identity = scan.identity()
        if straggler_after is None:
            straggler_after = 4.0 * lease_ttl
        self.queue = WorkQueue.create(
            directory,
            identity=identity,
            fingerprint=identity_fingerprint(identity),
            seed=scan.population.seed,
            config=QueueConfig(
                shard_count=scan.population.shard_count,
                lease_ttl=lease_ttl,
                straggler_after=straggler_after,
                max_attempts=max_attempts,
                batch_size=scan.batch_size,
                latency=scan.latency,
            ),
            clock=clock,
        )

    @classmethod
    def attach(
        cls, directory: Path, *, clock: Callable[[], float] = time.time
    ) -> "Coordinator":
        """Reattach to an existing directory (status, crash recovery)."""
        instance = cls.__new__(cls)
        instance.queue = WorkQueue.open(directory, clock=clock)
        return instance

    # -------------------------------------------------------------- status
    def status(self) -> QueueSnapshot:
        return self.queue.snapshot()

    def wait(
        self,
        *,
        poll: float = 0.2,
        timeout: Optional[float] = None,
    ) -> QueueSnapshot:
        """Block until every shard is done or dead, reaping as we go."""
        started = time.monotonic()
        while True:
            self.queue.reap()
            snapshot = self.queue.snapshot()
            if snapshot.terminal:
                return snapshot
            if (
                timeout is not None
                and time.monotonic() - started > timeout
            ):
                raise CoordinationError(
                    f"distributed scan did not reach a terminal state "
                    f"within {timeout:.1f}s "
                    f"({len(snapshot.done)}/{snapshot.shard_count} shards "
                    "done)"
                )
            time.sleep(poll)

    # ----------------------------------------------------------- reconcile
    def reconcile(
        self, store: Any
    ) -> Union[DistributedScanSummary, PartialScanResult]:
        """Fold the terminal queue into an epoch — or admit partiality.

        Dead letters short-circuit to :class:`PartialScanResult` before
        any store interaction. Otherwise every commit record (winners
        *and* duplicates — the merge layer is the conflict arbiter)
        flows into :func:`repro.store.merge.reconcile_shards`, which
        commits the byte-identical epoch a single-machine scan of the
        same identity produces.
        """
        started = time.perf_counter()
        snapshot = self.queue.snapshot()
        if not snapshot.terminal:
            raise CoordinationError(
                "cannot reconcile: scan is not terminal "
                f"({len(snapshot.done)}/{snapshot.shard_count} shards done)"
            )
        commits = self.queue.commits()
        if snapshot.dead:
            return PartialScanResult(
                fingerprint=self.queue.fingerprint,
                shard_count=snapshot.shard_count,
                completed_shards=len(snapshot.done),
                dead=snapshot.dead,
                duplicates_discarded=snapshot.duplicates,
            )
        sources = [
            ShardSource(
                shard=commit.shard,
                path=self.queue.shards_dir / commit.file,
                rows_sha256=commit.rows_sha256,
                worker=commit.worker,
            )
            for commit in commits
        ]
        doc: Dict[str, Any] = self.queue.doc
        result = reconcile_shards(
            store,
            identity=doc["identity"],
            fingerprint=self.queue.fingerprint,
            seed=self.queue.seed,
            shard_count=snapshot.shard_count,
            sources=sources,
        )
        return DistributedScanSummary(
            epoch_id=result.epoch_id,
            created=result.created,
            shards=result.shards,
            workers=snapshot.workers,
            duplicates_discarded=result.duplicates_discarded,
            scanned=result.scanned,
            missed=result.missed,
            decoys=result.decoys,
            hits=result.hits,
            elapsed_seconds=time.perf_counter() - started,
        )

    def run(
        self,
        store: Any,
        *,
        poll: float = 0.2,
        timeout: Optional[float] = None,
    ) -> Union[DistributedScanSummary, PartialScanResult]:
        """Wait for the fleet, then reconcile (the one-call entry point)."""
        self.wait(poll=poll, timeout=timeout)
        return self.reconcile(store)

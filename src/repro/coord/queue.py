"""Durable, leased shard work-queue for the distributed scan.

One coordinator directory is the whole coordination state — no broker,
no sockets, nothing resident. Worker processes (possibly on different
machines sharing a filesystem) attach, lease shards, heartbeat, and
commit results; every transition is one CRC-framed record appended to
an event journal, so the queue's state is a pure fold over the journal
and survives any process dying at any instant:

``DIR/coordinator.json``
    The scan's identity document: which world (seed + population
    identity + fault plan), hashed into the same fingerprint the
    checkpoint layer uses, plus the execution policy (shard count,
    batch size, lease TTL, straggler threshold, retry budget). Workers
    refuse to join across identities — the distributed analogue of
    PR 4's resume-identity refusal.
``DIR/queue.jsonl``
    The event journal: ``lease`` / ``heartbeat`` / ``release`` /
    ``expire`` / ``commit`` / ``dead`` records with the
    :mod:`repro.exec.journal` envelope (CRC32 over the canonical body,
    schema version, monotonic sequence). Damage recovers to the
    longest valid prefix; anything a truncated suffix forgets (a lease,
    even a commit) is merely re-executed — shard content is a pure
    function of the scan identity, so replayed work is idempotent.
``DIR/lock``
    An ``flock`` file serializing journal mutations across processes.
``DIR/shards/``
    Workers' durable per-shard result files
    (:func:`repro.store.merge.write_shard_segment`).

Lease lifecycle: ``claim`` grants the lowest pending shard with a
wall-clock deadline; ``heartbeat`` extends it; a deadline passing means
the holder is presumed dead (SIGKILL, hang, partition) and ``reap``
returns the shard to the pending pool — or to the dead-letter ledger
once its retry budget is exhausted. A lease held past the straggler
threshold makes the shard eligible for *speculative* re-execution by
an idle worker: first valid commit wins, later duplicates are recorded
and discarded idempotently at reconcile time.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

try:  # POSIX; the O_EXCL spin below covers platforms without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.exec.journal import JournalRecord, read_journal

#: Bump on any incompatible change to the coordinator document or the
#: queue event payloads.
COORD_SCHEMA_VERSION = 1

COORDINATOR_FILENAME = "coordinator.json"
QUEUE_FILENAME = "queue.jsonl"
LOCK_FILENAME = "lock"
SHARDS_DIRNAME = "shards"


class CoordinationError(Exception):
    """The coordination layer could not complete an operation."""


class IdentityMismatch(CoordinationError):
    """A worker or coordinator tried to join across scan identities."""


class LeaseLost(CoordinationError):
    """The caller's lease expired (and may have been reassigned)."""


@dataclass(frozen=True)
class QueueConfig:
    """Execution policy persisted in ``coordinator.json``.

    None of these affect the committed epoch id — they are how the work
    runs, not what the work is — which is why they live beside, not
    inside, the scan identity.
    """

    shard_count: int
    lease_ttl: float = 30.0
    straggler_after: float = 120.0
    max_attempts: int = 3
    batch_size: int = 1000
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if self.straggler_after <= 0:
            raise ValueError("straggler_after must be > 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")


@dataclass(frozen=True)
class ShardGrant:
    """One granted lease: scan this shard, heartbeat before deadline."""

    shard: int
    attempt: int
    deadline: float
    speculative: bool


@dataclass(frozen=True)
class ShardCommit:
    """One worker's committed result for a shard."""

    shard: int
    worker: str
    file: str
    rows_sha256: str
    rows: int
    scanned: int
    missed: int
    decoys: int


@dataclass
class Lease:
    """A live claim on a shard by one worker."""

    worker: str
    deadline: float
    granted: float
    attempt: int
    speculative: bool


@dataclass
class ShardState:
    """Folded state of one shard (derived, never persisted directly)."""

    shard: int
    attempts: int = 0
    leases: Dict[str, Lease] = field(default_factory=dict)
    commits: List[ShardCommit] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    dead_reason: Optional[str] = None

    @property
    def done(self) -> bool:
        return bool(self.commits)

    @property
    def dead(self) -> bool:
        return self.dead_reason is not None and not self.done

    @property
    def winner(self) -> Optional[ShardCommit]:
        return self.commits[0] if self.commits else None

    @property
    def conflicting(self) -> bool:
        return len({commit.rows_sha256 for commit in self.commits}) > 1


@dataclass(frozen=True)
class LeaseView:
    """One live lease as the status report shows it."""

    shard: int
    worker: str
    attempt: int
    speculative: bool
    age: float
    remaining: float

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0


@dataclass(frozen=True)
class DeadLetter:
    """A shard whose retry budget is exhausted."""

    shard: int
    attempts: int
    reason: str


@dataclass(frozen=True)
class QueueSnapshot:
    """Read-only view of the whole queue at one instant."""

    now: float
    shard_count: int
    pending: Tuple[int, ...]
    leases: Tuple[LeaseView, ...]
    done: Tuple[int, ...]
    dead: Tuple[DeadLetter, ...]
    stragglers: Tuple[int, ...]
    duplicates: int
    conflicts: Tuple[int, ...]
    workers: Tuple[str, ...]

    @property
    def terminal(self) -> bool:
        """Every shard has either a committed result or a dead letter."""
        return len(self.done) + len(self.dead) == self.shard_count

    @property
    def complete(self) -> bool:
        return self.terminal and not self.dead

    def describe(self) -> List[str]:
        lines = [
            f"shards: {self.shard_count} total — {len(self.done)} done, "
            f"{len(self.pending)} pending, {len(self.leases)} leased, "
            f"{len(self.dead)} dead-lettered"
        ]
        for lease in self.leases:
            state = "EXPIRED" if lease.expired else f"{lease.remaining:.1f}s left"
            flavor = " speculative" if lease.speculative else ""
            straggler = " STRAGGLER" if lease.shard in self.stragglers else ""
            lines.append(
                f"  shard {lease.shard}: leased{flavor} by {lease.worker} "
                f"(attempt {lease.attempt}, {lease.age:.1f}s old, "
                f"{state}){straggler}"
            )
        for letter in self.dead:
            lines.append(
                f"  shard {letter.shard}: DEAD after {letter.attempts} "
                f"attempt(s) — {letter.reason}"
            )
        if self.duplicates:
            lines.append(
                f"  {self.duplicates} duplicate completion(s) discarded"
            )
        for shard in self.conflicts:
            lines.append(f"  shard {shard}: CONFLICTING duplicate commits")
        if self.workers:
            lines.append("workers seen: " + ", ".join(self.workers))
        lines.append(
            "state: "
            + (
                "complete"
                if self.complete
                else "partial (dead letters)" if self.terminal else "running"
            )
        )
        return lines


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class WorkQueue:
    """The durable queue over one coordinator directory.

    Every mutation takes the directory lock, folds the journal, decides,
    and appends — so concurrent workers always act on the latest durable
    state and two processes can never both win the same transition.
    State is O(journal) to fold; at scan scale (tens to hundreds of
    shards, heartbeats every TTL/3) the journal stays small.
    """

    def __init__(
        self, directory: Path, *, clock: Callable[[], float] = time.time
    ) -> None:
        self.directory = Path(directory)
        self.clock = clock
        self._doc: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------ locations
    @property
    def coordinator_path(self) -> Path:
        return self.directory / COORDINATOR_FILENAME

    @property
    def queue_path(self) -> Path:
        return self.directory / QUEUE_FILENAME

    @property
    def lock_path(self) -> Path:
        return self.directory / LOCK_FILENAME

    @property
    def shards_dir(self) -> Path:
        return self.directory / SHARDS_DIRNAME

    # ------------------------------------------------------- create / open
    @classmethod
    def create(
        cls,
        directory: Path,
        *,
        identity: Dict[str, Any],
        fingerprint: str,
        seed: int,
        config: QueueConfig,
        clock: Callable[[], float] = time.time,
    ) -> "WorkQueue":
        """Initialize a coordinator directory, or attach to a matching one.

        Attaching to an existing directory is the coordinator crash
        story: re-running the same scan command resumes the queue where
        it stood. Attaching with a *different* scan identity raises
        :class:`IdentityMismatch` — stored execution policy wins over
        the caller's on attach, so a resumed coordinator cannot quietly
        change TTLs mid-flight.
        """
        queue = cls(directory, clock=clock)
        existing = queue._load_doc(required=False)
        if existing is not None:
            if existing.get("fingerprint") != fingerprint:
                raise IdentityMismatch(
                    f"coordinator at {queue.directory} was created for a "
                    f"different scan identity (fingerprint "
                    f"{existing.get('fingerprint', '?')[:12]}… vs "
                    f"{fingerprint[:12]}…) — refusing to coordinate "
                    "across identities"
                )
            return queue
        queue.directory.mkdir(parents=True, exist_ok=True)
        queue.shards_dir.mkdir(exist_ok=True)
        doc = {
            "schema": COORD_SCHEMA_VERSION,
            "kind": "scan-coordinator",
            "identity": identity,
            "fingerprint": fingerprint,
            "seed": seed,
            "shard_count": config.shard_count,
            "lease_ttl": config.lease_ttl,
            "straggler_after": config.straggler_after,
            "max_attempts": config.max_attempts,
            "batch_size": config.batch_size,
            "latency": config.latency,
        }
        from repro.store.store import _write_durable

        _write_durable(
            queue.coordinator_path, _canonical(doc).encode("utf-8")
        )
        queue._doc = doc
        return queue

    @classmethod
    def open(
        cls,
        directory: Path,
        *,
        clock: Callable[[], float] = time.time,
    ) -> "WorkQueue":
        """Attach to an existing coordinator directory (workers do this)."""
        queue = cls(directory, clock=clock)
        queue._load_doc(required=True)
        queue.shards_dir.mkdir(parents=True, exist_ok=True)
        return queue

    def _load_doc(self, *, required: bool) -> Optional[Dict[str, Any]]:
        if self._doc is not None:
            return self._doc
        path = self.coordinator_path
        if not path.exists():
            if required:
                raise CoordinationError(
                    f"no coordinator at {self.directory} "
                    f"(missing {COORDINATOR_FILENAME})"
                )
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise CoordinationError(
                f"coordinator document at {path} is unreadable: {exc}"
            ) from exc
        if doc.get("schema") != COORD_SCHEMA_VERSION:
            raise CoordinationError(
                f"coordinator document schema {doc.get('schema')!r} "
                f"(this reader speaks v{COORD_SCHEMA_VERSION})"
            )
        self._doc = doc
        return doc

    # ------------------------------------------------------------ document
    @property
    def doc(self) -> Dict[str, Any]:
        doc = self._load_doc(required=True)
        assert doc is not None
        return doc

    @property
    def identity(self) -> Dict[str, Any]:
        return self.doc["identity"]

    @property
    def fingerprint(self) -> str:
        return self.doc["fingerprint"]

    @property
    def seed(self) -> int:
        return self.doc["seed"]

    @property
    def config(self) -> QueueConfig:
        doc = self.doc
        return QueueConfig(
            shard_count=doc["shard_count"],
            lease_ttl=doc["lease_ttl"],
            straggler_after=doc["straggler_after"],
            max_attempts=doc["max_attempts"],
            batch_size=doc["batch_size"],
            latency=doc.get("latency", 0.0),
        )

    # ------------------------------------------------------------- locking
    @contextmanager
    def _locked(self) -> Iterator[None]:
        self.directory.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            handle = open(self.lock_path, "a+b")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()
            return
        # Portability fallback: O_EXCL spin lock with stale takeover.
        excl = self.lock_path.with_suffix(".excl")
        acquired_at = self.clock()
        while True:
            try:
                fd = os.open(excl, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                break
            except FileExistsError:
                try:
                    if self.clock() - excl.stat().st_mtime > 60.0:
                        excl.unlink()
                        continue
                except OSError:
                    continue
                if self.clock() - acquired_at > 120.0:
                    raise CoordinationError(
                        f"could not acquire queue lock at {excl}"
                    )
                time.sleep(0.01)
        try:
            yield
        finally:
            try:
                excl.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------- journal
    def _read(self) -> List[JournalRecord]:
        """Longest valid journal prefix, truncating any damaged suffix.

        Must run under the lock. Truncation before append keeps the
        sequence numbering contiguous; whatever a damaged suffix
        recorded is simply re-executed (idempotent by construction).
        """
        records, report = read_journal(self.queue_path)
        keep = sum(len(record.encode()) for record in records)
        if (
            report.records_discarded
            and self.queue_path.exists()
            and keep < self.queue_path.stat().st_size
        ):
            with open(self.queue_path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
        return records

    def _append(
        self, records: List[JournalRecord], events: List[Tuple[str, Dict[str, Any]]]
    ) -> None:
        if not events:
            return
        next_seq = records[-1].seq + 1 if records else 0
        with open(self.queue_path, "ab") as handle:
            for offset, (kind, payload) in enumerate(events):
                handle.write(
                    JournalRecord(next_seq + offset, kind, payload).encode()
                )
            handle.flush()
            os.fsync(handle.fileno())

    # ---------------------------------------------------------------- fold
    def _fold(self, records: List[JournalRecord]) -> Dict[int, ShardState]:
        shards = {
            shard: ShardState(shard)
            for shard in range(self.config.shard_count)
        }
        for record in records:
            self._apply(shards, record.kind, record.payload)
        return shards

    @staticmethod
    def _apply(
        shards: Dict[int, ShardState], kind: str, payload: Dict[str, Any]
    ) -> None:
        state = shards.get(payload.get("shard", -1))
        if state is None:
            return
        if kind == "lease":
            state.attempts = max(state.attempts, payload["attempt"])
            state.leases[payload["worker"]] = Lease(
                worker=payload["worker"],
                deadline=payload["deadline"],
                granted=payload["granted"],
                attempt=payload["attempt"],
                speculative=payload.get("speculative", False),
            )
        elif kind == "heartbeat":
            lease = state.leases.get(payload["worker"])
            if lease is not None:
                lease.deadline = payload["deadline"]
        elif kind == "expire":
            state.leases.pop(payload["worker"], None)
        elif kind == "release":
            state.leases.pop(payload["worker"], None)
            state.failures.append(payload.get("reason", "released"))
        elif kind == "commit":
            state.leases.pop(payload["worker"], None)
            state.commits.append(
                ShardCommit(
                    shard=payload["shard"],
                    worker=payload["worker"],
                    file=payload["file"],
                    rows_sha256=payload["rows_sha256"],
                    rows=payload["rows"],
                    scanned=payload["scanned"],
                    missed=payload["missed"],
                    decoys=payload["decoys"],
                )
            )
        elif kind == "dead":
            state.dead_reason = payload.get("reason", "retry budget exhausted")

    # ------------------------------------------------------------- reaping
    def _reap_events(
        self, shards: Dict[int, ShardState], now: float
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Expire overdue leases; dead-letter budget-exhausted shards.

        Pure over the folded state (which it also updates in place so
        the caller can decide grants against the post-reap view); the
        caller appends the returned events under the same lock.
        """
        config = self.config
        events: List[Tuple[str, Dict[str, Any]]] = []
        for state in shards.values():
            if state.done or state.dead:
                continue
            for worker, lease in list(state.leases.items()):
                if lease.deadline <= now:
                    events.append(
                        ("expire", {"shard": state.shard, "worker": worker})
                    )
                    state.leases.pop(worker)
                    state.failures.append(
                        f"lease by {worker} expired "
                        f"(attempt {lease.attempt})"
                    )
            if (
                not state.leases
                and state.attempts >= config.max_attempts
            ):
                last = state.failures[-1] if state.failures else "unknown"
                reason = (
                    f"retry budget exhausted after {state.attempts} "
                    f"lease(s); last failure: {last}"
                )
                events.append(
                    (
                        "dead",
                        {
                            "shard": state.shard,
                            "attempts": state.attempts,
                            "reason": reason,
                        },
                    )
                )
                state.dead_reason = reason
        return events

    def reap(self) -> int:
        """Expire overdue leases and dead-letter exhausted shards.

        Workers reap implicitly on every claim; the coordinator's wait
        loop calls this explicitly so progress (or explicit partiality)
        does not depend on any worker surviving. Returns the number of
        events appended.
        """
        with self._locked():
            records = self._read()
            shards = self._fold(records)
            events = self._reap_events(shards, self.clock())
            self._append(records, events)
            return len(events)

    # ------------------------------------------------------------ protocol
    def claim(self, worker: str) -> Optional[ShardGrant]:
        """Lease the next shard for ``worker``; None when nothing to do.

        Pending shards are granted lowest-index first. With no pending
        shard, a lease held longer than the straggler threshold makes
        its shard eligible for a *speculative* duplicate lease (never
        to the worker already holding it). A returned ``None`` means
        "idle, but the scan may not be finished" — poll
        :meth:`snapshot` for terminality.
        """
        now = self.clock()
        config = self.config
        with self._locked():
            records = self._read()
            shards = self._fold(records)
            events = self._reap_events(shards, now)
            grant: Optional[ShardGrant] = None
            candidate: Optional[ShardState] = None
            for state in shards.values():
                if state.done or state.dead or state.leases:
                    continue
                if state.attempts >= config.max_attempts:
                    continue
                candidate = state
                break
            speculative = False
            if candidate is None:
                # Straggler pass: duplicate the longest-held live lease.
                oldest: Optional[Tuple[float, ShardState]] = None
                for state in shards.values():
                    if state.done or state.dead or not state.leases:
                        continue
                    if worker in state.leases:
                        continue
                    if state.attempts >= config.max_attempts:
                        continue
                    granted = min(
                        lease.granted for lease in state.leases.values()
                    )
                    if now - granted < config.straggler_after:
                        continue
                    if oldest is None or granted < oldest[0]:
                        oldest = (granted, state)
                if oldest is not None:
                    candidate = oldest[1]
                    speculative = True
            if candidate is not None:
                attempt = candidate.attempts + 1
                deadline = now + config.lease_ttl
                events.append(
                    (
                        "lease",
                        {
                            "shard": candidate.shard,
                            "worker": worker,
                            "attempt": attempt,
                            "deadline": deadline,
                            "granted": now,
                            "speculative": speculative,
                        },
                    )
                )
                grant = ShardGrant(
                    shard=candidate.shard,
                    attempt=attempt,
                    deadline=deadline,
                    speculative=speculative,
                )
            self._append(records, events)
            return grant

    def heartbeat(self, worker: str, shard: int) -> float:
        """Extend ``worker``'s lease on ``shard``; returns the deadline.

        Raises :class:`LeaseLost` if the lease expired or the shard was
        already settled by someone else — the worker should abandon the
        shard (its eventual result would be a discarded duplicate
        anyway, but abandoning saves the work).
        """
        now = self.clock()
        with self._locked():
            records = self._read()
            shards = self._fold(records)
            state = shards.get(shard)
            lease = state.leases.get(worker) if state is not None else None
            if state is None or state.done or state.dead or lease is None:
                raise LeaseLost(
                    f"worker {worker} no longer holds shard {shard}"
                )
            if lease.deadline <= now:
                raise LeaseLost(
                    f"worker {worker} lease on shard {shard} expired "
                    f"{now - lease.deadline:.1f}s ago"
                )
            deadline = now + self.config.lease_ttl
            self._append(
                records,
                [
                    (
                        "heartbeat",
                        {
                            "shard": shard,
                            "worker": worker,
                            "deadline": deadline,
                        },
                    )
                ],
            )
            return deadline

    def commit(
        self,
        worker: str,
        shard: int,
        *,
        file: str,
        rows_sha256: str,
        rows: int,
        scanned: int,
        missed: int,
        decoys: int,
    ) -> bool:
        """Record a completed shard; True if this commit is the winner.

        A commit is accepted even from an expired lease — the result is
        deterministic, so validity does not depend on lease tenure —
        but only the *first* commit per shard wins; later ones are
        recorded for the duplicate/conflict ledger and discarded at
        reconcile time.
        """
        with self._locked():
            records = self._read()
            shards = self._fold(records)
            state = shards[shard]
            won = not state.done
            self._append(
                records,
                [
                    (
                        "commit",
                        {
                            "shard": shard,
                            "worker": worker,
                            "file": file,
                            "rows_sha256": rows_sha256,
                            "rows": rows,
                            "scanned": scanned,
                            "missed": missed,
                            "decoys": decoys,
                        },
                    )
                ],
            )
            return won

    def release(self, worker: str, shard: int, reason: str) -> None:
        """Give a shard back (task raised); may dead-letter it."""
        with self._locked():
            records = self._read()
            shards = self._fold(records)
            events: List[Tuple[str, Dict[str, Any]]] = [
                ("release", {"shard": shard, "worker": worker, "reason": reason})
            ]
            self._apply(shards, *events[0])
            events.extend(self._reap_events(shards, self.clock()))
            self._append(records, events)

    # -------------------------------------------------------------- status
    def commits(self) -> List[ShardCommit]:
        """Every commit record, journal order (winners and duplicates)."""
        with self._locked():
            records = self._read()
        shards = self._fold(records)
        out: List[ShardCommit] = []
        for shard in sorted(shards):
            out.extend(shards[shard].commits)
        return out

    def snapshot(self) -> QueueSnapshot:
        """Read-only view: leases, stragglers, dead letters, duplicates."""
        now = self.clock()
        config = self.config
        with self._locked():
            records = self._read()
        shards = self._fold(records)
        pending: List[int] = []
        leases: List[LeaseView] = []
        done: List[int] = []
        dead: List[DeadLetter] = []
        stragglers: List[int] = []
        conflicts: List[int] = []
        duplicates = 0
        workers: List[str] = []
        for shard in sorted(shards):
            state = shards[shard]
            for commit in state.commits:
                if commit.worker not in workers:
                    workers.append(commit.worker)
            for worker in state.leases:
                if worker not in workers:
                    workers.append(worker)
            if state.done:
                done.append(shard)
                duplicates += len(state.commits) - 1
                if state.conflicting:
                    conflicts.append(shard)
                continue
            if state.dead:
                dead.append(
                    DeadLetter(shard, state.attempts, state.dead_reason or "")
                )
                continue
            if not state.leases:
                pending.append(shard)
                continue
            oldest = min(lease.granted for lease in state.leases.values())
            if now - oldest >= config.straggler_after:
                stragglers.append(shard)
            for lease in state.leases.values():
                leases.append(
                    LeaseView(
                        shard=shard,
                        worker=lease.worker,
                        attempt=lease.attempt,
                        speculative=lease.speculative,
                        age=now - lease.granted,
                        remaining=lease.deadline - now,
                    )
                )
        return QueueSnapshot(
            now=now,
            shard_count=config.shard_count,
            pending=tuple(pending),
            leases=tuple(leases),
            done=tuple(done),
            dead=tuple(dead),
            stragglers=tuple(stragglers),
            duplicates=duplicates,
            conflicts=tuple(conflicts),
            workers=tuple(workers),
        )

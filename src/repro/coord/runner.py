"""Convenience fleet runner: coordinator + N local worker processes.

The production shape is one ``repro scan --coordinator DIR`` process
plus any number of ``repro scan-worker DIR`` processes, started and
killed independently. This module packages that shape for library
callers, pipelines, benchmarks and tests: spawn ``workers`` genuine OS
processes (so a SIGKILL in a test kills a real worker, not a thread),
wait, reconcile, and always reap the fleet on the way out.
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path
from typing import List, Optional, Union

from repro.coord.coordinator import (
    Coordinator,
    DistributedScanSummary,
    PartialScanResult,
)
from repro.coord.worker import ScanWorker
from repro.scan.stream import DEFAULT_BATCH_SIZE, StreamingScan
from repro.world.faults import FaultPlan
from repro.world.population import ShardedPopulationConfig


def run_worker(
    directory: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    poll: float = 0.1,
) -> "ScanWorker":
    """Run one worker to queue terminality; returns it (summary inside)."""
    worker = ScanWorker(Path(directory), worker_id=worker_id, poll=poll)
    worker.run()
    return worker


def _fleet_worker(directory: str, worker_id: str, poll: float) -> None:
    """Module-level so multiprocessing can spawn it."""
    run_worker(directory, worker_id=worker_id, poll=poll)


def spawn_workers(
    directory: Union[str, Path],
    count: int,
    *,
    poll: float = 0.1,
    prefix: str = "worker",
) -> List[multiprocessing.Process]:
    """Start ``count`` independent worker processes against ``directory``."""
    processes = []
    for index in range(count):
        process = multiprocessing.Process(
            target=_fleet_worker,
            args=(str(directory), f"{prefix}-{index}", poll),
            name=f"{prefix}-{index}",
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes


def run_distributed_scan(
    coordinator_dir: Union[str, Path],
    store,
    *,
    seed: int,
    config: Optional[ShardedPopulationConfig] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    latency: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    workers: int = 3,
    lease_ttl: float = 30.0,
    straggler_after: Optional[float] = None,
    max_attempts: int = 3,
    poll: float = 0.05,
    timeout: Optional[float] = None,
) -> Union[DistributedScanSummary, PartialScanResult]:
    """Full distributed identify pass with a local worker fleet.

    Equivalent in outcome to ``StreamingScan(...).run(store, ...)`` —
    same epoch id, byte-identical segments — but executed by ``workers``
    independent OS processes leasing shards through a crash-tolerant
    queue at ``coordinator_dir``.
    """
    scan = StreamingScan(
        seed,
        config,
        batch_size=batch_size,
        latency=latency,
        fault_plan=fault_plan,
    )
    coordinator = Coordinator(
        Path(coordinator_dir),
        scan,
        lease_ttl=lease_ttl,
        straggler_after=straggler_after,
        max_attempts=max_attempts,
    )
    fleet = spawn_workers(coordinator_dir, workers, poll=poll)
    try:
        outcome = coordinator.run(store, poll=poll, timeout=timeout)
    finally:
        deadline = time.monotonic() + 5.0
        for process in fleet:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in fleet:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
    return outcome

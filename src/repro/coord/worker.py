"""One distributed-scan worker: lease → scan → durable commit → repeat.

A worker owns nothing but a coordinator directory. On attach it
rebuilds the scan from the coordinator's identity document — seed,
population identity, fault plan — and verifies the rebuilt scan hashes
to the coordinator's fingerprint, refusing to join across seeds or
identities exactly as PR 4's journaled resume refuses cross-identity
journals. From then on it loops: claim a shard lease, scan the shard's
batches in index order (heartbeating between batches), write the rows
to a durable CRC-framed shard file, and record the commit in the queue
journal. A worker can be SIGKILLed at any instant: its lease expires
and the shard is re-leased; a half-written shard file is atomic-rename
invisible; a committed shard re-scanned by a speculative sibling is a
byte-identical duplicate the reconciler discards.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.coord.queue import (
    IdentityMismatch,
    LeaseLost,
    ShardGrant,
    WorkQueue,
)
from repro.exec.checkpoint import fingerprint as identity_fingerprint
from repro.scan.stream import BatchResult, StreamingScan
from repro.store.merge import write_shard_segment
from repro.world.faults import FaultPlan
from repro.world.population import ShardedPopulationConfig


def scan_from_coordinator(queue: WorkQueue) -> StreamingScan:
    """Rebuild the exact scan a coordinator directory describes.

    The returned scan's own identity must hash back to the
    coordinator's fingerprint; anything else (version skew, a tampered
    document, a forged fingerprint) raises :class:`IdentityMismatch`
    rather than letting a worker scan a subtly different world.
    """
    doc = queue.doc
    identity = doc.get("identity")
    if not isinstance(identity, dict) or identity.get("kind") != "streaming-scan":
        raise IdentityMismatch(
            f"coordinator at {queue.directory} does not describe a "
            "streaming scan"
        )
    if identity.get("seed") != doc.get("seed"):
        raise IdentityMismatch(
            f"coordinator at {queue.directory} is internally inconsistent: "
            f"identity seed {identity.get('seed')!r} vs document seed "
            f"{doc.get('seed')!r}"
        )
    try:
        config = ShardedPopulationConfig.from_identity(
            identity["population"], shard_count=doc["shard_count"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IdentityMismatch(
            f"coordinator identity does not rebuild a population: {exc}"
        ) from exc
    spec = identity.get("fault_plan")
    plan = None if spec is None else FaultPlan.parse(spec)
    scan = StreamingScan(
        doc["seed"],
        config,
        batch_size=doc["batch_size"],
        latency=doc.get("latency", 0.0),
        fault_plan=plan,
    )
    rebuilt = identity_fingerprint(scan.identity())
    if rebuilt != queue.fingerprint:
        raise IdentityMismatch(
            f"rebuilt scan fingerprint {rebuilt[:12]}… does not match the "
            f"coordinator's {queue.fingerprint[:12]}… — refusing to scan "
            "under a mismatched identity"
        )
    return scan


@dataclass
class WorkerSummary:
    """What one worker's run accomplished (for logs and tests)."""

    worker: str
    shards_won: int = 0
    shards_duplicate: int = 0
    shards_released: int = 0
    shards_abandoned: int = 0
    heartbeats: int = 0
    speculative: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def shards_completed(self) -> int:
        return self.shards_won + self.shards_duplicate


class ScanWorker:
    """The claim/scan/commit loop over one coordinator directory."""

    def __init__(
        self,
        directory: Path,
        *,
        worker_id: Optional[str] = None,
        poll: float = 0.2,
        clock: Callable[[], float] = time.time,
        after_batch: Optional[Callable[[int, BatchResult], None]] = None,
    ) -> None:
        self.queue = WorkQueue.open(directory, clock=clock)
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.poll = poll
        self.clock = clock
        #: Test seam: called after every scanned batch with
        #: ``(shard, batch_result)`` — the chaos harness kills or wedges
        #: workers here, mid-lease, between durable steps.
        self.after_batch = after_batch
        self.scan = scan_from_coordinator(self.queue)
        self.summary = WorkerSummary(worker=self.worker_id)

    def run(self) -> WorkerSummary:
        """Work until the queue is terminal (all shards done or dead)."""
        while True:
            grant = self.queue.claim(self.worker_id)
            if grant is None:
                if self.queue.snapshot().terminal:
                    return self.summary
                time.sleep(self.poll)
                continue
            if grant.speculative:
                self.summary.speculative += 1
            self.run_grant(grant)

    def run_one(self) -> Optional[ShardGrant]:
        """Claim and execute at most one shard (test-sized step)."""
        grant = self.queue.claim(self.worker_id)
        if grant is not None:
            if grant.speculative:
                self.summary.speculative += 1
            self.run_grant(grant)
        return grant

    def run_grant(self, grant: ShardGrant) -> None:
        """Execute one granted lease end to end."""
        shard = grant.shard
        ttl = self.queue.config.lease_ttl
        last_beat = self.clock()

        def progress(batch: BatchResult) -> None:
            nonlocal last_beat
            if self.clock() - last_beat >= ttl / 3.0:
                self.queue.heartbeat(self.worker_id, shard)
                self.summary.heartbeats += 1
                last_beat = self.clock()
            if self.after_batch is not None:
                self.after_batch(shard, batch)

        try:
            result = self.scan.scan_shard(shard, after_batch=progress)
        except LeaseLost:
            # The lease expired under us (hang, clock stall): someone
            # else owns the shard now. Abandon quietly — our result
            # would only be a discarded duplicate.
            self.summary.shards_abandoned += 1
            return
        except Exception as exc:  # noqa: BLE001 - released with the reason
            self.summary.shards_released += 1
            self.summary.errors.append(f"shard {shard}: {exc!r}")
            self.queue.release(self.worker_id, shard, repr(exc))
            return
        path = (
            self.queue.shards_dir
            / f"shard-{shard:05d}.{self.worker_id}.json"
        )
        segment = write_shard_segment(
            path,
            shard=shard,
            fingerprint=self.queue.fingerprint,
            worker=self.worker_id,
            rows=list(result.rows),
            scanned=result.scanned,
            missed=result.missed,
            decoys=result.decoys,
        )
        won = self.queue.commit(
            self.worker_id,
            shard,
            file=path.name,
            rows_sha256=segment.rows_sha256,
            rows=len(segment.rows),
            scanned=result.scanned,
            missed=result.missed,
            decoys=result.decoys,
        )
        if won:
            self.summary.shards_won += 1
        else:
            self.summary.shards_duplicate += 1

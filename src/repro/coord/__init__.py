"""repro.coord — crash-tolerant coordination for the distributed scan.

The paper's §3 sweep is a single machine's run; this package distributes
it across independent scanner worker processes that may crash, stall,
or vanish mid-shard, while preserving the streaming engine's contract:
the committed epoch id is the byte-identical content-addressed id a
single-machine scan produces, or the outcome is an explicit
:class:`~repro.coord.coordinator.PartialScanResult` — never a silently
incomplete epoch.

See :mod:`repro.coord.queue` for the durable leased work-queue,
:mod:`repro.coord.worker` for the scanner loop,
:mod:`repro.coord.coordinator` for wait/reconcile, and
:mod:`repro.coord.runner` for the local-fleet convenience entry point.
"""

from repro.coord.coordinator import (
    Coordinator,
    DistributedScanSummary,
    PartialScanResult,
)
from repro.coord.queue import (
    CoordinationError,
    DeadLetter,
    IdentityMismatch,
    LeaseLost,
    QueueConfig,
    QueueSnapshot,
    ShardGrant,
    WorkQueue,
)
from repro.coord.runner import run_distributed_scan, run_worker, spawn_workers
from repro.coord.worker import ScanWorker, WorkerSummary, scan_from_coordinator

__all__ = [
    "CoordinationError",
    "Coordinator",
    "DeadLetter",
    "DistributedScanSummary",
    "IdentityMismatch",
    "LeaseLost",
    "PartialScanResult",
    "QueueConfig",
    "QueueSnapshot",
    "ScanWorker",
    "ShardGrant",
    "WorkQueue",
    "WorkerSummary",
    "run_distributed_scan",
    "run_worker",
    "scan_from_coordinator",
    "spawn_workers",
]

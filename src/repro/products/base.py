"""Abstract base for URL-filtering products.

One instance of a product subclass represents the *vendor side* of a
product line: the master categorization database, the public submission
portal, and the behaviours every deployment of the product shares
(block-page format, admin-interface surface, categorization quirks).
Individual installations are :class:`repro.middlebox.FilterMiddlebox`
objects that reference a product and read its database through a
:class:`~repro.products.database.DatabaseSubscription`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.http import Headers, HttpRequest, HttpResponse
from repro.net.url import Url
from repro.products.categories import Taxonomy, VendorCategory
from repro.products.database import DatabaseSubscription, UrlDatabase
from repro.products.submission import (
    ContentOracle,
    HostingOracle,
    ReviewPolicy,
    SubmissionPortal,
)
from repro.world.clock import SimTime
from repro.world.entities import ServiceApp


@dataclass
class BlockPageConfig:
    """Per-deployment presentation of block pages.

    ``show_branding`` — vendors have been observed removing logos and
    product names from block pages (§2.2); structural signatures like
    redirect ports remain unless ``strip_signature_headers`` is also set
    (the §6.1 header-stripping evasion).
    """

    show_branding: bool = True
    strip_signature_headers: bool = False
    custom_message: str = ""


@dataclass
class DeploymentContext:
    """What a block-page builder needs to know about the installation."""

    box_host: str  # hostname or dotted IP of the box, for deny redirects
    config: BlockPageConfig = field(default_factory=BlockPageConfig)


# Header names that identify products; stripped by the §6.1 evasion.
SIGNATURE_HEADER_NAMES = (
    "Via-Proxy",
    "Via",
    "X-Cache",
    "Server",
    "Proxy-Agent",
    "X-Blocked-By",
)


def strip_signature_headers(response: HttpResponse) -> HttpResponse:
    """Remove product-identifying headers from a synthesized response."""
    cleaned = Headers(response.headers.items())
    for name in SIGNATURE_HEADER_NAMES:
        cleaned.remove(name)
    return HttpResponse(response.status, cleaned, response.body)


class UrlFilterProduct(abc.ABC):
    """Vendor-side model of one URL-filtering product line."""

    #: Vendor display name; overridden by subclasses.
    vendor: str = "abstract"

    #: Vendor-operated category-test host, if the product has one (§4.4:
    #: Netsweeper's denypagetests). Deployments can be configured not to
    #: honor probes against it.
    category_test_host: Optional[str] = None

    def __init__(
        self,
        taxonomy: Taxonomy,
        content_oracle: ContentOracle,
        rng: random.Random,
        review_policy: Optional[ReviewPolicy] = None,
        hosting_oracle: Optional[HostingOracle] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.database = UrlDatabase(self.vendor)
        self.portal = SubmissionPortal(
            self.vendor,
            taxonomy,
            self.database,
            content_oracle,
            rng,
            policy=review_policy,
            hosting_oracle=hosting_oracle,
        )
        self._rng = rng

    # ---------------------------------------------------------- lifecycle
    def tick(self, now: SimTime) -> None:
        """Advance vendor-side queues (review pipeline); call on clock tick."""
        self.portal.process(now)

    # --------------------------------------------------------- durability
    def capture_state(self) -> Dict[str, object]:
        """Plain-data vendor state for study checkpoints.

        Captures the shared vendor RNG (one ``Random`` drives both the
        portal's review draws and subclass queues — state must travel as
        one), the portal's review queues, and the master database's
        campaign delta. Subclasses extend with their own queues.
        """
        return {
            "rng": self._rng.getstate(),
            "portal": self.portal.capture_state(),
            "database": self.database.capture_delta(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._rng.setstate(state["rng"])  # type: ignore[arg-type]
        self.portal.restore_state(state["portal"])  # type: ignore[arg-type]
        self.database.restore_delta(state["database"])  # type: ignore[arg-type]

    def subscription(self) -> DatabaseSubscription:
        """A fresh update subscription for a new deployment."""
        return DatabaseSubscription(self.database)

    # ------------------------------------------------------- deployment IO
    def decide(
        self,
        url: Url,
        subscription: DatabaseSubscription,
        now: SimTime,
    ) -> Optional[VendorCategory]:
        """Categorize a URL as a deployed box would (database lookup).

        Subclasses extend this with product quirks (Netsweeper's
        category-test pages and access queue).
        """
        return subscription.lookup(url, now)

    def on_passthrough(self, url: Url, now: SimTime) -> None:
        """Hook invoked when a deployment forwards an un-blocked request."""

    @abc.abstractmethod
    def block_response(
        self,
        request: HttpRequest,
        category: VendorCategory,
        context: DeploymentContext,
    ) -> HttpResponse:
        """The response a deployment synthesizes for a blocked request."""

    @abc.abstractmethod
    def admin_apps(self, context: DeploymentContext) -> Dict[int, ServiceApp]:
        """HTTP services the box exposes (admin console, deny pages).

        Keyed by port; installed on the box's Host when the deployment is
        externally visible — the §3.1 misconfiguration that makes
        identification possible.
        """

    def infrastructure_apps(self) -> Dict[str, ServiceApp]:
        """Vendor-operated public websites, keyed by domain.

        Examples: Blue Coat's ``www.cfauth.com`` (block redirects point
        at it) and Netsweeper's ``denypagetests.netsweeper.com`` (the
        §4.4 category-probe host). The scenario registers these in world
        DNS so redirect chains and probes terminate.
        """
        return {}

    # ------------------------------------------------------------ helpers
    def categories(self) -> List[VendorCategory]:
        return list(self.taxonomy.categories)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} vendor={self.vendor!r} db={len(self.database)}>"

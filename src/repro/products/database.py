"""Versioned URL categorization databases.

Every product ships a master database of pre-categorized URLs plus a
subscription/update channel that pushes newly categorized URLs to
deployed boxes (§2.1). We model the master as an append-only, versioned
store keyed at hostname granularity (§4.6 found blocking applied to the
whole host), and deployments read it through a
:class:`DatabaseSubscription` whose cutoff models withdrawn update
support — as happened to Websense in Yemen in 2009 and Blue Coat in
Syria (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.net.url import Url
from repro.products.categories import VendorCategory
from repro.world.clock import SimTime


@dataclass(frozen=True)
class DbEntry:
    """One categorization fact: a host belongs to a category from a time."""

    host: str
    category: VendorCategory
    effective_at: SimTime
    source: str = "seed"  # seed | submission | auto_queue | analyst


def _host_key(target: Union[str, Url]) -> str:
    if isinstance(target, Url):
        return target.host
    return target.lower().rstrip(".")


class UrlDatabase:
    """Append-only, time-versioned host-to-category store."""

    def __init__(self, vendor: str) -> None:
        self.vendor = vendor
        self._entries: Dict[str, List[DbEntry]] = {}

    def add(
        self,
        target: Union[str, Url],
        category: VendorCategory,
        effective_at: SimTime,
        source: str = "seed",
    ) -> DbEntry:
        """Record that ``target``'s host is ``category`` from ``effective_at``."""
        entry = DbEntry(_host_key(target), category, effective_at, source)
        bucket = self._entries.setdefault(entry.host, [])
        bucket.append(entry)
        bucket.sort(key=lambda e: e.effective_at)
        return entry

    def lookup(
        self, target: Union[str, Url], as_of: SimTime
    ) -> Optional[VendorCategory]:
        """The category in effect for the host at ``as_of`` (latest wins)."""
        entry = self.lookup_entry(target, as_of)
        return entry.category if entry else None

    def lookup_entry(
        self, target: Union[str, Url], as_of: SimTime
    ) -> Optional[DbEntry]:
        bucket = self._entries.get(_host_key(target))
        if not bucket:
            return None
        chosen: Optional[DbEntry] = None
        for entry in bucket:
            if entry.effective_at <= as_of:
                chosen = entry
            else:
                break
        return chosen

    def knows(self, target: Union[str, Url], as_of: SimTime) -> bool:
        return self.lookup(target, as_of) is not None

    def entries_for(self, target: Union[str, Url]) -> List[DbEntry]:
        return list(self._entries.get(_host_key(target), []))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def hosts(self) -> Iterator[str]:
        return iter(self._entries)

    def capture_delta(self) -> List[DbEntry]:
        """Every non-seed entry, in bucket order, for study checkpoints.

        Seed entries are a pure function of the scenario seed and are
        rebuilt by ``build_scenario`` on resume; only campaign-era facts
        (submissions, Netsweeper's auto queue, analyst actions) need to
        travel. Bucket order is preserved so equal ``effective_at`` ties
        re-sort identically under the stable per-add sort.
        """
        return [
            entry
            for bucket in self._entries.values()
            for entry in bucket
            if entry.source != "seed"
        ]

    def restore_delta(self, delta: List[DbEntry]) -> None:
        """Re-apply a captured delta onto a freshly seeded database."""
        for entry in delta:
            self.add(entry.host, entry.category, entry.effective_at, entry.source)

    def size_at(self, as_of: SimTime) -> int:
        """Number of hosts categorized as of a time (vendors advertise this)."""
        return sum(
            1
            for bucket in self._entries.values()
            if any(entry.effective_at <= as_of for entry in bucket)
        )


@dataclass
class DatabaseSubscription:
    """A deployment's read channel onto the vendor master database.

    When ``active`` the deployment always sees the latest master state.
    When support is withdrawn (:meth:`withdraw`), the deployment is
    frozen at the database state as of the cutoff — newly categorized
    URLs never reach it.
    """

    master: UrlDatabase
    active: bool = True
    cutoff: Optional[SimTime] = None

    def withdraw(self, when: SimTime) -> None:
        """Vendor stops pushing updates to this deployment (§2.2, Yemen)."""
        self.active = False
        self.cutoff = when

    def effective_time(self, now: SimTime) -> SimTime:
        if self.active or self.cutoff is None:
            return now
        return min(now, self.cutoff)

    def lookup(
        self, target: Union[str, Url], now: SimTime
    ) -> Optional[VendorCategory]:
        return self.master.lookup(target, self.effective_time(now))

    def knows(self, target: Union[str, Url], now: SimTime) -> bool:
        return self.lookup(target, now) is not None

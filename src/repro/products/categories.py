"""Vendor category taxonomies.

Each URL-filtering product ships its own proprietary category scheme
(§2.1: "a database of pre-categorized URLs, that allow the network
operator to configure which categories to block"). This module defines
one taxonomy per vendor and the mapping from ground-truth
:class:`~repro.world.content.ContentClass` values into each vendor's
categories — the judgment a vendor's categorization analyst applies when
reviewing a site.

Netsweeper's taxonomy is numbered because the §4.4 category probe
exercises ``denypagetests.netsweeper.com/category/catno/<N>`` URLs for
each of its 66 categories (the paper names catno 23 as pornography; the
remaining numbers are model assignments documented here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.world.content import ContentClass


@dataclass(frozen=True, order=True)
class VendorCategory:
    """One category in a vendor taxonomy."""

    number: int
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Taxonomy:
    """A vendor's category scheme plus its content-class mapping."""

    vendor: str
    categories: List[VendorCategory]
    content_mapping: Dict[ContentClass, str]
    _by_name: Dict[str, VendorCategory] = field(init=False, repr=False)
    _by_number: Dict[int, VendorCategory] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {c.name.lower(): c for c in self.categories}
        self._by_number = {c.number: c for c in self.categories}
        if len(self._by_name) != len(self.categories):
            raise ValueError(f"duplicate category names in {self.vendor} taxonomy")
        if len(self._by_number) != len(self.categories):
            raise ValueError(f"duplicate category numbers in {self.vendor} taxonomy")
        for content_class, name in self.content_mapping.items():
            if name.lower() not in self._by_name:
                raise ValueError(
                    f"{self.vendor}: mapping for {content_class} targets "
                    f"unknown category {name!r}"
                )

    def by_name(self, name: str) -> VendorCategory:
        category = self._by_name.get(name.lower())
        if category is None:
            raise KeyError(f"{self.vendor} has no category {name!r}")
        return category

    def by_number(self, number: int) -> Optional[VendorCategory]:
        return self._by_number.get(number)

    def classify(self, content_class: ContentClass) -> Optional[VendorCategory]:
        """The category this vendor's analyst assigns to given content."""
        name = self.content_mapping.get(content_class)
        return self.by_name(name) if name else None

    def names(self) -> List[str]:
        return [c.name for c in self.categories]

    def __len__(self) -> int:
        return len(self.categories)

    def __iter__(self) -> Iterable[VendorCategory]:
        return iter(self.categories)


def _tax(vendor: str, names: Iterable[str], mapping: Dict[ContentClass, str]) -> Taxonomy:
    categories = [VendorCategory(i + 1, name) for i, name in enumerate(names)]
    return Taxonomy(vendor, categories, mapping)


# --------------------------------------------------------------------------
# McAfee SmartFilter (§4.3: "Anonymizers" and "Pornography" categories).
# --------------------------------------------------------------------------
SMARTFILTER_TAXONOMY = _tax(
    "McAfee SmartFilter",
    [
        "Anonymizers",
        "Anonymizing Utilities",
        "Pornography",
        "Nudity",
        "Dating/Personals",
        "Gambling",
        "Drugs",
        "Alcohol",
        "Hate Speech",
        "Violence",
        "Weapons",
        "Criminal Skills",
        "Phishing",
        "Malicious Sites",
        "Chat",
        "Web Mail",
        "Social Networking",
        "Media Sharing",
        "Games",
        "Shopping",
        "Sports",
        "Travel",
        "News",
        "Politics/Opinion",
        "Religion/Ideology",
        "Sexual Materials",
        "Search Engines",
        "Translation",
        "Remote Access",
        "Content Server",
    ],
    {
        ContentClass.PROXY_ANONYMIZER: "Anonymizers",
        ContentClass.VPN_TOOLS: "Anonymizing Utilities",
        ContentClass.PORNOGRAPHY: "Pornography",
        ContentClass.ADULT_IMAGES: "Pornography",
        ContentClass.DATING: "Dating/Personals",
        ContentClass.LGBT: "Sexual Materials",
        ContentClass.GAMBLING: "Gambling",
        ContentClass.ALCOHOL_DRUGS: "Drugs",
        ContentClass.PHISHING: "Phishing",
        ContentClass.MALWARE: "Malicious Sites",
        ContentClass.MILITANT: "Violence",
        ContentClass.WEAPONS: "Weapons",
        ContentClass.POLITICAL_OPPOSITION: "Politics/Opinion",
        ContentClass.POLITICAL_REFORM: "Politics/Opinion",
        ContentClass.HUMAN_RIGHTS: "Politics/Opinion",
        ContentClass.MEDIA_FREEDOM: "News",
        ContentClass.INDEPENDENT_MEDIA: "News",
        ContentClass.RELIGIOUS_CRITICISM: "Religion/Ideology",
        ContentClass.MINORITY_RELIGION: "Religion/Ideology",
        ContentClass.MINORITY_GROUPS: "Politics/Opinion",
        ContentClass.WOMENS_RIGHTS: "Politics/Opinion",
        ContentClass.SOCIAL_MEDIA: "Social Networking",
        ContentClass.SEARCH_ENGINE: "Search Engines",
        ContentClass.EMAIL_PROVIDER: "Web Mail",
        ContentClass.TRANSLATION: "Translation",
        ContentClass.NEWS: "News",
        ContentClass.SHOPPING: "Shopping",
        ContentClass.SPORTS: "Sports",
        ContentClass.RELIGION_MAINSTREAM: "Religion/Ideology",
    },
)

# --------------------------------------------------------------------------
# Blue Coat WebFilter (§4.5: "Proxy Avoidance" category).
# --------------------------------------------------------------------------
BLUECOAT_TAXONOMY = _tax(
    "Blue Coat WebFilter",
    [
        "Proxy Avoidance",
        "Remote Access Tools",
        "Adult/Mature Content",
        "Pornography",
        "Nudity",
        "LGBT",
        "Personals/Dating",
        "Gambling",
        "Illegal Drugs",
        "Alcohol/Tobacco",
        "Hacking",
        "Phishing",
        "Malicious Sources",
        "Violence/Hate/Racism",
        "Weapons",
        "Political/Social Advocacy",
        "Alternative Spirituality/Belief",
        "Religion",
        "News/Media",
        "Social Networking",
        "Web-based Email",
        "Search Engines/Portals",
        "Translation",
        "Shopping",
        "Sports/Recreation",
        "Entertainment",
        "Education",
        "Government/Legal",
        "Health",
        "Technology/Internet",
    ],
    {
        ContentClass.PROXY_ANONYMIZER: "Proxy Avoidance",
        ContentClass.VPN_TOOLS: "Remote Access Tools",
        ContentClass.PORNOGRAPHY: "Pornography",
        ContentClass.ADULT_IMAGES: "Adult/Mature Content",
        ContentClass.DATING: "Personals/Dating",
        ContentClass.LGBT: "LGBT",
        ContentClass.GAMBLING: "Gambling",
        ContentClass.ALCOHOL_DRUGS: "Illegal Drugs",
        ContentClass.PHISHING: "Phishing",
        ContentClass.MALWARE: "Malicious Sources",
        ContentClass.MILITANT: "Violence/Hate/Racism",
        ContentClass.WEAPONS: "Weapons",
        ContentClass.POLITICAL_OPPOSITION: "Political/Social Advocacy",
        ContentClass.POLITICAL_REFORM: "Political/Social Advocacy",
        ContentClass.HUMAN_RIGHTS: "Political/Social Advocacy",
        ContentClass.MEDIA_FREEDOM: "News/Media",
        ContentClass.INDEPENDENT_MEDIA: "News/Media",
        ContentClass.RELIGIOUS_CRITICISM: "Alternative Spirituality/Belief",
        ContentClass.MINORITY_RELIGION: "Alternative Spirituality/Belief",
        ContentClass.MINORITY_GROUPS: "Political/Social Advocacy",
        ContentClass.WOMENS_RIGHTS: "Political/Social Advocacy",
        ContentClass.SOCIAL_MEDIA: "Social Networking",
        ContentClass.SEARCH_ENGINE: "Search Engines/Portals",
        ContentClass.EMAIL_PROVIDER: "Web-based Email",
        ContentClass.TRANSLATION: "Translation",
        ContentClass.NEWS: "News/Media",
        ContentClass.SHOPPING: "Shopping",
        ContentClass.SPORTS: "Sports/Recreation",
        ContentClass.ENTERTAINMENT: "Entertainment",
        ContentClass.EDUCATION: "Education",
        ContentClass.GOVERNMENT: "Government/Legal",
        ContentClass.HEALTH: "Health",
        ContentClass.TECHNOLOGY: "Technology/Internet",
        ContentClass.RELIGION_MAINSTREAM: "Religion",
    },
)

# --------------------------------------------------------------------------
# Netsweeper: 66 numbered categories, matching the §4.4 denypagetests
# probe. Catno 23 = Pornography is from the paper; other key numbers
# (4 adult images, 41 phishing, 46 proxy anonymizer, 57 search keywords)
# are model assignments.
# --------------------------------------------------------------------------
_NETSWEEPER_NAMES = [
    "Access Denied", "Advertising", "Adult Content", "Adult Images",
    "Alcohol", "Arts", "Automobiles", "Business", "Chat", "Criminal Skills",
    "Dating", "Drugs", "Education", "Entertainment", "Extreme",
    "Finance", "Forums", "Gambling", "Games", "General News",
    "Government", "Hate Speech", "Pornography", "Hosting",
    "Humor", "Intimate Apparel", "Investing", "Job Search", "Kids",
    "Lifestyle", "Matrimonial", "Media Sharing", "Military", "Mobile",
    "Motorized Sports", "Music", "Occult", "Online Auctions", "Peer to Peer",
    "Personal Pages", "Phishing", "Photo Sharing", "Politics", "Portals",
    "Profanity", "Proxy Anonymizer", "Real Estate", "Religion",
    "Search Engines", "Sex Education", "Shopping", "Social Networking",
    "Sports", "Streaming Media", "Substance Abuse", "Tobacco",
    "Search Keywords", "Translation", "Travel", "Viruses", "Weapons",
    "Web Mail", "Web Storage", "New Domains", "Intolerance", "Malware",
]
assert len(_NETSWEEPER_NAMES) == 66

NETSWEEPER_TAXONOMY = _tax(
    "Netsweeper",
    _NETSWEEPER_NAMES,
    {
        ContentClass.PROXY_ANONYMIZER: "Proxy Anonymizer",
        ContentClass.VPN_TOOLS: "Proxy Anonymizer",
        ContentClass.PORNOGRAPHY: "Pornography",
        ContentClass.ADULT_IMAGES: "Adult Images",
        ContentClass.DATING: "Dating",
        ContentClass.LGBT: "Lifestyle",
        ContentClass.GAMBLING: "Gambling",
        ContentClass.ALCOHOL_DRUGS: "Drugs",
        ContentClass.PHISHING: "Phishing",
        ContentClass.MALWARE: "Malware",
        ContentClass.MILITANT: "Extreme",
        ContentClass.WEAPONS: "Weapons",
        ContentClass.POLITICAL_OPPOSITION: "Politics",
        ContentClass.POLITICAL_REFORM: "Politics",
        ContentClass.HUMAN_RIGHTS: "Politics",
        ContentClass.MEDIA_FREEDOM: "General News",
        ContentClass.INDEPENDENT_MEDIA: "General News",
        ContentClass.RELIGIOUS_CRITICISM: "Occult",
        ContentClass.MINORITY_RELIGION: "Religion",
        ContentClass.MINORITY_GROUPS: "Intolerance",
        ContentClass.WOMENS_RIGHTS: "Politics",
        ContentClass.SOCIAL_MEDIA: "Social Networking",
        ContentClass.SEARCH_ENGINE: "Search Engines",
        ContentClass.EMAIL_PROVIDER: "Web Mail",
        ContentClass.TRANSLATION: "Translation",
        ContentClass.NEWS: "General News",
        ContentClass.SHOPPING: "Shopping",
        ContentClass.SPORTS: "Sports",
        ContentClass.ENTERTAINMENT: "Entertainment",
        ContentClass.EDUCATION: "Education",
        ContentClass.GOVERNMENT: "Government",
        ContentClass.HEALTH: "Lifestyle",
        ContentClass.TECHNOLOGY: "Business",
        ContentClass.RELIGION_MAINSTREAM: "Religion",
        ContentClass.HOSTING_SERVICE: "Hosting",
    },
)

# Pornography must be catno 23 per the paper's example URL.
assert NETSWEEPER_TAXONOMY.by_name("Pornography").number == 23

# --------------------------------------------------------------------------
# Websense.
# --------------------------------------------------------------------------
WEBSENSE_TAXONOMY = _tax(
    "Websense",
    [
        "Proxy Avoidance",
        "Adult Content",
        "Nudity",
        "Sex",
        "Lingerie and Swimsuit",
        "Gay or Lesbian or Bisexual Interest",
        "Personals and Dating",
        "Gambling",
        "Illegal or Questionable",
        "Drugs",
        "Hacking",
        "Phishing and Other Frauds",
        "Malicious Web Sites",
        "Militancy and Extremist",
        "Weapons",
        "Advocacy Groups",
        "Political Organizations",
        "Non-Traditional Religions",
        "Traditional Religions",
        "News and Media",
        "Social Networking",
        "Web-based Email",
        "Search Engines and Portals",
        "Translation",
        "Shopping",
        "Sports",
        "Entertainment",
        "Educational Institutions",
        "Government",
        "Health",
        "Information Technology",
        "Alternative Journals",
    ],
    {
        ContentClass.PROXY_ANONYMIZER: "Proxy Avoidance",
        ContentClass.VPN_TOOLS: "Proxy Avoidance",
        ContentClass.PORNOGRAPHY: "Sex",
        ContentClass.ADULT_IMAGES: "Adult Content",
        ContentClass.DATING: "Personals and Dating",
        ContentClass.LGBT: "Gay or Lesbian or Bisexual Interest",
        ContentClass.GAMBLING: "Gambling",
        ContentClass.ALCOHOL_DRUGS: "Drugs",
        ContentClass.PHISHING: "Phishing and Other Frauds",
        ContentClass.MALWARE: "Malicious Web Sites",
        ContentClass.MILITANT: "Militancy and Extremist",
        ContentClass.WEAPONS: "Weapons",
        ContentClass.POLITICAL_OPPOSITION: "Political Organizations",
        ContentClass.POLITICAL_REFORM: "Political Organizations",
        ContentClass.HUMAN_RIGHTS: "Advocacy Groups",
        ContentClass.MEDIA_FREEDOM: "Alternative Journals",
        ContentClass.INDEPENDENT_MEDIA: "Alternative Journals",
        ContentClass.RELIGIOUS_CRITICISM: "Non-Traditional Religions",
        ContentClass.MINORITY_RELIGION: "Non-Traditional Religions",
        ContentClass.MINORITY_GROUPS: "Advocacy Groups",
        ContentClass.WOMENS_RIGHTS: "Advocacy Groups",
        ContentClass.SOCIAL_MEDIA: "Social Networking",
        ContentClass.SEARCH_ENGINE: "Search Engines and Portals",
        ContentClass.EMAIL_PROVIDER: "Web-based Email",
        ContentClass.TRANSLATION: "Translation",
        ContentClass.NEWS: "News and Media",
        ContentClass.SHOPPING: "Shopping",
        ContentClass.SPORTS: "Sports",
        ContentClass.ENTERTAINMENT: "Entertainment",
        ContentClass.EDUCATION: "Educational Institutions",
        ContentClass.GOVERNMENT: "Government",
        ContentClass.HEALTH: "Health",
        ContentClass.TECHNOLOGY: "Information Technology",
        ContentClass.RELIGION_MAINSTREAM: "Traditional Religions",
    },
)

TAXONOMIES: Dict[str, Taxonomy] = {
    t.vendor: t
    for t in (
        SMARTFILTER_TAXONOMY,
        BLUECOAT_TAXONOMY,
        NETSWEEPER_TAXONOMY,
        WEBSENSE_TAXONOMY,
    )
}

"""Concurrent-user license model.

§4.4, Challenge 2: "prior work by the ONI observed a Yemeni ISP using
Websense with a limited number of concurrent user licenses. When the
number of users exceeded the number of licenses no content would be
filtered." The same fail-open behaviour explains the inconsistent
blocking observed with Netsweeper in YemenNet: on some runs the filter
is effectively offline.

The model: a deployment has ``seats`` licenses and faces a fluctuating
offered load of concurrent users. Load at a given simulated minute is
drawn deterministically from (seed, minute) so that all fetches within
the same minute observe the same filter state, and different minutes
fluctuate independently — repeated measurement runs separated in time
therefore see different filter states, exactly the §4.4 symptom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.world.clock import SimTime
from repro.world.rng import derive_rng


@dataclass
class LicenseModel:
    """Fail-open licensing: filtering is active only when load <= seats."""

    seats: int
    mean_load: float
    load_stddev: float
    seed: int
    label: str = "license"

    def __post_init__(self) -> None:
        if self.seats <= 0:
            raise ValueError("seats must be positive")
        if self.mean_load < 0 or self.load_stddev < 0:
            raise ValueError("load parameters must be non-negative")

    def concurrent_users(self, now: SimTime, salt: str = "") -> int:
        """Deterministic offered load for the given simulated minute.

        ``salt`` (the middlebox passes the target hostname) decorrelates
        the state seen by different flows in the same minute — §4.4
        observed "some proxy URLs are accessible on runs where other
        proxy URLs are blocked", i.e. per-flow, not per-instant, failure.
        """
        rng = derive_rng(self.seed, self.label, str(now.minutes), salt)
        load = rng.gauss(self.mean_load, self.load_stddev)
        return max(0, int(round(load)))

    def filtering_active(self, now: SimTime, salt: str = "") -> bool:
        """True when the box has a free seat and enforces policy."""
        return self.concurrent_users(now, salt) <= self.seats

    def overflow_probability(self) -> float:
        """Analytic P(load > seats) under the Gaussian load model."""
        if self.load_stddev == 0:
            return 1.0 if self.mean_load > self.seats else 0.0
        z = (self.seats + 0.5 - self.mean_load) / self.load_stddev
        return 0.5 * math.erfc(z / math.sqrt(2.0))


def always_active() -> Optional[LicenseModel]:
    """Sentinel for deployments without license pressure (None)."""
    return None

"""Vendor site-submission portals and the review pipeline.

This is the mechanism the confirmation methodology (§4.2) leans on:
"many URL filters provide a mechanism for users to submit sites that
should be blocked ... After 3-5 days, we retest the sites and observe
whether or not the submitted sites are blocked."

A :class:`SubmissionPortal` accepts submissions, holds them for a
review delay, and then has a simulated vendor analyst examine the site
content (via a content oracle standing in for "the analyst visits the
site") and either add it to the master database or reject it. The §6.2
evasion discussion — vendors trying to identify and disregard the
researchers' submissions by submitter identity or hosting provider — is
modeled by :class:`ReviewPolicy`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.url import Url
from repro.products.categories import Taxonomy, VendorCategory
from repro.products.database import UrlDatabase
from repro.world.clock import SimTime
from repro.world.content import ContentClass

# The analyst "visits" a host and reports what it hosts; None = unreachable.
ContentOracle = Callable[[str], Optional[ContentClass]]


class SubmissionStatus(enum.Enum):
    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass(frozen=True)
class SubmitterIdentity:
    """Who appears to be submitting: email + source IP (§6.2 evasion).

    ``via_proxy`` marks submissions laundered through Tor/proxies with a
    throwaway webmail address — the paper's counter-evasion tactic.
    """

    email: str
    source_ip: str
    via_proxy: bool = False


@dataclass
class Submission:
    """One submitted site working its way through vendor review."""

    id: int
    url: Url
    submitter: SubmitterIdentity
    submitted_at: SimTime
    requested_category: Optional[str] = None
    status: SubmissionStatus = SubmissionStatus.PENDING
    decided_at: Optional[SimTime] = None
    assigned_category: Optional[VendorCategory] = None
    rejection_reason: Optional[str] = None
    due_at: SimTime = SimTime(0)


@dataclass
class ReviewPolicy:
    """How a vendor's categorization team behaves.

    ``min_review_days``/``max_review_days`` bound the §4.2 "3-5 days".
    ``base_accept_rate`` models ordinary review noise (a reviewer may
    decline or lose a valid submission — the Du case in Table 3 saw
    5 of 6 submitted sites blocked).
    """

    min_review_days: float = 3.0
    max_review_days: float = 5.0
    base_accept_rate: float = 1.0
    # §6.2 evasion: reject everything from flagged submitters.
    distrusted_emails: List[str] = field(default_factory=list)
    distrusted_ips: List[str] = field(default_factory=list)
    # §6.2 evasion: reject sites hosted on suspicious small providers,
    # unless the provider is "too big to block" (protected).
    distrusted_hosting: List[str] = field(default_factory=list)
    protected_hosting: List[str] = field(default_factory=list)

    def review_delay_days(self, rng: random.Random) -> float:
        if self.max_review_days < self.min_review_days:
            raise ValueError("max_review_days < min_review_days")
        return rng.uniform(self.min_review_days, self.max_review_days)

    def distrusts_submitter(self, submitter: SubmitterIdentity) -> bool:
        if submitter.via_proxy:
            # Laundered identity: nothing to correlate (§6.2: "easy for
            # us to evade using proxy services or Tor").
            return False
        return (
            submitter.email in self.distrusted_emails
            or submitter.source_ip in self.distrusted_ips
        )

    def distrusts_hosting(self, hosting_label: Optional[str]) -> bool:
        if hosting_label is None:
            return False
        if hosting_label in self.protected_hosting:
            return False
        return hosting_label in self.distrusted_hosting


# Maps a host to a label for its hosting provider (AS name); used by the
# hosting-based evasion check. None = unknown.
HostingOracle = Callable[[str], Optional[str]]


class SubmissionPortal:
    """A vendor's public "submit/test-a-site" interface plus review queue."""

    def __init__(
        self,
        vendor: str,
        taxonomy: Taxonomy,
        database: UrlDatabase,
        content_oracle: ContentOracle,
        rng: random.Random,
        policy: Optional[ReviewPolicy] = None,
        hosting_oracle: Optional[HostingOracle] = None,
    ) -> None:
        self.vendor = vendor
        self.taxonomy = taxonomy
        self.database = database
        self.policy = policy or ReviewPolicy()
        self._content_oracle = content_oracle
        self._hosting_oracle = hosting_oracle
        self._rng = rng
        self._next_id = 1
        self._pending: List[Submission] = []
        self._decided: List[Submission] = []

    # ------------------------------------------------------------- submit
    def submit(
        self,
        url: Url,
        submitter: SubmitterIdentity,
        now: SimTime,
        requested_category: Optional[str] = None,
    ) -> Submission:
        """Submit a site for categorization/blocking.

        ``requested_category`` (vendor category name) models forms that
        let the submitter claim a category; Netsweeper's test-a-site
        takes no category and simply queues the site for classification.
        """
        if requested_category is not None:
            # Validates the name against the vendor taxonomy.
            self.taxonomy.by_name(requested_category)
        submission = Submission(
            id=self._allocate_id(),
            url=url,
            submitter=submitter,
            submitted_at=now,
            requested_category=requested_category,
            due_at=now.plus_days(self.policy.review_delay_days(self._rng)),
        )
        self._pending.append(submission)
        return submission

    # ------------------------------------------------------------- review
    def process(self, now: SimTime) -> List[Submission]:
        """Review every pending submission whose delay has elapsed."""
        due = [s for s in self._pending if s.due_at <= now]
        if not due:
            return []
        self._pending = [s for s in self._pending if s.due_at > now]
        for submission in due:
            self._review(submission, now)
            self._decided.append(submission)
        return due

    def _review(self, submission: Submission, now: SimTime) -> None:
        policy = self.policy
        if policy.distrusts_submitter(submission.submitter):
            self._reject(submission, now, "submitter flagged")
            return
        host = submission.url.host
        if self._hosting_oracle is not None and policy.distrusts_hosting(
            self._hosting_oracle(host)
        ):
            self._reject(submission, now, "hosting provider flagged")
            return
        content = self._content_oracle(host)
        if content is None:
            self._reject(submission, now, "site unreachable at review time")
            return
        category = self.taxonomy.classify(content)
        if category is None:
            self._reject(submission, now, "content not categorizable")
            return
        if (
            submission.requested_category is not None
            and self.taxonomy.by_name(submission.requested_category) != category
        ):
            # Analyst disagrees with the claimed category: most vendors
            # still file under the analyst's category.
            pass
        if self._rng.random() > policy.base_accept_rate:
            self._reject(submission, now, "reviewer declined")
            return
        submission.status = SubmissionStatus.ACCEPTED
        submission.decided_at = now
        submission.assigned_category = category
        self.database.add(submission.url, category, now, source="submission")

    @staticmethod
    def _reject(submission: Submission, now: SimTime, reason: str) -> None:
        submission.status = SubmissionStatus.REJECTED
        submission.decided_at = now
        submission.rejection_reason = reason

    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    # --------------------------------------------------------- durability
    def capture_state(self) -> Dict[str, object]:
        """Plain-data review-queue state for study checkpoints.

        The review RNG is owned by the product (the same ``Random``
        object drives the portal and vendor-side queues), so it is
        captured there, not here.
        """
        return {
            "next_id": self._next_id,
            "pending": list(self._pending),
            "decided": list(self._decided),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._next_id = state["next_id"]  # type: ignore[assignment]
        self._pending = list(state["pending"])  # type: ignore[arg-type]
        self._decided = list(state["decided"])  # type: ignore[arg-type]

    # ------------------------------------------------------------ inspect
    @property
    def pending(self) -> List[Submission]:
        return list(self._pending)

    @property
    def decided(self) -> List[Submission]:
        return list(self._decided)

    def find(self, url: Url) -> List[Submission]:
        return [
            s
            for s in self._pending + self._decided
            if s.url.host == url.host
        ]

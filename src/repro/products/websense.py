"""Websense model.

Identification surface (Table 2): Shodan keywords ``blockpage.cgi`` and
``gateway websense``; WhatWeb matches a Location header redirecting to a
host on port 15871 with a ``ws-session`` parameter. Websense deployments
also carry the concurrent-license fail-open behaviour documented for
Yemen (§4.4): the :class:`~repro.products.licensing.LicenseModel` is
attached at the middlebox layer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.http import Headers, HttpRequest, HttpResponse, html_page
from repro.products.base import DeploymentContext, UrlFilterProduct
from repro.products.categories import WEBSENSE_TAXONOMY, VendorCategory
from repro.products.registry import (
    REGISTRY,
    WEBSENSE,
    BlockPatternSpec,
    ProductSpec,
)
from repro.products.signatures import (
    Evidence,
    ProbeObservation,
    header_contains,
    location_matches,
)
from repro.world.content import ContentClass
from repro.world.entities import ServiceApp

BLOCKPAGE_PORT = 15871


class Websense(UrlFilterProduct):
    """Vendor-side Websense: database plus block-page gateway surface."""

    vendor = "Websense"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(WEBSENSE_TAXONOMY, *args, **kwargs)
        self._next_session = 1_048_576

    # --------------------------------------------------------- durability
    def capture_state(self) -> Dict[str, object]:
        state = super().capture_state()
        state["next_session"] = self._next_session
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        self._next_session = state["next_session"]  # type: ignore[assignment]

    def block_response(
        self,
        request: HttpRequest,
        category: VendorCategory,
        context: DeploymentContext,
    ) -> HttpResponse:
        session = self._next_session
        self._next_session += 1
        target = (
            f"http://{context.box_host}:{BLOCKPAGE_PORT}/cgi-bin/blockpage.cgi"
            f"?ws-session={session}&cat={category.number}"
        )
        headers = Headers()
        headers.set("Location", target)
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            302, headers, html_page("Redirect", "<p>redirecting</p>")
        )

    def _blockpage(
        self, request: HttpRequest, context: DeploymentContext
    ) -> HttpResponse:
        params = request.url.query_params()
        catno = params.get("cat", "")
        category = (
            self.taxonomy.by_number(int(catno)) if catno.isdigit() else None
        )
        branded = context.config.show_branding
        title = (
            "Websense - Access to this site is blocked"
            if branded
            else "Access to this site is blocked"
        )
        reason = (
            f"<p>Reason: the Websense category "
            f'"{category.name}" is filtered.</p>'
            if branded and category
            else "<p>This site is blocked by your organization's policy.</p>"
        )
        headers = Headers()
        headers.set("Server", "Websense Content Gateway")
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            200,
            headers,
            html_page(
                title,
                f"<h1>Access to this site is blocked</h1>{reason}"
                f"<p>URL: {params.get('url', '')}</p>",
            ),
        )

    def admin_apps(self, context: DeploymentContext) -> Dict[int, ServiceApp]:
        def blockpage_service(request: HttpRequest) -> HttpResponse:
            if request.url.path.startswith("/cgi-bin/blockpage.cgi"):
                return self._blockpage(request, context)
            headers = Headers()
            headers.set("Server", "Websense Content Gateway")
            headers.set("Content-Type", "text/html; charset=utf-8")
            return HttpResponse(403, headers, html_page("Forbidden", "<h1>403</h1>"))

        def gateway_login(request: HttpRequest) -> HttpResponse:
            headers = Headers()
            headers.set("Server", "Websense Content Gateway")
            headers.set("Content-Type", "text/html; charset=utf-8")
            return HttpResponse(
                200,
                headers,
                html_page(
                    "Content Gateway Websense",
                    "<h1>Websense Content Gateway</h1>"
                    "<p>Administrator login.</p>",
                ),
            )

        return {BLOCKPAGE_PORT: blockpage_service, 80: gateway_login}


def make_websense(*args, **kwargs) -> Websense:
    """Construct a Websense vendor instance with the standard taxonomy."""
    return Websense(*args, **kwargs)


def websense_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """A redirect to port 15871 with ws-session, or a Websense server banner."""
    evidence = location_matches(
        observations,
        lambda loc: ":15871" in loc and "ws-session" in loc.lower(),
        "blockpage",
    )
    evidence.extend(header_contains(observations, "Server", "websense"))
    return evidence


SPEC = REGISTRY.register(
    ProductSpec(
        name=WEBSENSE,
        slug="websense",
        order=40,
        paper_default=True,
        shodan_keywords=("blockpage.cgi", '"gateway websense"'),
        signature=websense_signature,
        signature_note=(
            "redirect to port 15871 with ws-session, or Websense server banner"
        ),
        probe_endpoints=(
            (BLOCKPAGE_PORT, "/"),
            (BLOCKPAGE_PORT, "/cgi-bin/blockpage.cgi"),
        ),
        block_patterns=(
            BlockPatternSpec(r"blockpage\.cgi", "any", False),
            BlockPatternSpec(r"ws-session", "any", False),
            BlockPatternSpec(r"websense", "body", True),
        ),
        factory=make_websense,
        taxonomy=WEBSENSE_TAXONOMY,
        category_requests={
            ContentClass.PROXY_ANONYMIZER: "Proxy Avoidance",
            ContentClass.ADULT_IMAGES: "Adult Content",
            ContentClass.PORNOGRAPHY: "Sex",
        },
        brand_marks=("websense",),
        scrub_tokens=("websense",),
        residue_tokens=("websense",),
        proxy_annotation=("Via", "1.1 wcg (Websense Content Gateway)"),
        headquarters="San Diego, CA, USA",
        description="Web proxy gateways including corporate data leakage monitoring",
        previously_observed=("ye",),
    )
)

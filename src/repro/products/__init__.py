"""URL-filtering product models: vendor databases, portals, block pages."""

from repro.products.base import (
    BlockPageConfig,
    DeploymentContext,
    SIGNATURE_HEADER_NAMES,
    UrlFilterProduct,
    strip_signature_headers,
)
from repro.products.bluecoat import BlueCoatProxySG, CFAUTH_HOST, make_bluecoat
from repro.products.categories import (
    BLUECOAT_TAXONOMY,
    NETSWEEPER_TAXONOMY,
    SMARTFILTER_TAXONOMY,
    TAXONOMIES,
    Taxonomy,
    VendorCategory,
    WEBSENSE_TAXONOMY,
)
from repro.products.database import DatabaseSubscription, DbEntry, UrlDatabase
from repro.products.licensing import LicenseModel, always_active
from repro.products.registry import (
    BLUE_COAT,
    FORTIGUARD,
    NETSWEEPER,
    REGISTRY,
    SMARTFILTER,
    WEBSENSE,
    BlockPatternSpec,
    ProductRegistry,
    ProductSpec,
    default_registry,
    iter_specs,
)
from repro.products.signatures import (
    Evidence,
    ProbeObservation,
    SignatureFn,
    body_contains,
    header_contains,
    header_present,
    location_matches,
    title_contains,
)
from repro.products.netsweeper import (
    ADMIN_PORT as NETSWEEPER_ADMIN_PORT,
    CATEGORY_TEST_HOST,
    Netsweeper,
    make_netsweeper,
)
from repro.products.smartfilter import McAfeeSmartFilter, make_smartfilter
from repro.products.submission import (
    ReviewPolicy,
    Submission,
    SubmissionPortal,
    SubmissionStatus,
    SubmitterIdentity,
)
from repro.products.websense import (
    BLOCKPAGE_PORT as WEBSENSE_BLOCKPAGE_PORT,
    Websense,
    make_websense,
)

__all__ = [
    "BLUECOAT_TAXONOMY",
    "BLUE_COAT",
    "BlockPageConfig",
    "BlockPatternSpec",
    "BlueCoatProxySG",
    "CATEGORY_TEST_HOST",
    "CFAUTH_HOST",
    "DatabaseSubscription",
    "DbEntry",
    "DeploymentContext",
    "Evidence",
    "FORTIGUARD",
    "LicenseModel",
    "McAfeeSmartFilter",
    "NETSWEEPER",
    "NETSWEEPER_ADMIN_PORT",
    "NETSWEEPER_TAXONOMY",
    "Netsweeper",
    "ProbeObservation",
    "ProductRegistry",
    "ProductSpec",
    "REGISTRY",
    "ReviewPolicy",
    "SIGNATURE_HEADER_NAMES",
    "SMARTFILTER",
    "SMARTFILTER_TAXONOMY",
    "SignatureFn",
    "Submission",
    "SubmissionPortal",
    "SubmissionStatus",
    "SubmitterIdentity",
    "TAXONOMIES",
    "Taxonomy",
    "UrlDatabase",
    "UrlFilterProduct",
    "VendorCategory",
    "WEBSENSE",
    "WEBSENSE_BLOCKPAGE_PORT",
    "WEBSENSE_TAXONOMY",
    "Websense",
    "always_active",
    "body_contains",
    "default_registry",
    "header_contains",
    "header_present",
    "iter_specs",
    "location_matches",
    "make_bluecoat",
    "make_netsweeper",
    "make_smartfilter",
    "make_websense",
    "strip_signature_headers",
    "title_contains",
]

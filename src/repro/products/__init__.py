"""URL-filtering product models: vendor databases, portals, block pages."""

from repro.products.base import (
    BlockPageConfig,
    DeploymentContext,
    SIGNATURE_HEADER_NAMES,
    UrlFilterProduct,
    strip_signature_headers,
)
from repro.products.bluecoat import BlueCoatProxySG, CFAUTH_HOST, make_bluecoat
from repro.products.categories import (
    BLUECOAT_TAXONOMY,
    NETSWEEPER_TAXONOMY,
    SMARTFILTER_TAXONOMY,
    TAXONOMIES,
    Taxonomy,
    VendorCategory,
    WEBSENSE_TAXONOMY,
)
from repro.products.database import DatabaseSubscription, DbEntry, UrlDatabase
from repro.products.licensing import LicenseModel, always_active
from repro.products.netsweeper import (
    ADMIN_PORT as NETSWEEPER_ADMIN_PORT,
    CATEGORY_TEST_HOST,
    Netsweeper,
    make_netsweeper,
)
from repro.products.smartfilter import McAfeeSmartFilter, make_smartfilter
from repro.products.submission import (
    ReviewPolicy,
    Submission,
    SubmissionPortal,
    SubmissionStatus,
    SubmitterIdentity,
)
from repro.products.websense import (
    BLOCKPAGE_PORT as WEBSENSE_BLOCKPAGE_PORT,
    Websense,
    make_websense,
)

__all__ = [
    "BLUECOAT_TAXONOMY",
    "BlockPageConfig",
    "BlueCoatProxySG",
    "CATEGORY_TEST_HOST",
    "CFAUTH_HOST",
    "DatabaseSubscription",
    "DbEntry",
    "DeploymentContext",
    "LicenseModel",
    "McAfeeSmartFilter",
    "NETSWEEPER_ADMIN_PORT",
    "NETSWEEPER_TAXONOMY",
    "Netsweeper",
    "ReviewPolicy",
    "SIGNATURE_HEADER_NAMES",
    "SMARTFILTER_TAXONOMY",
    "Submission",
    "SubmissionPortal",
    "SubmissionStatus",
    "SubmitterIdentity",
    "TAXONOMIES",
    "Taxonomy",
    "UrlDatabase",
    "UrlFilterProduct",
    "VendorCategory",
    "WEBSENSE_BLOCKPAGE_PORT",
    "WEBSENSE_TAXONOMY",
    "Websense",
    "always_active",
    "make_bluecoat",
    "make_netsweeper",
    "make_smartfilter",
    "make_websense",
    "strip_signature_headers",
]

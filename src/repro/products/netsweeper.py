"""Netsweeper model.

Three behaviours from the paper are specific to this product:

1. **Deny-page redirects** through the box's own ``:8080/webadmin/deny``
   path (Table 2's Shodan keywords are all webadmin paths).
2. **The access queue** (§4.4, Challenge 2): "Netsweeper queuing Web
   sites for categorization once they have been accessed within the
   country" — any uncategorized URL fetched through a deployment is
   queued, and an analyst categorizes it days later. This is why the
   confirmation methodology cannot pre-validate accessibility for
   Netsweeper.
3. **The category test pages** (§4.4): the vendor operates
   ``denypagetests.netsweeper.com/category/catno/<N>`` for each of its
   66 categories; a deployment blocks exactly the test pages of the
   categories its policy denies, letting an outside observer enumerate
   the blocked categories (catno 23 = Pornography).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.http import Headers, HttpRequest, HttpResponse, html_page, ok_response
from repro.net.url import Url
from repro.products.base import DeploymentContext, UrlFilterProduct
from repro.products.categories import NETSWEEPER_TAXONOMY, VendorCategory
from repro.products.database import DatabaseSubscription
from repro.products.registry import (
    NETSWEEPER,
    REGISTRY,
    BlockPatternSpec,
    ProductSpec,
)
from repro.products.signatures import (
    Evidence,
    ProbeObservation,
    body_contains,
    location_matches,
    title_contains,
)
from repro.products.submission import ContentOracle, HostingOracle, ReviewPolicy
from repro.world.clock import SimTime
from repro.world.entities import ServiceApp

ADMIN_PORT = 8080
CATEGORY_TEST_HOST = "denypagetests.netsweeper.com"


@dataclass
class QueueEntry:
    """An uncategorized host awaiting analyst categorization."""

    host: str
    first_seen: SimTime
    due_at: SimTime


class Netsweeper(UrlFilterProduct):
    """Vendor-side Netsweeper: database, test-a-site portal, access queue."""

    vendor = "Netsweeper"
    category_test_host = CATEGORY_TEST_HOST

    def __init__(
        self,
        content_oracle: ContentOracle,
        rng: random.Random,
        review_policy: Optional[ReviewPolicy] = None,
        hosting_oracle: Optional[HostingOracle] = None,
        queue_min_days: float = 2.0,
        queue_max_days: float = 6.0,
    ) -> None:
        super().__init__(
            NETSWEEPER_TAXONOMY,
            content_oracle,
            rng,
            review_policy=review_policy,
            hosting_oracle=hosting_oracle,
        )
        self._content_oracle = content_oracle
        self._queue: Dict[str, QueueEntry] = {}
        self._queue_min_days = queue_min_days
        self._queue_max_days = queue_max_days

    # -------------------------------------------------------- access queue
    def on_passthrough(self, url: Url, now: SimTime) -> None:
        """Queue an uncategorized host the moment it is seen in traffic."""
        host = url.host
        if host == CATEGORY_TEST_HOST:
            return
        if host in self._queue or self.database.knows(url, now):
            return
        delay = self._rng.uniform(self._queue_min_days, self._queue_max_days)
        self._queue[host] = QueueEntry(host, now, now.plus_days(delay))

    def tick(self, now: SimTime) -> None:
        super().tick(now)
        matured = [e for e in self._queue.values() if e.due_at <= now]
        for entry in matured:
            del self._queue[entry.host]
            content = self._content_oracle(entry.host)
            if content is None:
                continue
            category = self.taxonomy.classify(content)
            if category is None:
                continue
            self.database.add(entry.host, category, now, source="auto_queue")

    @property
    def queued_hosts(self) -> List[str]:
        return sorted(self._queue)

    # --------------------------------------------------------- durability
    def capture_state(self) -> Dict[str, object]:
        state = super().capture_state()
        # Insertion order is preserved: tick() matures entries in queue
        # order, and the order of database adds affects tie-breaking.
        state["queue"] = list(self._queue.values())
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        self._queue = {entry.host: entry for entry in state["queue"]}  # type: ignore[union-attr]

    # ---------------------------------------------------------- decisions
    def decide(
        self,
        url: Url,
        subscription: DatabaseSubscription,
        now: SimTime,
    ) -> Optional[VendorCategory]:
        if url.host == CATEGORY_TEST_HOST:
            return self._test_page_category(url)
        return subscription.lookup(url, now)

    def _test_page_category(self, url: Url) -> Optional[VendorCategory]:
        parts = [p for p in url.path.split("/") if p]
        # Expected: category/catno/<N>
        if len(parts) == 3 and parts[0] == "category" and parts[1] == "catno":
            if parts[2].isdigit():
                return self.taxonomy.by_number(int(parts[2]))
        return None

    # ---------------------------------------------------------- responses
    def block_response(
        self,
        request: HttpRequest,
        category: VendorCategory,
        context: DeploymentContext,
    ) -> HttpResponse:
        from urllib.parse import quote

        target = (
            f"http://{context.box_host}:{ADMIN_PORT}/webadmin/deny/index.php"
            f"?dpid=3&dpruleid=1&cat={category.number}"
            f"&url={quote(str(request.url), safe='')}"
        )
        headers = Headers()
        headers.set("Location", target)
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            302, headers, html_page("Redirect", "<p>redirecting</p>")
        )

    def _deny_page(
        self, request: HttpRequest, context: DeploymentContext
    ) -> HttpResponse:
        params = request.url.query_params()
        catno = params.get("cat", "")
        category = (
            self.taxonomy.by_number(int(catno)) if catno.isdigit() else None
        )
        category_line = (
            f"<p>Category: {category.name} ({category.number})</p>"
            if category
            else ""
        )
        branded = context.config.show_branding
        footer = "<p>Netsweeper Enterprise Filter</p>" if branded else ""
        message = context.config.custom_message or (
            "The page you have requested has been blocked because it "
            "matches a deny policy in effect on this network."
        )
        headers = Headers()
        headers.set("Server", "Apache")
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            200,
            headers,
            html_page(
                "Web Page Blocked" if branded else "Page Blocked",
                f"<h1>Web Page Blocked</h1><p>{message}</p>"
                f"{category_line}{footer}",
            ),
        )

    def admin_apps(self, context: DeploymentContext) -> Dict[int, ServiceApp]:
        def webadmin(request: HttpRequest) -> HttpResponse:
            path = request.url.path
            if path.startswith("/webadmin/deny"):
                return self._deny_page(request, context)
            if path.startswith("/webadmin"):
                headers = Headers()
                headers.set("Server", "Apache")
                headers.set("Content-Type", "text/html; charset=utf-8")
                return HttpResponse(
                    200,
                    headers,
                    html_page(
                        "Netsweeper WebAdmin",
                        "<h1>Netsweeper WebAdmin</h1>"
                        "<form>Username <input name='u'> "
                        "Password <input name='p' type='password'></form>"
                        "<p>&copy; Netsweeper Inc.</p>",
                    ),
                )
            headers = Headers()
            headers.set("Location", "/webadmin/")
            headers.set("Server", "Apache")
            return HttpResponse(302, headers, "")

        return {ADMIN_PORT: webadmin}

    def infrastructure_apps(self) -> Dict[str, ServiceApp]:
        taxonomy = self.taxonomy

        def denypagetests(request: HttpRequest) -> HttpResponse:
            parts = [p for p in request.url.path.split("/") if p]
            if (
                len(parts) == 3
                and parts[0] == "category"
                and parts[1] == "catno"
                and parts[2].isdigit()
            ):
                category = taxonomy.by_number(int(parts[2]))
                if category is not None:
                    return ok_response(
                        f"Deny Page Test - {category.name}",
                        f"<h1>Category test page</h1>"
                        f"<p>This page is categorized as "
                        f"{category.name} (catno {category.number}). If you "
                        "can read this, your filter does not deny this "
                        "category.</p>",
                    )
            index_rows = "".join(
                f'<li><a href="/category/catno/{c.number}">'
                f"{c.number}: {c.name}</a></li>"
                for c in taxonomy.categories
            )
            return ok_response(
                "Netsweeper Deny Page Tests",
                f"<h1>Deny page tests</h1><ul>{index_rows}</ul>",
            )

        return {CATEGORY_TEST_HOST: denypagetests}


def make_netsweeper(*args, **kwargs) -> Netsweeper:
    """Construct a Netsweeper vendor instance (taxonomy is built in)."""
    return Netsweeper(*args, **kwargs)


def netsweeper_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """Built-in detection: Netsweeper branding or the deny-page path.

    A bare ``/webadmin/`` redirect is NOT sufficient — plenty of router
    consoles use that path (the keyword search will surface them as
    candidates); validation demands Netsweeper-specific markers.
    """
    evidence = body_contains(observations, "netsweeper")
    evidence.extend(title_contains(observations, "netsweeper"))
    evidence.extend(
        location_matches(
            observations,
            lambda loc: "/webadmin/deny" in loc.lower(),
            "deny-path",
        )
    )
    return evidence


SPEC = REGISTRY.register(
    ProductSpec(
        name=NETSWEEPER,
        slug="netsweeper",
        order=30,
        paper_default=True,
        shodan_keywords=(
            "netsweeper",
            "webadmin",
            "webadmin/deny",
            "8080/webadmin/",
        ),
        signature=netsweeper_signature,
        signature_note="Netsweeper branding or /webadmin/deny redirect",
        probe_endpoints=((ADMIN_PORT, "/"), (ADMIN_PORT, "/webadmin/")),
        block_patterns=(
            BlockPatternSpec(r"webadmin/deny", "any", False),
            BlockPatternSpec(r"netsweeper", "body", True),
            BlockPatternSpec(r"Web Page Blocked", "body", False),
        ),
        factory=make_netsweeper,
        taxonomy=NETSWEEPER_TAXONOMY,
        # The test-a-site form takes no category field (§4.4), and the
        # access queue means submissions cannot be pre-validated.
        category_requests={},
        pre_validate=False,
        brand_marks=("netsweeper",),
        scrub_tokens=("netsweeper",),
        residue_tokens=("netsweeper",),
        proxy_annotation=None,
        headquarters="Guelph, ON, Canada",
        description="Netsweeper Content Filtering",
        previously_observed=("qa", "ae", "ye"),
    )
)

"""Signature primitives shared by every product's identification surface.

A product spec (see :mod:`repro.products.registry`) carries a *signature
function*: given the WhatWeb probe observations for one host, return the
evidence that this vendor's product is running there. The types and
matcher helpers live here — next to the products, below the scanning
layer — so a vendor module can define its whole identification surface
without importing :mod:`repro.scan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.http import HttpResponse


@dataclass
class ProbeObservation:
    """One WhatWeb probe: the response (if any) at (port, path)."""

    port: int
    path: str
    response: Optional[HttpResponse]


@dataclass
class Evidence:
    """Why a signature matched: the observation kind and the detail."""

    kind: str  # header | title | body | location | realm
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


SignatureFn = Callable[[List[ProbeObservation]], List[Evidence]]


def header_contains(
    observations: List[ProbeObservation], header: str, needle: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        for value in obs.response.headers.get_all(header):
            if needle.lower() in value.lower():
                evidence.append(Evidence("header", f"{header}: {value}"))
    return evidence


def header_present(
    observations: List[ProbeObservation], header: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        value = obs.response.headers.get(header)
        if value is not None:
            evidence.append(Evidence("header", f"{header}: {value}"))
    return evidence


def title_contains(
    observations: List[ProbeObservation], needle: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        title = obs.response.html_title() or ""
        if needle.lower() in title.lower():
            evidence.append(Evidence("title", title))
    return evidence


def body_contains(
    observations: List[ProbeObservation], needle: str
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        if needle.lower() in obs.response.body.lower():
            evidence.append(Evidence("body", needle))
    return evidence


def location_matches(
    observations: List[ProbeObservation],
    predicate: Callable[[str], bool],
    label: str,
) -> List[Evidence]:
    evidence = []
    for obs in observations:
        if obs.response is None:
            continue
        location = obs.response.location
        if location and predicate(location):
            evidence.append(Evidence("location", f"{label}: {location}"))
    return evidence

"""FortiGuard (Fortinet FortiGate) model — the registry's fifth product.

Not part of the IMC'13 study: FortiGate UTM appliances with FortiGuard
Web Filtering are the vendor the India measurement studies document
("Where The Light Gets In", "How India Censors the Web"), observed
serving inline HTTP 200 block pages titled "Web Filter Violation". The
module exists to prove the registry architecture — everything the
pipeline needs (Table 2-style keywords and signature, §5 block-page
regexes, taxonomy, factory) is defined here and registered below;
nothing outside this file mentions the vendor.

``paper_default`` is False, so the paper reproduction is untouched:
the spec only participates when selected explicitly (``--products
FortiGuard`` or a custom-built world).
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.http import Headers, HttpRequest, HttpResponse, html_page, ok_response
from repro.products.base import DeploymentContext, UrlFilterProduct
from repro.products.categories import Taxonomy, VendorCategory
from repro.products.registry import (
    FORTIGUARD,
    REGISTRY,
    BlockPatternSpec,
    ProductSpec,
)
from repro.products.signatures import (
    Evidence,
    ProbeObservation,
    body_contains,
    header_contains,
    title_contains,
)
from repro.world.content import ContentClass
from repro.world.entities import ServiceApp

ADMIN_PORT = 10443
RATING_HOST = "www.fortiguard.com"

_CATEGORY_NAMES = [
    "Proxy Avoidance",
    "Pornography",
    "Nudity and Risque",
    "Dating",
    "Gambling",
    "Drug Abuse",
    "Alcohol",
    "Extremist Groups",
    "Weapons (Sales)",
    "Phishing",
    "Malicious Websites",
    "Political Organizations",
    "Alternative Beliefs",
    "Global Religion",
    "News and Media",
    "Social Networking",
    "Web-based Email",
    "Search Engines and Portals",
    "Translation",
    "Shopping",
    "Sports",
    "Entertainment",
    "Education",
    "Government and Legal Organizations",
    "Health and Wellness",
    "Information Technology",
    "Discrimination",
    "Lingerie and Swimsuit",
    "Homosexuality",
    "Web Hosting",
]

FORTIGUARD_TAXONOMY = Taxonomy(
    "FortiGuard",
    [VendorCategory(i + 1, name) for i, name in enumerate(_CATEGORY_NAMES)],
    {
        ContentClass.PROXY_ANONYMIZER: "Proxy Avoidance",
        ContentClass.VPN_TOOLS: "Proxy Avoidance",
        ContentClass.PORNOGRAPHY: "Pornography",
        ContentClass.ADULT_IMAGES: "Nudity and Risque",
        ContentClass.DATING: "Dating",
        ContentClass.LGBT: "Homosexuality",
        ContentClass.GAMBLING: "Gambling",
        ContentClass.ALCOHOL_DRUGS: "Drug Abuse",
        ContentClass.PHISHING: "Phishing",
        ContentClass.MALWARE: "Malicious Websites",
        ContentClass.MILITANT: "Extremist Groups",
        ContentClass.WEAPONS: "Weapons (Sales)",
        ContentClass.POLITICAL_OPPOSITION: "Political Organizations",
        ContentClass.POLITICAL_REFORM: "Political Organizations",
        ContentClass.HUMAN_RIGHTS: "Political Organizations",
        ContentClass.MEDIA_FREEDOM: "News and Media",
        ContentClass.INDEPENDENT_MEDIA: "News and Media",
        ContentClass.RELIGIOUS_CRITICISM: "Alternative Beliefs",
        ContentClass.MINORITY_RELIGION: "Alternative Beliefs",
        ContentClass.MINORITY_GROUPS: "Discrimination",
        ContentClass.WOMENS_RIGHTS: "Political Organizations",
        ContentClass.SOCIAL_MEDIA: "Social Networking",
        ContentClass.SEARCH_ENGINE: "Search Engines and Portals",
        ContentClass.EMAIL_PROVIDER: "Web-based Email",
        ContentClass.TRANSLATION: "Translation",
        ContentClass.NEWS: "News and Media",
        ContentClass.SHOPPING: "Shopping",
        ContentClass.SPORTS: "Sports",
        ContentClass.ENTERTAINMENT: "Entertainment",
        ContentClass.EDUCATION: "Education",
        ContentClass.GOVERNMENT: "Government and Legal Organizations",
        ContentClass.HEALTH: "Health and Wellness",
        ContentClass.TECHNOLOGY: "Information Technology",
        ContentClass.RELIGION_MAINSTREAM: "Global Religion",
        ContentClass.HOSTING_SERVICE: "Web Hosting",
    },
)


class FortiGuard(UrlFilterProduct):
    """Vendor-side FortiGuard: database + FortiGate inline block surface."""

    vendor = "FortiGuard"

    def block_response(
        self,
        request: HttpRequest,
        category: VendorCategory,
        context: DeploymentContext,
    ) -> HttpResponse:
        config = context.config
        branded = config.show_branding
        title = "Web Filter Violation" if branded else "Access Blocked"
        message = config.custom_message or (
            "You have tried to access a web page which is in violation "
            "of your internet usage policy."
        )
        category_line = f"<p>Category: {category.name}</p>" if branded else ""
        footer = (
            "<p><small>Powered by FortiGuard Web Filtering &mdash; "
            "Fortinet Inc.</small></p>"
            if branded
            else ""
        )
        headers = Headers()
        headers.set("Server", "FortiGate")
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            200,
            headers,
            html_page(
                title,
                f"<h1>Web Page Blocked!</h1><p>{message}</p>"
                f"{category_line}<p>URL: {request.url}</p>{footer}",
            ),
        )

    def admin_apps(self, context: DeploymentContext) -> Dict[int, ServiceApp]:
        def login(request: HttpRequest) -> HttpResponse:
            headers = Headers()
            headers.set("Server", "FortiGate")
            headers.set("Content-Type", "text/html; charset=utf-8")
            return HttpResponse(
                200,
                headers,
                html_page(
                    "FortiGate",
                    "<h1>FortiGate Administrative Console</h1>"
                    "<p>FortiGuard Web Filtering is licensed on this "
                    "unit.</p>",
                ),
            )

        return {80: login, ADMIN_PORT: login}

    def infrastructure_apps(self) -> Dict[str, ServiceApp]:
        taxonomy = self.taxonomy

        def rating_lookup(request: HttpRequest) -> HttpResponse:
            rows = "".join(
                f"<li>{c.number}: {c.name}</li>" for c in taxonomy.categories
            )
            return ok_response(
                "FortiGuard Web Filter Lookup",
                "<h1>FortiGuard Labs web filter lookup</h1>"
                f"<ul>{rows}</ul>",
                server="FortiGuard",
            )

        return {RATING_HOST: rating_lookup}


def make_fortiguard(*args, **kwargs) -> FortiGuard:
    """Construct a FortiGuard vendor instance with the standard taxonomy."""
    return FortiGuard(FORTIGUARD_TAXONOMY, *args, **kwargs)


def fortiguard_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """A FortiGate server banner or FortiGuard block-page branding.

    Deliberately narrower than ``body contains "fortiguard"``: the
    vendor's own rating portal (www.fortiguard.com) mentions the brand
    everywhere, and a signature that matched it would mislocate the
    vendor's hosting country as an installation.
    """
    evidence = header_contains(observations, "Server", "fortigate")
    evidence.extend(title_contains(observations, "web filter violation"))
    evidence.extend(
        body_contains(observations, "fortiguard web filtering is licensed")
    )
    return evidence


SPEC = REGISTRY.register(
    ProductSpec(
        name=FORTIGUARD,
        slug="fortiguard",
        order=50,
        paper_default=False,  # not part of the IMC'13 reproduction
        shodan_keywords=("fortigate", "fortiguard"),
        signature=fortiguard_signature,
        signature_note=(
            "FortiGate server banner or 'Web Filter Violation' block page"
        ),
        probe_endpoints=((ADMIN_PORT, "/"),),
        block_patterns=(
            BlockPatternSpec(r"fortiguard", "body", True),
            BlockPatternSpec(r"fortinet", "body", True),
            # Structural: the policy-violation phrasing survives branding
            # removal.  NOTE the unbranded page still says "Web Page
            # Blocked!", which collides with Netsweeper's structural
            # pattern — the detector's lexicographic tie-break covers it.
            BlockPatternSpec(r"internet usage policy", "body", False),
        ),
        factory=make_fortiguard,
        taxonomy=FORTIGUARD_TAXONOMY,
        category_requests={
            ContentClass.PROXY_ANONYMIZER: "Proxy Avoidance",
            ContentClass.ADULT_IMAGES: "Nudity and Risque",
            ContentClass.PORNOGRAPHY: "Pornography",
        },
        brand_marks=("fortiguard", "fortinet"),
        scrub_tokens=("fortiguard", "fortinet", "fortigate"),
        residue_tokens=("fortiguard",),
        proxy_annotation=None,
        headquarters="Sunnyvale, CA, USA",
        description="FortiGate UTM appliances with FortiGuard Web Filtering",
        previously_observed=("in",),
    )
)

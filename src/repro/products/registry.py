"""The product registry: one spec per vendor, consumed by every layer.

The paper's methodology is explicitly product-parameterized — Table 2
keywords, WhatWeb signatures, and §5 block-page regexes are per-vendor
rows.  :class:`ProductSpec` consolidates everything the pipeline knows
about one vendor; :class:`ProductRegistry` is the lookup the scanning,
measurement, core, world, and analysis layers iterate instead of
hard-coding the 2013 quadruple.  Adding product N+1 is one new module
under :mod:`repro.products` that builds a spec and calls
``REGISTRY.register()`` (see :mod:`repro.products.fortiguard` for the
worked example).

Derived corpora (the Shodan keyword table, the WhatWeb signature map,
the probe plan, the block-page pattern corpus, …) are computed from the
registered specs and cached; registration invalidates the caches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Pattern,
    Sequence,
    Tuple,
)

from repro.products.signatures import SignatureFn
from repro.world.content import ContentClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.products.base import UrlFilterProduct
    from repro.products.categories import Taxonomy

#: Canonical vendor display names.  These are THE constants — every other
#: module re-exports (or deprecates) its copy in favour of these.
BLUE_COAT = "Blue Coat"
SMARTFILTER = "McAfee SmartFilter"
NETSWEEPER = "Netsweeper"
WEBSENSE = "Websense"
FORTIGUARD = "FortiGuard"


@dataclass(frozen=True)
class BlockPatternSpec:
    """One §5 block-page regex: branded (brand strings) or structural."""

    regex: str
    scope: str = "body"  # "headers" | "body" | "any"
    branded: bool = False

    def __post_init__(self) -> None:
        if self.scope not in ("headers", "body", "any"):
            raise ValueError(f"bad pattern scope {self.scope!r}")
        re.compile(self.regex)  # fail fast on bad regexes


@dataclass(frozen=True)
class ProductSpec:
    """Everything the pipeline knows about one URL-filtering product.

    ``factory`` builds the simulated product:
    ``factory(content_oracle, rng, review_policy=..., hosting_oracle=...,
    **vendor_kwargs)``.  The world layer supplies per-scenario arguments
    (review policies are mutable — evasion studies edit them — so specs
    never hold policy *instances*).
    """

    # Identity
    name: str  # canonical display name ("Blue Coat")
    slug: str  # rng-label slug ("bluecoat"), stable across refactors
    order: int  # paper presentation order; registry iteration key
    paper_default: bool  # part of the IMC'13 reproduction defaults?

    # §3 identification (Table 2)
    shodan_keywords: Tuple[str, ...]
    signature: SignatureFn
    signature_note: str  # Table 2 "WhatWeb signature" prose cell
    probe_endpoints: Tuple[Tuple[int, str], ...] = ()  # extra (port, path)

    # §5 block-page corpus
    block_patterns: Tuple[BlockPatternSpec, ...] = ()

    # Simulation
    factory: Optional[Callable[..., "UrlFilterProduct"]] = None
    taxonomy: Optional["Taxonomy"] = None

    # §4 confirmation: vendor form category per probed content class.
    # A key mapped to None means the form takes no category field.
    category_requests: Mapping[ContentClass, Optional[str]] = field(
        default_factory=dict
    )
    #: §4: whether submitted URLs can be pre-validated as uncategorized
    #: (Netsweeper queues accesses instead, §4.4).
    pre_validate: bool = True

    # Branding / residue tokens
    brand_marks: Tuple[str, ...] = ()  # legacy block-page attribution
    scrub_tokens: Tuple[str, ...] = ()  # evasion: strings to scrub
    residue_tokens: Tuple[str, ...] = ()  # netalyzr transit-header needles
    #: (header, value) the appliance stamps on forwarded responses.
    proxy_annotation: Optional[Tuple[str, str]] = None

    # Table 1 metadata
    headquarters: str = ""
    description: str = ""
    previously_observed: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a display name")
        if not self.slug or not re.fullmatch(r"[a-z0-9_]+", self.slug):
            raise ValueError(f"bad slug {self.slug!r} for {self.name}")

    def structural_patterns(self) -> Tuple[BlockPatternSpec, ...]:
        return tuple(p for p in self.block_patterns if not p.branded)


class ProductRegistry:
    """Ordered vendor lookup with derived, cached corpora."""

    def __init__(self) -> None:
        self._specs: Dict[str, ProductSpec] = {}
        self._cache: Dict[object, object] = {}

    # -------------------------------------------------------- registration
    def register(self, spec: ProductSpec, *, replace: bool = False) -> ProductSpec:
        """Validate and add ``spec``; returns it for chaining."""
        if spec.name in self._specs and not replace:
            raise ValueError(f"product {spec.name!r} already registered")
        if not spec.shodan_keywords:
            raise ValueError(f"{spec.name}: at least one Shodan keyword")
        if not callable(spec.signature):
            raise ValueError(f"{spec.name}: signature must be callable")
        if not spec.structural_patterns():
            raise ValueError(
                f"{spec.name}: at least one structural block-page pattern"
            )
        for slug_owner in self._specs.values():
            if slug_owner.name != spec.name and slug_owner.slug == spec.slug:
                raise ValueError(
                    f"{spec.name}: slug {spec.slug!r} already used by "
                    f"{slug_owner.name}"
                )
        if spec.taxonomy is not None:
            for content, label in spec.category_requests.items():
                if label is None:
                    continue
                try:
                    spec.taxonomy.by_name(label)
                except KeyError:
                    raise ValueError(
                        f"{spec.name}: category request {label!r} for "
                        f"{content} is not in the vendor taxonomy"
                    ) from None
        self._specs[spec.name] = spec
        self._cache.clear()
        return spec

    def discover(self, group: str = "repro.products") -> int:
        """Load third-party specs advertised as entry points.

        Each entry point in ``group`` must resolve to a callable taking
        this registry (or to a :class:`ProductSpec`).  Returns the count
        of specs added.  Silently a no-op where ``importlib.metadata``
        is unavailable or nothing is advertised.
        """
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - py<3.8 guard
            return 0
        try:
            points = entry_points(group=group)
        except TypeError:  # pragma: no cover - py<3.10 select API
            points = entry_points().get(group, [])  # type: ignore[call-arg]
        before = len(self._specs)
        for point in points:
            loaded = point.load()
            if isinstance(loaded, ProductSpec):
                self.register(loaded)
            else:
                loaded(self)
        return len(self._specs) - before

    # -------------------------------------------------------------- lookup
    def get(self, name: str) -> ProductSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown product {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def find(self, name: str) -> Optional[ProductSpec]:
        return self._specs.get(name)

    def all(self) -> Tuple[ProductSpec, ...]:
        """Every spec, in (order, name) order — import-order independent."""
        return tuple(
            sorted(self._specs.values(), key=lambda s: (s.order, s.name))
        )

    def defaults(self) -> Tuple[ProductSpec, ...]:
        """The paper-reproduction default products (the 2013 four)."""
        return tuple(s for s in self.all() if s.paper_default)

    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.all())

    def default_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.defaults())

    def resolve(
        self, products: Optional[Sequence[str]] = None
    ) -> Tuple[ProductSpec, ...]:
        """Specs for a selection (None → defaults), in registry order."""
        if products is None:
            return self.defaults()
        wanted = set(products)
        unknown = wanted - set(self._specs)
        if unknown:
            raise KeyError(
                f"unknown products {sorted(unknown)!r}; "
                f"registered: {', '.join(self.names())}"
            )
        return tuple(s for s in self.all() if s.name in wanted)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ProductSpec]:
        return iter(self.all())

    # --------------------------------------------------- derived corpora
    def _memo(self, key: object, build: Callable[[], object]) -> object:
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    def _selection(
        self, products: Optional[Sequence[str]]
    ) -> Tuple[ProductSpec, ...]:
        return self.resolve(tuple(products) if products is not None else None)

    def shodan_keywords(
        self, products: Optional[Sequence[str]] = None
    ) -> Dict[str, List[str]]:
        """Table 2, column "Shodan keywords"."""
        key = ("shodan", tuple(products) if products is not None else None)
        return self._memo(
            key,
            lambda: {
                s.name: list(s.shodan_keywords)
                for s in self._selection(products)
            },
        )  # type: ignore[return-value]

    def whatweb_signatures(
        self, products: Optional[Sequence[str]] = None
    ) -> Dict[str, SignatureFn]:
        """Table 2, column "WhatWeb signature"."""
        key = ("whatweb", tuple(products) if products is not None else None)
        return self._memo(
            key,
            lambda: {s.name: s.signature for s in self._selection(products)},
        )  # type: ignore[return-value]

    def probe_plan(
        self, products: Optional[Sequence[str]] = None
    ) -> Tuple[Tuple[int, str], ...]:
        """The (port, path) pairs WhatWeb requests on a candidate IP.

        Common web ports first, then each selected vendor's distinctive
        endpoints (deduplicated, sorted for determinism), then the open
        proxy port.
        """
        key = ("plan", tuple(products) if products is not None else None)

        def build() -> Tuple[Tuple[int, str], ...]:
            base = [(80, "/"), (443, "/")]
            extras = sorted(
                {
                    endpoint
                    for s in self._selection(products)
                    for endpoint in s.probe_endpoints
                }
            )
            tail = [(3128, "/")]
            plan: List[Tuple[int, str]] = []
            for endpoint in base + extras + tail:
                if endpoint not in plan:
                    plan.append(endpoint)
            return tuple(plan)

        return self._memo(key, build)  # type: ignore[return-value]

    def scan_ports(
        self, products: Optional[Sequence[str]] = None
    ) -> Tuple[int, ...]:
        """Banner-scan ports: the common web set plus vendor extras."""
        key = ("ports", tuple(products) if products is not None else None)

        def build() -> Tuple[int, ...]:
            ports: List[int] = [80, 443, 8080, 8443, 3128]
            for spec in self._selection(products):
                for port, _path in spec.probe_endpoints:
                    if port not in ports:
                        ports.append(port)
            return tuple(ports)

        return self._memo(key, build)  # type: ignore[return-value]

    def block_page_patterns(
        self, products: Optional[Sequence[str]] = None
    ) -> Tuple["CompiledBlockPattern", ...]:
        """The §5 regex corpus, compiled, in registry order."""
        key = ("patterns", tuple(products) if products is not None else None)
        return self._memo(
            key,
            lambda: tuple(
                CompiledBlockPattern(
                    s.name,
                    re.compile(p.regex, re.IGNORECASE),
                    p.scope,
                    p.branded,
                )
                for s in self._selection(products)
                for p in s.block_patterns
            ),
        )  # type: ignore[return-value]

    def brand_marks(self) -> Tuple[Tuple[str, str], ...]:
        """(needle, vendor) pairs for first-match legacy attribution."""
        return self._memo(
            ("brand-marks",),
            lambda: tuple(
                (mark, s.name) for s in self.all() for mark in s.brand_marks
            ),
        )  # type: ignore[return-value]

    def scrub_tokens(self) -> Dict[str, Tuple[str, ...]]:
        """vendor → strings an evading operator scrubs from responses."""
        return self._memo(
            ("scrub",),
            lambda: {s.name: s.scrub_tokens for s in self.all()},
        )  # type: ignore[return-value]

    def residue_attribution(self) -> Tuple[Tuple[str, str], ...]:
        """(needle, vendor) pairs matched against proxy transit headers."""
        return self._memo(
            ("residue",),
            lambda: tuple(
                (token, s.name)
                for s in self.all()
                for token in s.residue_tokens
            ),
        )  # type: ignore[return-value]

    def proxy_annotations(self) -> Dict[str, Tuple[str, str]]:
        """vendor → (header, value) stamped on forwarded responses."""
        return self._memo(
            ("annotations",),
            lambda: {
                s.name: s.proxy_annotation
                for s in self.all()
                if s.proxy_annotation is not None
            },
        )  # type: ignore[return-value]


@dataclass(frozen=True)
class CompiledBlockPattern:
    """One compiled §5 regex attributed to one vendor's block flow."""

    vendor: str
    pattern: Pattern
    scope: str  # "headers" | "body" | "any"
    branded: bool


#: The process-wide registry.  Vendor modules self-register on import;
#: use :func:`default_registry` to get it with the built-ins loaded.
REGISTRY = ProductRegistry()

_BOOTSTRAPPED = False


def default_registry() -> ProductRegistry:
    """The global registry with the built-in products registered.

    Importing a vendor module registers its spec; this imports the five
    built-ins exactly once, then runs entry-point discovery so external
    packages can add products without touching this repo.
    """
    global _BOOTSTRAPPED
    if not _BOOTSTRAPPED:
        _BOOTSTRAPPED = True
        import repro.products.bluecoat  # noqa: F401
        import repro.products.smartfilter  # noqa: F401
        import repro.products.netsweeper  # noqa: F401
        import repro.products.websense  # noqa: F401
        import repro.products.fortiguard  # noqa: F401

        REGISTRY.discover()
    return REGISTRY


def iter_specs(products: Optional[Sequence[str]] = None) -> Iterable[ProductSpec]:
    """Convenience: resolved specs from the bootstrapped registry."""
    return default_registry().resolve(products)

"""Blue Coat ProxySG / WebFilter model.

Identification surface (Table 2): Shodan keywords ``proxysg`` and
``cfru=``; WhatWeb matches ProxySG headers or a Location header pointing
at ``www.cfauth.com``. The ProxySG is a web proxy appliance — §4.5 notes
it is often deployed purely for traffic management with a third-party
engine (SmartFilter) doing the URL filtering; that stacking lives in
:mod:`repro.middlebox.stack`, not here.
"""

from __future__ import annotations

import base64
from typing import Dict

from typing import List

from repro.net.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    html_page,
    ok_response,
)
from repro.products.base import BlockPageConfig, DeploymentContext, UrlFilterProduct
from repro.products.categories import BLUECOAT_TAXONOMY, VendorCategory
from repro.products.registry import (
    BLUE_COAT,
    REGISTRY,
    BlockPatternSpec,
    ProductSpec,
)
from repro.products.signatures import (
    Evidence,
    ProbeObservation,
    header_contains,
    location_matches,
)
from repro.world.content import ContentClass
from repro.world.entities import ServiceApp

CFAUTH_HOST = "www.cfauth.com"


def _cfru_token(url: str) -> str:
    return base64.b64encode(url.encode("utf-8")).decode("ascii").rstrip("=")


class BlueCoatProxySG(UrlFilterProduct):
    """Vendor-side Blue Coat: ProxySG appliance + WebFilter database."""

    vendor = "Blue Coat"

    #: Fraction of deployments configured with cloud-auth redirects is a
    #: deployment matter; the flag picks the block flow for this vendor
    #: instance (both flows carry Table 2 signatures).
    use_cfauth_redirect = True

    def block_response(
        self,
        request: HttpRequest,
        category: VendorCategory,
        context: DeploymentContext,
    ) -> HttpResponse:
        if self.use_cfauth_redirect and not context.config.strip_signature_headers:
            # The cfauth redirect itself is a product signature; masked
            # deployments (§6.1) fall back to a local deny page.
            return self._cfauth_redirect(request)
        return self._deny_page(request, category, context.config)

    def _cfauth_redirect(self, request: HttpRequest) -> HttpResponse:
        token = _cfru_token(str(request.url))
        headers = Headers()
        headers.set("Location", f"http://{CFAUTH_HOST}/?cfru={token}")
        headers.set("Via", "1.1 proxysg (Blue Coat ProxySG)")
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            302, headers, html_page("Redirect", "<p>Content filter redirect</p>")
        )

    def _deny_page(
        self,
        request: HttpRequest,
        category: VendorCategory,
        config: BlockPageConfig,
    ) -> HttpResponse:
        brand = "Blue Coat ProxySG" if config.show_branding else "Gateway"
        message = config.custom_message or (
            "Your request was denied because of its content categorization: "
            f'"{category.name}".'
        )
        headers = Headers()
        headers.set("Server", "Blue Coat ProxySG")
        headers.set("Via", "1.1 proxysg (Blue Coat ProxySG)")
        headers.set("X-Cache", "MISS from proxysg")
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            403,
            headers,
            html_page(
                f"{brand} - Access Denied",
                f"<h1>Access Denied</h1><p>{message}</p>"
                f"<p>URL: {request.url}</p>",
            ),
        )

    def admin_apps(self, context: DeploymentContext) -> Dict[int, ServiceApp]:
        def console(request: HttpRequest) -> HttpResponse:
            headers = Headers()
            headers.set("Server", "Blue Coat ProxySG")
            headers.set("WWW-Authenticate", 'Basic realm="Blue Coat ProxySG"')
            headers.set("Content-Type", "text/html; charset=utf-8")
            return HttpResponse(
                401,
                headers,
                html_page(
                    "Blue Coat ProxySG - Management Console",
                    "<h1>ProxySG Management Console</h1><p>Authentication required.</p>",
                ),
            )

        def proxy_error(request: HttpRequest) -> HttpResponse:
            headers = Headers()
            headers.set("Server", "Blue Coat ProxySG")
            headers.set("Via", "1.1 proxysg (Blue Coat ProxySG)")
            headers.set("Content-Type", "text/html; charset=utf-8")
            return HttpResponse(
                503,
                headers,
                html_page(
                    "Blue Coat ProxySG - Network Error",
                    "<h1>Network Error (tcp_error)</h1>"
                    "<p>A communication error occurred. For assistance, "
                    "contact your network support team.</p>",
                ),
            )

        return {8080: console, 80: proxy_error}

    def infrastructure_apps(self) -> Dict[str, ServiceApp]:
        def cfauth(request: HttpRequest) -> HttpResponse:
            params = request.url.query_params()
            original = params.get("cfru", "")
            return ok_response(
                "Content Filtering",
                "<h1>Access to this site is restricted</h1>"
                f"<p>Request token: {original}</p>"
                "<p><small>Blue Coat Systems, Inc. cloud filtering "
                "service</small></p>",
                server="BCSI",
            )

        return {CFAUTH_HOST: cfauth}


def make_bluecoat(*args, **kwargs) -> BlueCoatProxySG:
    """Construct a Blue Coat vendor instance with the standard taxonomy."""
    return BlueCoatProxySG(BLUECOAT_TAXONOMY, *args, **kwargs)


def bluecoat_signature(observations: List[ProbeObservation]) -> List[Evidence]:
    """Built-in ProxySG detection OR a Location containing www.cfauth.com."""
    evidence: List[Evidence] = []
    for header in ("Server", "Via", "WWW-Authenticate"):
        evidence.extend(header_contains(observations, header, "proxysg"))
        evidence.extend(header_contains(observations, header, "blue coat"))
    evidence.extend(
        location_matches(
            observations, lambda loc: "www.cfauth.com" in loc.lower(), "cfauth"
        )
    )
    return evidence


SPEC = REGISTRY.register(
    ProductSpec(
        name=BLUE_COAT,
        slug="bluecoat",
        order=10,
        paper_default=True,
        shodan_keywords=("proxysg", "cfru="),
        signature=bluecoat_signature,
        signature_note="ProxySG headers or Location contains www.cfauth.com",
        probe_endpoints=((8080, "/"),),
        block_patterns=(
            BlockPatternSpec(r"www\.cfauth\.com", "any", False),
            BlockPatternSpec(r"cfru=", "any", False),
            BlockPatternSpec(r"blue ?coat", "body", True),
            BlockPatternSpec(r"proxysg", "body", True),
            BlockPatternSpec(r"content categorization", "body", False),
        ),
        factory=make_bluecoat,
        taxonomy=BLUECOAT_TAXONOMY,
        category_requests={
            ContentClass.PROXY_ANONYMIZER: "Proxy Avoidance",
            ContentClass.ADULT_IMAGES: "Pornography",
            ContentClass.PORNOGRAPHY: "Pornography",
        },
        brand_marks=("blue coat", "proxysg"),
        scrub_tokens=("blue coat", "bluecoat", "proxysg", "cfauth", "bcsi"),
        residue_tokens=("blue coat", "proxysg"),
        proxy_annotation=("Via", "1.1 proxysg (Blue Coat ProxySG)"),
        headquarters="Sunnyvale, CA, USA",
        description="Web proxy (ProxySG) and URL Filter (Web Filter)",
        previously_observed=("kw", "mm", "eg", "qa", "sa", "sy", "ae"),
    )
)

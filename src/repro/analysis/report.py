"""Markdown report writer for a completed study."""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import (
    render_category_probe,
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.products.registry import NETSWEEPER
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.core.pipeline import StudyReport
    from repro.exec.cache import StudyCaches
    from repro.exec.metrics import Metrics


def write_markdown_report(report: "StudyReport", *, seed: Optional[int] = None) -> str:
    """Render the full campaign as a self-contained markdown document.

    Deliberately excludes execution metrics: the document is a function
    of the scenario alone and stays byte-identical at any worker count.
    Use :func:`write_execution_summary` for the run-shape appendix.
    """
    seed_line = f"Scenario seed: `{seed}`.\n" if seed is not None else ""
    identification = report.identification
    sections = [
        "# URL-Filter Censorship Study — Reproduction Report",
        "",
        "Reproduction of Dalek et al., *A Method for Identifying and "
        "Confirming the Use of URL Filtering Products for Censorship* "
        "(IMC 2013), run against the simulated ground-truth world.",
        seed_line,
        "## Table 1 — Products considered",
        "```", render_table1(), "```",
        "",
        "## Table 2 — Identification methodology",
        "```", render_table2(identification.products or None), "```",
        "",
        "## Figure 1 — Locations of URL filter installations",
        "```", render_figure1(identification), "```",
        "",
        f"- Shodan queries issued: {identification.queries_issued}",
        f"- candidates surfaced: {len(identification.candidates)}",
        f"- validated installations: {len(identification.installations)}",
        f"- rejected by WhatWeb: {len(identification.rejected)}",
        f"- keyword-stage precision: {identification.precision:.2f}",
        "",
        "## Table 3 — Confirmation case studies",
        "```", render_table3(report.confirmations), "```",
        "",
    ]
    if report.category_probe is not None:
        sections += [
            f"## {NETSWEEPER} category probe (YemenNet)",
            "```", render_category_probe(report.category_probe), "```",
            "",
        ]
    if report.characterizations:
        sections += [
            "## Table 4 — Content blocked by confirmed deployments",
            "```", render_table4(report.characterizations), "```",
            "",
        ]
    pairs = report.confirmed_pairs()
    sections += [
        "## Headline finding",
        "",
        "Confirmed product/ISP pairs: "
        + (", ".join(f"**{p}** in `{i}`" for p, i in pairs) or "none")
        + ".",
        "",
    ]
    return "\n".join(sections)


def write_execution_summary(
    metrics: "Metrics", caches: Optional["StudyCaches"] = None
) -> str:
    """Render how a run executed (timings, fan-out, cache traffic).

    Kept separate from :func:`write_markdown_report` because timings are
    not deterministic; callers opt in via ``repro study --metrics``.
    """
    sections = ["## Execution summary", ""]
    sections += ["```", metrics.summary(), "```", ""]
    if caches is not None:
        sections += ["```", "\n".join(caches.summary_lines()), "```", ""]
    return "\n".join(sections)

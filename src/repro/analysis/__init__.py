"""Analysis: published targets, table renderers, aggregation helpers."""

from repro.analysis.paper_data import (
    PAPER_FIGURE1,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_YEMEN_PROBE_CATEGORIES,
    Table1Row,
    Table3Row,
    Table4Row,
)
from repro.analysis.export import (
    characterization_rows,
    confirmations_rows,
    installations_rows,
    to_csv,
    to_json,
)
from repro.analysis.report import write_markdown_report
from repro.analysis.stats import mean, proportion_ci, rate_table, stddev, tally
from repro.analysis.validation import ArtifactCheck, Scorecard, validate_report
from repro.analysis.tables import (
    render_category_probe,
    render_figure1,
    render_paper_table5,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "ArtifactCheck",
    "PAPER_FIGURE1",
    "Scorecard",
    "characterization_rows",
    "confirmations_rows",
    "installations_rows",
    "to_csv",
    "to_json",
    "validate_report",
    "write_markdown_report",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_YEMEN_PROBE_CATEGORIES",
    "Table1Row",
    "Table3Row",
    "Table4Row",
    "mean",
    "proportion_ci",
    "rate_table",
    "render_category_probe",
    "render_figure1",
    "render_paper_table5",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "stddev",
    "tally",
]

"""Text renderers for the paper's tables and figure.

Each ``render_*`` function takes pipeline outputs and returns the
monospace table the benchmark harness prints, side by side with the
paper's published values where applicable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.paper_data import (
    PAPER_FIGURE1,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_YEMEN_PROBE_CATEGORIES,
    Table3Row,
)
from repro.core.characterize import CharacterizationResult
from repro.core.confirm import CategoryProbeResult, ConfirmationResult
from repro.core.identify import IdentificationReport
from repro.measure.testlists import Table4Column
from repro.products.registry import NETSWEEPER, default_registry


def _grid(rows: Sequence[Sequence[str]], header: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    columns = len(header)
    widths = [len(h) for h in header]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = []
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(divider)
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1: the product inventory."""
    rows = [
        (
            row.company,
            row.headquarters,
            row.description,
            ", ".join(code.upper() for code in row.previously_observed),
        )
        for row in PAPER_TABLE1
    ]
    return _grid(
        rows, ("Company", "Headquarters", "Product description", "Previously observed")
    )


def render_table2(products: Optional[Sequence[str]] = None) -> str:
    """Table 2: identification keywords and validation signatures.

    Keywords and signature notes come straight off the registry specs;
    ``products`` restricts the rows (default: the paper's four vendors).
    """
    rows = [
        (spec.name, ", ".join(spec.shodan_keywords), spec.signature_note)
        for spec in default_registry().resolve(products)
    ]
    return _grid(rows, ("Product", "Shodan keywords", "WhatWeb signature"))


def render_figure1(report: IdentificationReport) -> str:
    """Figure 1: countries per product, measured vs paper."""
    rows = []
    product_names = report.products or default_registry().default_names()
    for product in product_names:
        measured = sorted(code.upper() for code in report.countries(product))
        expected = sorted(
            code.upper() for code in PAPER_FIGURE1.get(product, frozenset())
        )
        rows.append(
            (
                product,
                ", ".join(measured),
                ", ".join(expected),
                "match" if measured == expected else "DIFFERS",
            )
        )
    return _grid(rows, ("Product", "Measured countries", "Paper countries", ""))


def render_table3(
    confirmations: Iterable[ConfirmationResult],
    paper_rows: Optional[Sequence[Table3Row]] = None,
    *,
    show_confidence: bool = False,
) -> str:
    """Table 3: case studies, measured vs paper.

    ``paper_rows`` restricts rendering to a subset of published rows
    (the CLI's single-case view); default is the whole table.
    ``show_confidence`` appends a fused-confidence column plus one
    annotation line per case study summarizing which classifiers fired;
    off by default so the paper-default rendering stays byte-identical.
    """
    results = list(confirmations)

    def find(row: Table3Row) -> Optional[ConfirmationResult]:
        for result in results:
            cfg = result.config
            if (
                cfg.product_name == row.product
                and cfg.isp_name == row.isp_key
                and cfg.category_label == row.category
            ):
                return result
        return None

    rows = []
    annotations: List[str] = []
    for paper_row in (paper_rows if paper_rows is not None else PAPER_TABLE3):
        result = find(paper_row)
        if result is None:
            measured_blocked = "n/a"
            measured_confirmed = "n/a"
            confidence = "n/a"
        else:
            measured_blocked = (
                f"{result.blocked_submitted}/{len(result.submitted_outcomes)}"
            )
            measured_confirmed = "yes" if result.confirmed else "no"
            if show_confidence:
                confidence = f"{getattr(result, 'confidence', 1.0):.2f}"
                signals = result.signal_summary()
                fired = (
                    ", ".join(
                        f"{name}x{count}"
                        for name, count in signals.items()
                    )
                    if signals
                    else "none"
                )
                annotations.append(
                    f"  {paper_row.product} @ {paper_row.isp_label}"
                    f" [{paper_row.category}]: signals {fired}"
                )
        row = [
            paper_row.product,
            paper_row.country_code.upper(),
            f"{paper_row.isp_label} (AS {paper_row.asn})",
            f"{paper_row.date[1]}/{paper_row.date[0]}",
            f"{paper_row.submitted}/{paper_row.total}",
            paper_row.category,
            f"{paper_row.blocked}/{paper_row.submitted}",
            measured_blocked,
            "yes" if paper_row.confirmed else "no",
            measured_confirmed,
        ]
        if show_confidence:
            row.append(confidence)
        rows.append(tuple(row))
    header = [
        "Product", "Country", "ISP", "Date", "Submitted", "Category",
        "Paper blocked", "Measured blocked", "Paper ok", "Measured ok",
    ]
    if show_confidence:
        header.append("Confidence")
    rendered = _grid(rows, tuple(header))
    if show_confidence and annotations:
        rendered += "\n\nFused signals per case study:\n" + "\n".join(
            annotations
        )
    return rendered


def render_table4(
    characterizations: Dict[str, CharacterizationResult],
    *,
    show_confidence: bool = False,
) -> str:
    """Table 4: blocked rights-protected content, measured vs paper.

    ``show_confidence`` appends a mean fused-confidence column plus one
    annotation line per deployment summarizing the classifiers that
    fired; off by default to keep the paper rendering byte-identical.
    """
    columns = list(Table4Column)
    header = ["Product", "Where"] + [c.value for c in columns] + [""]
    if show_confidence:
        header.append("Confidence")
    rows = []
    annotations: List[str] = []
    for paper_row in PAPER_TABLE4:
        result = characterizations.get(paper_row.isp_key)
        measured: Set[Table4Column] = (
            result.table4_columns() if result else set()
        )
        cells = []
        for column in columns:
            paper_mark = "x" if column in paper_row.columns else "."
            measured_mark = "x" if column in measured else "."
            cells.append(
                paper_mark if paper_mark == measured_mark else
                f"{measured_mark}(paper {paper_mark})"
            )
        row = (
            [
                paper_row.product,
                f"{paper_row.country_code.upper()} (AS {paper_row.asn})",
            ]
            + cells
            + ["match" if measured == set(paper_row.columns) else "DIFFERS"]
        )
        if show_confidence:
            row.append(
                f"{getattr(result, 'confidence', 1.0):.2f}"
                if result
                else "n/a"
            )
            if result is not None:
                signals = result.signal_summary()
                fired = (
                    ", ".join(
                        f"{name}x{count}"
                        for name, count in signals.items()
                    )
                    if signals
                    else "none"
                )
                annotations.append(
                    f"  {paper_row.product} @ {paper_row.isp_key}:"
                    f" signals {fired}"
                )
        rows.append(row)
    rendered = _grid(rows, header)
    if show_confidence and annotations:
        rendered += "\n\nFused signals per deployment:\n" + "\n".join(
            annotations
        )
    return rendered


def render_category_probe(probe: CategoryProbeResult) -> str:
    """§4.4: the YemenNet denypagetests probe, measured vs paper."""
    measured = set(probe.blocked_names)
    expected = set(PAPER_YEMEN_PROBE_CATEGORIES)
    rows = [
        (
            name,
            "blocked" if name in measured else "",
            "blocked" if name in expected else "",
        )
        for name in sorted(measured | expected)
    ]
    status = "match" if measured == expected else "DIFFERS"
    return (
        _grid(rows, (f"{NETSWEEPER} category", "Measured", "Paper"))
        + f"\n({probe.tested} categories probed; {status})"
    )


def render_table5(outcomes: Sequence) -> str:
    """Table 5: evasion tactics vs pipeline stages.

    ``outcomes`` are :class:`repro.core.evasion.EvasionOutcome` rows.
    """
    rows = [
        (
            outcome.tactic,
            "yes" if outcome.located else "no",
            "yes" if outcome.validated else "no",
            "yes" if outcome.confirmed else "no",
            outcome.note,
        )
        for outcome in outcomes
    ]
    return _grid(
        rows, ("Tactic", "Located", "Validated", "Confirmed", "Note")
    )


def render_paper_table5() -> str:
    rows = list(PAPER_TABLE5)
    return _grid(rows, ("Step", "Limitation", "Evasion tactic"))

"""The paper's published results, encoded for comparison.

These constants are the *targets* benchmarks compare against; the
pipelines never read them. Where the source text is ambiguous (Table 4
cell marks are partially illegible in the available copy), the encoded
values are reconstructions and are flagged as such in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.measure.testlists import Table4Column
from repro.products.registry import (
    BLUE_COAT,
    NETSWEEPER,
    SMARTFILTER,
    WEBSENSE,
    default_registry,
)


@dataclass(frozen=True)
class Table1Row:
    company: str
    headquarters: str
    description: str
    previously_observed: Tuple[str, ...]


#: Table 1 is the one published table whose cells are vendor *facts*
#: (headquarters, product line, previously observed countries) rather
#: than measurement results, so it is derived from the registry specs —
#: the registry is the single source of vendor knowledge.
PAPER_TABLE1: Sequence[Table1Row] = tuple(
    Table1Row(
        spec.name,
        spec.headquarters,
        spec.description,
        tuple(spec.previously_observed),
    )
    for spec in default_registry().defaults()
)


@dataclass(frozen=True)
class Table3Row:
    """One published case study."""

    product: str
    country_code: str
    isp_label: str
    isp_key: str  # scenario ISP key
    asn: int
    date: Tuple[int, int]  # (year, month)
    submitted: int
    total: int
    category: str
    blocked: int
    confirmed: bool


PAPER_TABLE3: Sequence[Table3Row] = (
    Table3Row(BLUE_COAT, "ae", "Etisalat", "etisalat", 5384, (2013, 4),
              3, 6, "Proxy Avoidance", 0, False),
    Table3Row(BLUE_COAT, "qa", "Ooredoo", "ooredoo", 42298, (2013, 4),
              3, 6, "Proxy Avoidance", 0, False),
    Table3Row(SMARTFILTER, "qa", "Ooredoo", "ooredoo", 42298, (2013, 4),
              5, 10, "Pornography", 0, False),
    Table3Row(SMARTFILTER, "sa", "Bayanat Al-Oula", "bayanat", 48237,
              (2012, 9), 5, 10, "Pornography", 5, True),
    Table3Row(SMARTFILTER, "sa", "Nournet", "nournet", 29684, (2013, 5),
              5, 10, "Pornography", 5, True),
    Table3Row(SMARTFILTER, "ae", "Etisalat", "etisalat", 5384, (2012, 9),
              5, 10, "Anonymizers", 5, True),
    Table3Row(SMARTFILTER, "ae", "Etisalat", "etisalat", 5384, (2013, 4),
              5, 10, "Pornography", 5, True),
    Table3Row(NETSWEEPER, "qa", "Ooredoo", "ooredoo", 42298, (2013, 8),
              6, 12, "Proxy anonymizer", 6, True),
    Table3Row(NETSWEEPER, "ae", "Du", "du", 15802, (2013, 3),
              6, 12, "Proxy anonymizer", 5, True),
    Table3Row(NETSWEEPER, "ye", "YemenNet", "yemennet", 12486, (2013, 3),
              6, 12, "Proxy anonymizer", 6, True),
)

#: Figure 1 / §3.2: countries where the scan-based identification finds
#: each product (ground truth of the scenario's *visible* deployments).
PAPER_FIGURE1: Dict[str, FrozenSet[str]] = {
    BLUE_COAT: frozenset(
        ["ae", "qa", "sa", "sy", "mm", "eg", "kw", "us",
         "ar", "cl", "fi", "se", "ph", "th", "tw", "il", "lb"]
    ),
    SMARTFILTER: frozenset(["ae", "sa", "pk", "us"]),
    NETSWEEPER: frozenset(["ae", "qa", "ye", "us"]),
    WEBSENSE: frozenset(["us"]),
}

#: §4.4: the YemenNet category probe's expected findings.
PAPER_YEMEN_PROBE_CATEGORIES: FrozenSet[str] = frozenset(
    ["Adult Images", "Phishing", "Pornography", "Proxy Anonymizer",
     "Search Keywords"]
)


@dataclass(frozen=True)
class Table4Row:
    product: str
    country_code: str
    asn: int
    isp_key: str
    columns: FrozenSet[Table4Column]


#: Table 4 (documented reconstruction — exact cells are partially
#: illegible in the source; the encoded marks follow §5's narrative and
#: the per-ISP policies in the scenario).
PAPER_TABLE4: Sequence[Table4Row] = (
    Table4Row(SMARTFILTER, "ae", 5384, "etisalat", frozenset({
        Table4Column.MEDIA_FREEDOM,
        Table4Column.LGBT,
        Table4Column.RELIGIOUS_CRITICISM,
        Table4Column.MINORITY_GROUPS,
    })),
    Table4Row(NETSWEEPER, "ye", 12486, "yemennet", frozenset({
        Table4Column.MEDIA_FREEDOM,
        Table4Column.HUMAN_RIGHTS,
        Table4Column.POLITICAL_REFORM,
    })),
    Table4Row(NETSWEEPER, "ae", 15802, "du", frozenset({
        Table4Column.HUMAN_RIGHTS,
        Table4Column.POLITICAL_REFORM,
        Table4Column.LGBT,
        Table4Column.RELIGIOUS_CRITICISM,
    })),
    Table4Row(NETSWEEPER, "qa", 42298, "ooredoo", frozenset({
        Table4Column.LGBT,
        Table4Column.MINORITY_GROUPS,
    })),
)

#: Table 5: (step, limitation, evasion) — the qualitative claims E10
#: verifies: each tactic kills its step but leaves confirmation intact.
PAPER_TABLE5: Sequence[Tuple[str, str, str]] = (
    ("Identify installations (§3.1)",
     "Can only identify externally visible installations",
     "Do not allow device to be accessed externally"),
    ("Validate installations (§3.1)",
     "Requires distinctive use of protocol headers",
     "Remove evidence of product from headers"),
    ("Confirm censorship (§4)",
     "Requires in-country testers, category knowledge, and domains",
     "Vendors may identify and disregard submissions (non-trivial)"),
)

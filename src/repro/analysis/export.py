"""Structured export of study results (JSON / CSV).

The paper publishes its data (§1 footnote: "Data available at ..."); a
reproduction should too. These exporters flatten a
:class:`~repro.core.pipeline.StudyReport` into machine-readable rows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.core.pipeline import StudyReport


def installations_rows(report: "StudyReport") -> List[Dict[str, Any]]:
    """Figure 1 backing data: one row per validated installation."""
    return [
        {
            "ip": str(installation.ip),
            "product": installation.product,
            "country": installation.country_code,
            "asn": installation.asn,
            "as_name": installation.as_name,
            "org_name": installation.org_name,
            "org_kind": installation.org_kind.value
            if installation.org_kind
            else None,
            "evidence": [str(e) for e in installation.evidence],
        }
        for installation in report.identification.installations
    ]


def confirmations_rows(
    report: "StudyReport", *, include_confidence: bool = False
) -> List[Dict[str, Any]]:
    """Table 3 backing data: one row per case study.

    ``include_confidence`` adds the fused verdict confidence and the
    per-classifier signal breakdown. Off by default: the extra keys
    change row bytes, and the default export (like default epoch ids)
    must stay byte-identical to pre-fusion output.
    """
    rows = []
    for result in report.confirmations:
        config = result.config
        row = {
            "product": config.product_name,
            "isp": config.isp_name,
            "category": config.category_label,
            "submitted_at": str(result.submitted_at),
            "retested_at": str(result.retested_at),
            "domains_total": config.total_domains,
            "domains_submitted": config.submit_count,
            "blocked_submitted": result.blocked_submitted,
            "blocked_control": result.blocked_control,
            "confirmed": result.confirmed,
            "pre_check_accessible": result.pre_check_accessible,
        }
        if include_confidence:
            row["confidence"] = round(result.confidence, 4)
            row["signals"] = result.signal_summary()
        rows.append(row)
    return rows


def characterization_rows(
    report: "StudyReport", *, include_confidence: bool = False
) -> List[Dict[str, Any]]:
    """Table 4 backing data: one row per (ISP, list category)."""
    rows = []
    for isp_key, result in sorted(report.characterizations.items()):
        for name, stats in sorted(result.stats.items()):
            row = {
                "isp": isp_key,
                "asn": result.asn,
                "country": result.country_code,
                "product": result.product_name,
                "category": name,
                "theme": stats.category.theme.value,
                "tested": stats.tested,
                "blocked": stats.blocked,
                "table4_column": stats.category.table4_column.value
                if stats.category.table4_column
                else None,
            }
            if include_confidence:
                row["confidence"] = round(stats.mean_confidence, 4)
                row["signals"] = dict(sorted(stats.signal_counts.items()))
            rows.append(row)
    return rows


def to_json(report: "StudyReport", *, indent: int = 2) -> str:
    """The whole campaign as one JSON document."""
    document = {
        "installations": installations_rows(report),
        "confirmations": confirmations_rows(report),
        "characterization": characterization_rows(report),
    }
    if report.category_probe is not None:
        document["category_probe"] = {
            "isp": report.category_probe.isp_name,
            "probed_at": str(report.category_probe.probed_at),
            "tested": report.category_probe.tested,
            "blocked": report.category_probe.blocked_names,
        }
    return json.dumps(document, indent=indent, sort_keys=True)


def to_csv(rows: List[Dict[str, Any]]) -> str:
    """Render flat row dicts as CSV (lists joined with ``;``)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    for row in rows:
        writer.writerow(
            {
                key: ";".join(value) if isinstance(value, list) else value
                for key, value in row.items()
            }
        )
    return buffer.getvalue()

"""Reproduction scorecard: programmatic paper-vs-measured validation.

Turns a :class:`~repro.core.pipeline.StudyReport` into a list of
pass/fail checks against the encoded published values — the same
comparisons the benchmark harness asserts, packaged for the CLI and for
downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.paper_data import (
    PAPER_FIGURE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_YEMEN_PROBE_CATEGORIES,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.core.pipeline import StudyReport


@dataclass(frozen=True)
class ArtifactCheck:
    """One paper-vs-measured comparison."""

    artifact: str  # "figure1" | "table3" | "probe" | "table4"
    name: str
    matched: bool
    detail: str = ""


@dataclass
class Scorecard:
    checks: List[ArtifactCheck] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for check in self.checks if check.matched)

    @property
    def total(self) -> int:
        return len(self.checks)

    @property
    def all_matched(self) -> bool:
        return self.passed == self.total

    def failures(self) -> List[ArtifactCheck]:
        return [check for check in self.checks if not check.matched]

    def by_artifact(self, artifact: str) -> List[ArtifactCheck]:
        return [check for check in self.checks if check.artifact == artifact]

    def summary(self) -> str:
        status = "EXACT MATCH" if self.all_matched else "DIFFERENCES"
        lines = [f"reproduction scorecard: {self.passed}/{self.total} checks — {status}"]
        for check in self.failures():
            lines.append(f"  DIFFERS [{check.artifact}] {check.name}: {check.detail}")
        return "\n".join(lines)


def validate_report(report: "StudyReport") -> Scorecard:
    """Compare every artifact of a completed campaign to the paper."""
    scorecard = Scorecard()

    measured_map = report.identification.country_map()
    for product, expected in PAPER_FIGURE1.items():
        measured = measured_map.get(product, set())
        scorecard.checks.append(
            ArtifactCheck(
                "figure1",
                product,
                measured == set(expected),
                f"measured {sorted(measured)} vs paper {sorted(expected)}",
            )
        )

    for row in PAPER_TABLE3:
        result = report.confirmation_for(row.product, row.isp_key, row.category)
        if result is None:
            scorecard.checks.append(
                ArtifactCheck(
                    "table3",
                    f"{row.product}/{row.isp_key}/{row.category}",
                    False,
                    "case study missing",
                )
            )
            continue
        matched = (
            result.blocked_submitted == row.blocked
            and result.confirmed == row.confirmed
        )
        scorecard.checks.append(
            ArtifactCheck(
                "table3",
                f"{row.product}/{row.isp_key}/{row.category}",
                matched,
                f"measured {result.blocked_submitted}/{row.submitted} "
                f"({'yes' if result.confirmed else 'no'}) vs paper "
                f"{row.blocked}/{row.submitted} "
                f"({'yes' if row.confirmed else 'no'})",
            )
        )

    if report.category_probe is not None:
        measured_probe = set(report.category_probe.blocked_names)
        expected_probe = set(PAPER_YEMEN_PROBE_CATEGORIES)
        scorecard.checks.append(
            ArtifactCheck(
                "probe",
                "yemennet denypagetests",
                measured_probe == expected_probe,
                f"measured {sorted(measured_probe)} vs paper "
                f"{sorted(expected_probe)}",
            )
        )

    for row in PAPER_TABLE4:
        characterization = report.characterizations.get(row.isp_key)
        if characterization is None:
            scorecard.checks.append(
                ArtifactCheck(
                    "table4", row.isp_key, False, "characterization missing"
                )
            )
            continue
        measured_columns = characterization.table4_columns()
        scorecard.checks.append(
            ArtifactCheck(
                "table4",
                f"{row.product} @ {row.isp_key}",
                measured_columns == set(row.columns),
                f"measured {sorted(c.value for c in measured_columns)} vs "
                f"paper {sorted(c.value for c in row.columns)}",
            )
        )
    return scorecard

"""Small aggregation helpers used by benchmarks and reports."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def proportion_ci(successes: int, trials: int) -> Tuple[float, float]:
    """Wilson 95% confidence interval for a proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    z = 1.959963984540054
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    # The Wilson interval contains the point estimate by construction;
    # guard against floating-point drift at the p = 0 and p = 1 edges.
    low = min(max(0.0, center - margin), p)
    high = max(min(1.0, center + margin), p)
    return (low, high)


def tally(items: Iterable) -> Dict:
    counts: Dict = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    return counts


def rate_table(counts: Dict, total: int) -> List[Tuple[str, int, float]]:
    """(key, count, fraction) rows sorted by count descending."""
    if total <= 0:
        raise ValueError("total must be positive")
    return sorted(
        ((str(k), v, v / total) for k, v in counts.items()),
        key=lambda row: -row[1],
    )

"""Search-based blocked-URL discovery (FilteredWeb-style workload).

The paper characterizes censorship only over fixed global/local test
lists; this package implements the modern follow-on: crawl outward from
known-blocked URLs, extract candidate keywords and links from origin
content, query a simulated search index, and probe the candidates from
a censored vantage — expanding the blocked-URL list far beyond what
the static Table 4 lists contain.
"""

from repro.discover.crawler import (
    CoverageReport,
    DiscoveryConfig,
    DiscoveryEngine,
    DiscoveryResult,
    RoundTrace,
    static_baseline,
)
from repro.discover.index import SearchIndex, SearchPage

__all__ = [
    "CoverageReport",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "RoundTrace",
    "SearchIndex",
    "SearchPage",
    "static_baseline",
]

"""A simulated search-engine oracle over the world's HTTP content.

FilteredWeb drives discovery with a real search engine (Bing); here the
stand-in is an inverted index built over every registered website's
pages — the view an *uncensored* search crawler would have of the web.
Queries return ranked, paginated results under an optional total-query
budget, mirroring the API quota a real engine imposes.

Determinism: the index is built over ``sorted(world.websites)`` and
postings are ranked by ``(-term_frequency, url)``, so the same world
always yields byte-identical result pages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["QueryBudgetExhausted", "SearchIndex", "SearchPage", "tokenize"]

_TOKEN = re.compile(r"[a-z]{4,}")
_TAG = re.compile(r"<[^>]+>")

#: Boilerplate the tokenizer drops: markup vocabulary and page chrome
#: that would otherwise dominate every posting list.
STOPWORDS = frozenset(
    {
        "article", "charset", "content", "coverage", "directory", "href",
        "html", "http", "https", "nav", "nginx", "notes", "related",
        "sites", "tags", "text", "title", "utf",
    }
)


def tokenize(text: str) -> List[str]:
    """Lowercased alphabetic terms (>= 4 chars) with markup stripped."""
    plain = _TAG.sub(" ", text).lower()
    return [t for t in _TOKEN.findall(plain) if t not in STOPWORDS]


class QueryBudgetExhausted(RuntimeError):
    """The index's total query quota has been spent."""


@dataclass(frozen=True)
class SearchPage:
    """One page of ranked results for a query."""

    term: str
    page: int
    per_page: int
    total: int
    results: Tuple[str, ...]  # URL strings, ranked

    @property
    def has_next(self) -> bool:
        return self.page * self.per_page < self.total


@dataclass
class SearchIndex:
    """Inverted index: term -> ranked postings of page URLs."""

    postings: Dict[str, List[str]] = field(default_factory=dict)
    page_count: int = 0
    #: Total queries allowed before :class:`QueryBudgetExhausted`;
    #: ``None`` means unmetered.
    query_budget: Optional[int] = None
    queries_issued: int = 0

    @classmethod
    def build(
        cls, world, *, query_budget: Optional[int] = None
    ) -> "SearchIndex":
        """Index every page of every registered website."""
        frequencies: Dict[str, List[Tuple[int, str]]] = {}
        page_count = 0
        for domain in sorted(world.websites):
            site = world.websites[domain]
            for path in sorted(site.pages):
                url = f"http://{domain}{path}"
                counts: Dict[str, int] = {}
                for term in tokenize(site.pages[path].body):
                    counts[term] = counts.get(term, 0) + 1
                for term, count in counts.items():
                    frequencies.setdefault(term, []).append((count, url))
                page_count += 1
        postings = {
            term: [url for count, url in sorted(entries, key=_rank)]
            for term, entries in frequencies.items()
        }
        return cls(
            postings=postings, page_count=page_count, query_budget=query_budget
        )

    def query(
        self, term: str, *, page: int = 1, per_page: int = 20
    ) -> SearchPage:
        """Ranked results for ``term``; raises once the budget is spent."""
        if page < 1 or per_page < 1:
            raise ValueError("page and per_page must be >= 1")
        if (
            self.query_budget is not None
            and self.queries_issued >= self.query_budget
        ):
            raise QueryBudgetExhausted(
                f"query budget of {self.query_budget} spent"
            )
        self.queries_issued += 1
        ranked = self.postings.get(term.lower(), [])
        start = (page - 1) * per_page
        return SearchPage(
            term=term.lower(),
            page=page,
            per_page=per_page,
            total=len(ranked),
            results=tuple(ranked[start:start + per_page]),
        )

    @property
    def term_count(self) -> int:
        return len(self.postings)


def _rank(entry: Tuple[int, str]) -> Tuple[int, str]:
    count, url = entry
    return (-count, url)

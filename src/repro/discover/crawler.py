"""Iterative search-based discovery of blocked URLs.

The engine reproduces the FilteredWeb loop against the simulated world:

1. probe a frontier of candidate URLs from a *censored* vantage via
   :class:`~repro.measure.client.MeasurementClient` (so block pages —
   not origin content — are what the censored side sees);
2. for each URL the fused verdict marks blocked, mine the *lab* (i.e.
   uncensored) copy of the page for outbound links and high-frequency
   keywords;
3. query the simulated search index with the new keywords and enqueue
   ranked results plus extracted links as the next frontier;
4. stop when a round admits zero new blocked URLs (convergence) or the
   round budget runs out.

Determinism: probes fan out through ``repro.exec`` in submission order,
extraction walks results in batch order, and every queue is
insertion-ordered with set-based dedup — so the discovered list and the
convergence trace are byte-identical at any worker count.

The PR-3 invariant holds by construction: a quarantined probe comes
back INSUFFICIENT with zero confidence, and the admission gate requires
``blocked and not insufficient`` — faults can stall discovery, never
pad it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.discover.index import (
    QueryBudgetExhausted,
    SearchIndex,
    tokenize,
)
from repro.exec.executor import Executor
from repro.exec.resilience import ResilientRunner
from repro.measure.classifiers.fusion import VerdictEngine
from repro.measure.client import MeasurementClient, UrlTest
from repro.measure.testlists import build_global_list, build_local_list
from repro.net.errors import UrlError
from repro.net.url import Url
from repro.world.entities import WebSite
from repro.world.world import World

__all__ = [
    "Candidate",
    "CoverageReport",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "RoundTrace",
    "static_baseline",
]

_HREF = re.compile(r'href="([^"]+)"')


@dataclass(frozen=True)
class DiscoveryConfig:
    """Budgets and termination knobs for one discovery run."""

    max_rounds: int = 20
    #: Keywords mined per blocked page (top terms by frequency).
    keywords_per_page: int = 6
    #: Search queries issued per round.
    queries_per_round: int = 12
    #: Ranked results consumed per query (first result page).
    results_per_query: int = 20
    #: Probes allowed per registered domain over the whole run.
    per_domain_budget: int = 2
    #: Probes per round (frontier overflow carries to the next round).
    max_probes_per_round: int = 160

    def __post_init__(self) -> None:
        for name in (
            "max_rounds",
            "keywords_per_page",
            "queries_per_round",
            "results_per_query",
            "per_domain_budget",
            "max_probes_per_round",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    def identity(self) -> Dict[str, int]:
        return {
            "max_rounds": self.max_rounds,
            "keywords_per_page": self.keywords_per_page,
            "queries_per_round": self.queries_per_round,
            "results_per_query": self.results_per_query,
            "per_domain_budget": self.per_domain_budget,
            "max_probes_per_round": self.max_probes_per_round,
        }


@dataclass(frozen=True)
class Candidate:
    """One probed URL and what the verdict engine said about it."""

    url: str
    source: str  # "seed" | "link" | "search"
    round_index: int
    verdict: str
    blocked: bool
    insufficient: bool
    vendor: Optional[str]
    confidence: float


@dataclass(frozen=True)
class RoundTrace:
    """Per-round convergence accounting."""

    index: int
    probed: int
    new_blocked: int
    insufficient: int
    queries_issued: int
    enqueued: int

    def line(self) -> str:
        return (
            f"round={self.index} probed={self.probed} "
            f"new_blocked={self.new_blocked} "
            f"insufficient={self.insufficient} "
            f"queries={self.queries_issued} enqueued={self.enqueued}"
        )


@dataclass
class DiscoveryResult:
    """Everything one discovery run produced."""

    isp_name: str
    seed_urls: List[str]
    rounds: List[RoundTrace]
    candidates: List[Candidate]
    blocked_urls: List[str]  # sorted, deduped, admitted URLs
    converged: bool
    config: DiscoveryConfig = field(default_factory=DiscoveryConfig)

    @property
    def blocked_hosts(self) -> List[str]:
        return sorted({Url.parse(u).host for u in self.blocked_urls})

    @property
    def insufficient_count(self) -> int:
        return sum(1 for c in self.candidates if c.insufficient)

    def discovered_list_text(self) -> str:
        """The discovered blocked-URL list, byte-stable."""
        return "".join(f"{u}\n" for u in self.blocked_urls)

    def trace_text(self) -> str:
        """The convergence trace, byte-stable."""
        return "".join(f"{r.line()}\n" for r in self.rounds)


@dataclass(frozen=True)
class CoverageReport:
    """Coverage gained over the static global+local lists."""

    static_blocked: int
    discovered_blocked: int
    overlap: int
    new_urls: Tuple[str, ...]

    @property
    def gain_ratio(self) -> float:
        if not self.static_blocked:
            return float(self.discovered_blocked)
        return self.discovered_blocked / self.static_blocked

    @classmethod
    def evaluate(
        cls, result: DiscoveryResult, baseline_urls: Sequence[str]
    ) -> "CoverageReport":
        baseline = set(baseline_urls)
        discovered = set(result.blocked_urls)
        return cls(
            static_blocked=len(baseline),
            discovered_blocked=len(discovered),
            overlap=len(baseline & discovered),
            new_urls=tuple(sorted(discovered - baseline)),
        )

    def describe(self) -> str:
        return (
            f"static lists: {self.static_blocked} blocked; "
            f"discovered: {self.discovered_blocked} "
            f"({len(self.new_urls)} new, {self.gain_ratio:.2f}x)"
        )


def _canonical_url(url: Url) -> str:
    path = WebSite.canonical_path(url.path or "/")
    return f"http://{url.host}{path}"


def _extract_links(base: Url, body: str) -> List[str]:
    """Canonical absolute URLs referenced by ``body``, in page order."""
    links: List[str] = []
    for href in _HREF.findall(body):
        if href.startswith("http://") or href.startswith("https://"):
            try:
                target = Url.parse(href)
            except (UrlError, ValueError):
                continue
        elif href.startswith("/"):
            try:
                target = base.with_path(WebSite.canonical_path(href))
            except (UrlError, ValueError):
                continue
        else:
            continue
        links.append(_canonical_url(target))
    return links


def _extract_keywords(body: str, limit: int) -> List[str]:
    counts: Dict[str, int] = {}
    for term in tokenize(body):
        counts[term] = counts.get(term, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [term for term, _count in ranked[:limit]]


class DiscoveryEngine:
    """Runs the discovery loop for one censored vantage."""

    def __init__(
        self,
        world: World,
        isp_name: str,
        *,
        config: Optional[DiscoveryConfig] = None,
        engine: Optional[VerdictEngine] = None,
        index: Optional[SearchIndex] = None,
        executor: Optional[Executor] = None,
        link_latency: float = 0.0,
        resilience: Optional[ResilientRunner] = None,
    ) -> None:
        self._world = world
        self._isp_name = isp_name
        self.config = config or DiscoveryConfig()
        self.index = index if index is not None else SearchIndex.build(world)
        self._client = MeasurementClient(
            world.vantage(isp_name),
            world.lab_vantage(),
            engine=engine,
            executor=executor,
            link_latency=link_latency,
            resilience=resilience,
            stage="discover",
            endpoint=isp_name,
        )

    # ------------------------------------------------------------- run
    def run(self, seed_urls: Sequence[str]) -> DiscoveryResult:
        """Discover outward from ``seed_urls`` until convergence."""
        config = self.config
        seeds = _dedupe(_canonical_url(Url.parse(u)) for u in seed_urls)
        if not seeds:
            raise ValueError("discovery needs at least one seed URL")

        tested: Set[str] = set()
        domain_spend: Dict[str, int] = {}
        keywords_seen: Set[str] = set()
        keyword_queue: List[str] = []
        blocked: Set[str] = set()
        candidates: List[Candidate] = []
        rounds: List[RoundTrace] = []
        frontier: List[Tuple[str, str]] = [(u, "seed") for u in seeds]
        converged = False

        for round_index in range(1, config.max_rounds + 1):
            batch = self._select_batch(frontier, tested, domain_spend)
            queries_left = config.queries_per_round
            queries_issued = 0
            next_frontier: List[Tuple[str, str]] = []
            new_blocked = 0
            insufficient = 0

            run = self._client.run_list(
                [Url.parse(url) for url, _source in batch]
            )
            for (url_text, source), test in zip(batch, run.tests):
                candidates.append(_candidate(url_text, source, round_index, test))
                if test.insufficient:
                    insufficient += 1
                    continue
                # The PR-3 admission gate: only a positive, sufficient
                # verdict ever lands on the discovered list.
                if not test.blocked or url_text in blocked:
                    continue
                blocked.add(url_text)
                new_blocked += 1
                lab_page = (
                    test.lab_result.response if test.lab_result else None
                )
                if lab_page is None:
                    continue
                for link in _extract_links(Url.parse(url_text), lab_page.body):
                    next_frontier.append((link, "link"))
                for term in _extract_keywords(
                    lab_page.body, config.keywords_per_page
                ):
                    if term not in keywords_seen:
                        keywords_seen.add(term)
                        keyword_queue.append(term)

            while keyword_queue and queries_left > 0:
                term = keyword_queue.pop(0)
                queries_left -= 1
                try:
                    page = self.index.query(
                        term, per_page=config.results_per_query
                    )
                except QueryBudgetExhausted:
                    keyword_queue.insert(0, term)
                    break
                queries_issued += 1
                for result_url in page.results:
                    next_frontier.append((result_url, "search"))

            enqueued = len(next_frontier)
            rounds.append(
                RoundTrace(
                    index=round_index,
                    probed=len(batch),
                    new_blocked=new_blocked,
                    insufficient=insufficient,
                    queries_issued=queries_issued,
                    enqueued=enqueued,
                )
            )
            self._world.advance_days(1)
            if batch and new_blocked == 0:
                converged = True
                break
            # Unprobed frontier overflow carries forward ahead of the
            # newly discovered candidates.
            leftovers = [
                (u, s)
                for u, s in frontier
                if u not in tested and not _spent(u, domain_spend, config)
            ]
            frontier = leftovers + next_frontier
            if not frontier and not keyword_queue:
                converged = True
                break

        return DiscoveryResult(
            isp_name=self._isp_name,
            seed_urls=list(seeds),
            rounds=rounds,
            candidates=candidates,
            blocked_urls=sorted(blocked),
            converged=converged,
            config=config,
        )

    # --------------------------------------------------------- helpers
    def _select_batch(
        self,
        frontier: Sequence[Tuple[str, str]],
        tested: Set[str],
        domain_spend: Dict[str, int],
    ) -> List[Tuple[str, str]]:
        """Dedup + politeness: the URLs this round actually probes."""
        config = self.config
        batch: List[Tuple[str, str]] = []
        for url_text, source in frontier:
            if len(batch) >= config.max_probes_per_round:
                break
            if url_text in tested:
                continue
            domain = Url.parse(url_text).registered_domain
            if domain_spend.get(domain, 0) >= config.per_domain_budget:
                continue
            tested.add(url_text)
            domain_spend[domain] = domain_spend.get(domain, 0) + 1
            batch.append((url_text, source))
        return batch


def _spent(
    url_text: str, domain_spend: Dict[str, int], config: DiscoveryConfig
) -> bool:
    domain = Url.parse(url_text).registered_domain
    return domain_spend.get(domain, 0) >= config.per_domain_budget


def _candidate(
    url_text: str, source: str, round_index: int, test: UrlTest
) -> Candidate:
    return Candidate(
        url=url_text,
        source=source,
        round_index=round_index,
        verdict=test.comparison.verdict.name,
        blocked=bool(test.blocked and not test.insufficient),
        insufficient=test.insufficient,
        vendor=test.vendor,
        confidence=test.confidence,
    )


def _dedupe(items) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def static_baseline(
    world: World,
    isp_name: str,
    *,
    engine: Optional[VerdictEngine] = None,
    executor: Optional[Executor] = None,
    link_latency: float = 0.0,
    resilience: Optional[ResilientRunner] = None,
    per_category_global: int = 3,
    per_category_local: int = 2,
) -> List[str]:
    """Blocked URLs found by the static global+local Table 4 lists.

    This is both the coverage baseline discovery must beat and the
    default source of seed URLs.
    """
    isp = world.isps[isp_name]
    entries = list(
        build_global_list(world, per_category=per_category_global).entries
    ) + list(
        build_local_list(
            world, isp.country.code, per_category=per_category_local
        ).entries
    )
    urls = _dedupe(_canonical_url(e.url) for e in entries)
    client = MeasurementClient(
        world.vantage(isp_name),
        world.lab_vantage(),
        engine=engine,
        executor=executor,
        link_latency=link_latency,
        resilience=resilience,
        stage="discover-baseline",
        endpoint=isp_name,
    )
    run = client.run_list([Url.parse(url) for url in urls])
    return sorted(
        url
        for url, test in zip(urls, run.tests)
        if test.blocked and not test.insufficient
    )

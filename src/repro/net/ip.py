"""IPv4 addresses, prefixes, and allocation pools for the simulated Internet.

The world model hands out address space to autonomous systems the same way
a registry would: a :class:`PrefixPool` carves a parent prefix into
fixed-size child prefixes, and each :class:`Ipv4Prefix` can then enumerate
or allocate individual host addresses.

Implemented from scratch (rather than on :mod:`ipaddress`) so the types
stay small, hashable, and deterministic, and so prefixes can carry
allocation state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.net.errors import AddressError, AllocationExhausted

_MAX_IPV4 = 0xFFFFFFFF


def _check_octet(text: str) -> int:
    if not text.isdigit() or (len(text) > 1 and text[0] == "0"):
        raise AddressError(f"bad IPv4 octet {text!r}")
    value = int(text)
    if value > 255:
        raise AddressError(f"IPv4 octet out of range: {text!r}")
    return value


@dataclass(frozen=True, order=True)
class Ipv4Address:
    """A single IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise AddressError(f"IPv4 value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"bad IPv4 address {text!r}")
        value = 0
        for part in parts:
            value = (value << 8) | _check_octet(part)
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __add__(self, offset: int) -> "Ipv4Address":
        return Ipv4Address(self.value + offset)

    def is_private(self) -> bool:
        """True for RFC 1918 space (10/8, 172.16/12, 192.168/16)."""
        v = self.value
        return (
            (v >> 24) == 10
            or (v >> 20) == (172 << 4 | 1)  # 172.16.0.0/12
            or (v >> 16) == (192 << 8 | 168)
        )


@dataclass(frozen=True, order=True)
class Ipv4Prefix:
    """An IPv4 CIDR prefix such as ``192.0.2.0/24``."""

    network: Ipv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"bad prefix length /{self.length}")
        if self.network.value & self.host_mask():
            raise AddressError(
                f"{self.network}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Ipv4Prefix":
        """Parse CIDR notation, e.g. ``"192.0.2.0/24"``."""
        if "/" not in text:
            raise AddressError(f"missing prefix length in {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        return cls(Ipv4Address.parse(addr_text), int(len_text))

    def net_mask(self) -> int:
        return (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4

    def host_mask(self) -> int:
        return _MAX_IPV4 >> self.length if self.length else _MAX_IPV4

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Ipv4Address):
            return (item.value & self.net_mask()) == self.network.value
        if isinstance(item, Ipv4Prefix):
            return item.length >= self.length and item.network in self
        return False

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def address_at(self, offset: int) -> Ipv4Address:
        """Return the host address ``offset`` addresses into the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(
                f"offset {offset} outside {self} ({self.num_addresses} addrs)"
            )
        return Ipv4Address(self.network.value + offset)

    def hosts(self) -> Iterator[Ipv4Address]:
        """Iterate usable host addresses (skips network/broadcast on /30-)."""
        if self.length >= 31:
            start, stop = 0, self.num_addresses
        else:
            start, stop = 1, self.num_addresses - 1
        for offset in range(start, stop):
            yield Ipv4Address(self.network.value + offset)

    def subnets(self, new_length: int) -> Iterator["Ipv4Prefix"]:
        """Iterate the child prefixes of size ``new_length``."""
        if new_length < self.length:
            raise AddressError(
                f"cannot split /{self.length} into larger /{new_length}"
            )
        step = 1 << (32 - new_length)
        for base in range(
            self.network.value,
            self.network.value + self.num_addresses,
            step,
        ):
            yield Ipv4Prefix(Ipv4Address(base), new_length)


@dataclass
class AddressPool:
    """Sequential allocator of host addresses within one prefix."""

    prefix: Ipv4Prefix
    _next: int = field(default=1, repr=False)

    def allocate(self) -> Ipv4Address:
        """Hand out the next unused host address."""
        limit = self.prefix.num_addresses - (0 if self.prefix.length >= 31 else 1)
        if self._next >= limit:
            raise AllocationExhausted(f"pool {self.prefix} exhausted")
        address = self.prefix.address_at(self._next)
        self._next += 1
        return address

    @property
    def remaining(self) -> int:
        limit = self.prefix.num_addresses - (0 if self.prefix.length >= 31 else 1)
        return max(0, limit - self._next)


@dataclass
class PrefixPool:
    """Carves a parent prefix into equally sized child prefixes on demand."""

    parent: Ipv4Prefix
    child_length: int
    _allocated: List[Ipv4Prefix] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.child_length < self.parent.length:
            raise AddressError(
                f"child /{self.child_length} larger than parent {self.parent}"
            )

    def allocate(self) -> Ipv4Prefix:
        """Hand out the next unused child prefix."""
        index = len(self._allocated)
        step = 1 << (32 - self.child_length)
        base = self.parent.network.value + index * step
        if base >= self.parent.network.value + self.parent.num_addresses:
            raise AllocationExhausted(f"prefix pool {self.parent} exhausted")
        prefix = Ipv4Prefix(Ipv4Address(base), self.child_length)
        self._allocated.append(prefix)
        return prefix

    @property
    def allocated(self) -> List[Ipv4Prefix]:
        return list(self._allocated)


class PrefixTable:
    """Longest-prefix-match table mapping prefixes to arbitrary values.

    Used by the geolocation and whois substrates to answer "which entry
    covers this IP" the way a routing table or GeoIP database would.
    """

    def __init__(self) -> None:
        self._entries: List[tuple] = []
        self._sorted = True

    def add(self, prefix: Ipv4Prefix, value: object) -> None:
        self._entries.append((prefix, value))
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Longest prefixes first so the first hit is the best match.
            self._entries.sort(key=lambda e: -e[0].length)
            self._sorted = True

    def lookup(self, address: Ipv4Address) -> Optional[object]:
        """Return the value of the longest prefix covering ``address``."""
        self._ensure_sorted()
        for prefix, value in self._entries:
            if address in prefix:
                return value
        return None

    def lookup_prefix(self, address: Ipv4Address) -> Optional[Ipv4Prefix]:
        """Return the longest prefix covering ``address`` itself."""
        self._ensure_sorted()
        for prefix, _value in self._entries:
            if address in prefix:
                return prefix
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple]:
        self._ensure_sorted()
        return iter(self._entries)

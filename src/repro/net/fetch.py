"""Fetch outcomes: what a client observes when it requests a URL.

A fetch can end in a normal HTTP exchange (possibly after redirects), or
in a network-level failure — DNS error, TCP reset, or timeout. The
measurement client (§4.1) compares field and lab outcomes, and the paper
notes that the products studied serve *explicit block pages*, avoiding
the ambiguity of resets/drops; the model still supports those failure
modes so the comparator has something to disambiguate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol

from repro.net.http import HttpRequest, HttpResponse
from repro.net.url import Url


class FetchOutcome(enum.Enum):
    """Network-level result of attempting to fetch a URL."""

    OK = "ok"  # an HTTP response was received (any status)
    DNS_FAILURE = "dns_failure"
    TCP_RESET = "tcp_reset"
    #: The TLS handshake was torn down before any HTTP exchange — what
    #: SNI-based filtering looks like from the client. Distinct from
    #: TCP_RESET (the TCP layer connected fine) so the comparator can
    #: tell server-name filtering from connection-level denial.
    TLS_RESET = "tls_reset"
    TIMEOUT = "timeout"
    UNREACHABLE = "unreachable"
    TOO_MANY_REDIRECTS = "too_many_redirects"
    #: The measurement infrastructure itself failed (retries exhausted
    #: against injected or real faults). Distinct from TIMEOUT/TCP_RESET,
    #: which describe what the *network path* did to the request and feed
    #: the blocking comparator; an INFRA_FAILURE carries no censorship
    #: signal and the comparator must yield "insufficient data" for it.
    INFRA_FAILURE = "infra_failure"


@dataclass
class Hop:
    """One request/response exchange within a redirect chain."""

    request: HttpRequest
    response: HttpResponse


@dataclass
class FetchResult:
    """Everything observed while fetching one URL.

    ``hops`` records each exchange including redirects; ``response`` is
    the final response (None unless outcome is OK or TOO_MANY_REDIRECTS
    with at least one hop).

    ``elapsed_ms`` is the world's deterministic latency model (per-hop
    base cost plus any on-path device delay), not wall-clock time;
    ``rst_injected`` records an on-wire RST that lost the race with the
    origin's content — the page arrived anyway, but the wire-level
    evidence of injection remains.
    """

    url: Url
    outcome: FetchOutcome
    hops: List[Hop] = field(default_factory=list)
    error: Optional[str] = None
    elapsed_ms: float = 0.0
    rst_injected: bool = False

    @property
    def response(self) -> Optional[HttpResponse]:
        return self.hops[-1].response if self.hops else None

    @property
    def first_response(self) -> Optional[HttpResponse]:
        return self.hops[0].response if self.hops else None

    @property
    def ok(self) -> bool:
        return self.outcome is FetchOutcome.OK

    @property
    def status(self) -> Optional[int]:
        response = self.response
        return response.status if response else None

    def redirect_hosts(self) -> List[str]:
        """Hosts named in Location headers along the chain (for signatures)."""
        hosts = []
        for hop in self.hops:
            location = hop.response.location
            if not location:
                continue
            try:
                hosts.append(Url.parse(location).host)
            except Exception:
                continue
        return hosts

    @classmethod
    def failure(
        cls, url: Url, outcome: FetchOutcome, error: Optional[str] = None
    ) -> "FetchResult":
        if outcome is FetchOutcome.OK:
            raise ValueError("failure() requires a non-OK outcome")
        return cls(url, outcome, [], error)


class Fetcher(Protocol):
    """Anything that can fetch a URL on behalf of a client address."""

    def fetch(self, url: Url, *, follow_redirects: bool = True) -> FetchResult:
        """Fetch ``url`` and return the observed result."""
        ...  # pragma: no cover


@dataclass
class FaultInjectingFetcher:
    """A :class:`Fetcher` decorator that consults a fault hook first.

    ``fault_hook`` receives the URL's host and may return an exception
    (e.g. a chaos plan's injected reset) which this wrapper raises before
    delegating; None lets the fetch through untouched. Lets tests and
    alternative substrates inject faults around any fetcher without the
    world's cooperation.
    """

    inner: Fetcher
    fault_hook: Optional[Callable[[str], Optional[Exception]]] = None

    def fetch(self, url: Url, *, follow_redirects: bool = True) -> FetchResult:
        hook = self.fault_hook
        if hook is not None:
            fault = hook(url.host)
            if fault is not None:
                raise fault
        return self.inner.fetch(url, follow_redirects=follow_redirects)

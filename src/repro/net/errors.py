"""Exception hierarchy for the simulated network stack.

Every error raised by :mod:`repro.net` derives from :class:`NetError` so
that callers can catch simulation-level network failures without also
swallowing programming errors.
"""

from __future__ import annotations


class NetError(Exception):
    """Base class for all simulated-network errors."""


class AddressError(NetError):
    """An IPv4 address or prefix could not be parsed or is out of range."""


class UrlError(NetError):
    """A URL could not be parsed or violates URL syntax rules."""


class DnsError(NetError):
    """Base class for DNS resolution failures."""


class NxDomain(DnsError):
    """The queried name does not exist (NXDOMAIN)."""

    def __init__(self, name: str) -> None:
        super().__init__(f"NXDOMAIN: {name!r}")
        self.name = name


class DnsTimeout(DnsError):
    """The resolver did not answer within the simulated timeout."""


class ConnectionReset(NetError):
    """The TCP connection was reset by a peer or an on-path device."""


class ConnectionTimeout(NetError):
    """The TCP connection attempt or read timed out."""


class HostUnreachable(NetError):
    """No route to the destination host exists in the simulated world."""

    def __init__(self, ip: object) -> None:
        super().__init__(f"no route to host {ip}")
        self.ip = ip


class AllocationExhausted(NetError):
    """An address pool has no free addresses or prefixes left."""

"""Exception hierarchy for the simulated network stack.

Every error raised by :mod:`repro.net` derives from :class:`NetError` so
that callers can catch simulation-level network failures without also
swallowing programming errors.

Each class carries a ``transient`` flag splitting the hierarchy into
errors worth retrying (timeouts, resets — the noise a flaky vantage or
churning link produces) and permanent ones (NXDOMAIN, malformed input)
where a retry can only waste budget and, worse, mask a real signal.
Retry layers (:class:`repro.exec.executor.RetryPolicy`,
:class:`repro.exec.resilience.ResilientRunner`) consult this flag
instead of maintaining their own exception lists.
"""

from __future__ import annotations


class NetError(Exception):
    """Base class for all simulated-network errors."""

    #: Whether a retry of the failed operation can plausibly succeed.
    transient: bool = False


class AddressError(NetError):
    """An IPv4 address or prefix could not be parsed or is out of range."""


class UrlError(NetError):
    """A URL could not be parsed or violates URL syntax rules."""


class DnsError(NetError):
    """Base class for DNS resolution failures."""


class NxDomain(DnsError):
    """The queried name does not exist (NXDOMAIN).

    Permanent: an authoritative denial, not a lost packet — retrying the
    same query gets the same answer.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"NXDOMAIN: {name!r}")
        self.name = name


class DnsTimeout(DnsError):
    """The resolver did not answer within the simulated timeout."""

    transient = True


class ConnectionReset(NetError):
    """The TCP connection was reset by a peer or an on-path device."""

    transient = True


class ConnectionTimeout(NetError):
    """The TCP connection attempt or read timed out."""

    transient = True


class HostUnreachable(NetError):
    """No route to the destination host exists in the simulated world."""

    def __init__(self, ip: object) -> None:
        super().__init__(f"no route to host {ip}")
        self.ip = ip


class AllocationExhausted(NetError):
    """An address pool has no free addresses or prefixes left."""

"""HTTP message model for the simulated network.

Requests and responses are plain data objects. Header access is
case-insensitive, matching real HTTP semantics — the WhatWeb signatures
in Table 2 match on headers such as ``Via-Proxy`` and ``Location``
regardless of case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.url import Url

REASON_PHRASES = {
    200: "OK",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    307: "Temporary Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    407: "Proxy Authentication Required",
    451: "Unavailable For Legal Reasons",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

REDIRECT_STATUSES = frozenset([301, 302, 303, 307])


class Headers:
    """Ordered, case-insensitive HTTP header collection."""

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        for name, value in items or []:
            self.add(name, value)

    def add(self, name: str, value: str) -> None:
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lowered = name.lower()
        for item_name, value in self._items:
            if item_name.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> List[Tuple[str, str]]:
        return list(self._items)

    def copy(self) -> "Headers":
        return Headers(self._items)

    def as_text(self) -> str:
        """Render as wire-format header lines (used for banner matching)."""
        return "\r\n".join(f"{name}: {value}" for name, value in self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


@dataclass
class HttpRequest:
    """An HTTP request as seen by servers and on-path middleboxes."""

    method: str
    url: Url
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    client_ip: Optional[object] = None  # Ipv4Address of the originating client

    @classmethod
    def get(cls, url: Url, client_ip: Optional[object] = None) -> "HttpRequest":
        headers = Headers()
        headers.set("Host", url.host)
        headers.set("User-Agent", "repro-measurement-client/1.0")
        headers.set("Accept", "*/*")
        return cls("GET", url, headers, client_ip=client_ip)

    @property
    def host(self) -> str:
        return self.headers.get("Host", self.url.host)


@dataclass
class HttpResponse:
    """An HTTP response, possibly synthesized by a filtering middlebox."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: str = ""

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_STATUSES and "Location" in self.headers

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")

    def status_line(self) -> str:
        return f"HTTP/1.1 {self.status} {self.reason}"

    def banner_text(self) -> str:
        """Status line + headers, the text a banner grabber would record."""
        return f"{self.status_line()}\r\n{self.headers.as_text()}"

    def full_text(self) -> str:
        """Entire response as text, for signature/body matching."""
        return f"{self.banner_text()}\r\n\r\n{self.body}"

    def html_title(self) -> Optional[str]:
        """Extract the <title> text if the body looks like HTML."""
        lowered = self.body.lower()
        start = lowered.find("<title>")
        if start == -1:
            return None
        end = lowered.find("</title>", start)
        if end == -1:
            return None
        return self.body[start + len("<title>"):end].strip()


def html_page(title: str, body_html: str, extra_head: str = "") -> str:
    """Render a minimal HTML page; used by origin servers and block pages."""
    return (
        "<!DOCTYPE html>\n"
        "<html><head>"
        f"<title>{title}</title>{extra_head}"
        "</head><body>\n"
        f"{body_html}\n"
        "</body></html>"
    )


def ok_response(title: str, body_html: str, server: str = "nginx") -> HttpResponse:
    """A plain 200 response from an origin server."""
    headers = Headers()
    headers.set("Server", server)
    headers.set("Content-Type", "text/html; charset=utf-8")
    return HttpResponse(200, headers, html_page(title, body_html))


def redirect_response(location: str, status: int = 302) -> HttpResponse:
    headers = Headers()
    headers.set("Location", location)
    headers.set("Content-Type", "text/html; charset=utf-8")
    return HttpResponse(
        status, headers, html_page("Redirect", f'<a href="{location}">moved</a>')
    )


def not_found_response() -> HttpResponse:
    headers = Headers()
    headers.set("Content-Type", "text/html; charset=utf-8")
    return HttpResponse(404, headers, html_page("404 Not Found", "<h1>404</h1>"))

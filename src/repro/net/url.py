"""URL parsing, normalization, and classification helpers.

The paper's methodology is URL-centric: filter databases key on
normalized URLs or hostnames, the Shodan queries combine keywords with
country-code TLDs, and blocking granularity matters (§4.6 found blocking
at hostname granularity). This module provides a small, strict URL type
tailored to those needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.errors import UrlError

DEFAULT_PORTS = {"http": 80, "https": 443}

# Two-letter country-code TLDs relevant to the study plus common ones; the
# scan layer uses these for keyword x ccTLD query expansion (§3.1).
COUNTRY_CODE_TLDS = frozenset(
    """
    ad ae af ag ar at au az ba bd be bg bh bn bo br bs bt bw by bz ca ch
    cl cn co cr cu cy cz de dk dz ec ee eg es et fi fj fr gb ge gh gr gt
    hk hn hr hu id ie il in iq ir is it jm jo jp ke kg kh kr kw kz lb lk
    lt lu lv ly ma md me mk mm mn mx my ng ni nl no np nz om pa pe ph pk
    pl ps pt py qa ro rs ru sa se sg si sk sn sv sy th tn tr tw ua ug us
    uy uz ve vn ye za zw
    """.split()
)

GENERIC_TLDS = frozenset(
    ["com", "net", "org", "info", "biz", "edu", "gov", "mil", "int"]
)


def _validate_host(host: str) -> str:
    host = host.lower().rstrip(".")
    if not host:
        raise UrlError("empty host")
    if len(host) > 253:
        raise UrlError(f"host too long: {host[:40]}...")
    for label in host.split("."):
        if not label:
            raise UrlError(f"empty label in host {host!r}")
        if len(label) > 63:
            raise UrlError(f"label too long in host {host!r}")
        if not all(c.isalnum() or c == "-" for c in label):
            raise UrlError(f"bad character in host {host!r}")
        if label.startswith("-") or label.endswith("-"):
            raise UrlError(f"label starts/ends with '-' in host {host!r}")
    return host


@dataclass(frozen=True)
class Url:
    """An absolute HTTP(S) URL in normalized form.

    Normalization rules: lowercase scheme and host, default ports elided,
    empty path becomes ``/``, query-string order preserved.
    """

    scheme: str
    host: str
    port: int
    path: str
    query: str = ""

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse an absolute URL string.

        >>> Url.parse("HTTP://Example.COM:80/a?b=1")
        Url(scheme='http', host='example.com', port=80, path='/a', query='b=1')
        """
        text = text.strip()
        if "://" not in text:
            raise UrlError(f"not an absolute URL: {text!r}")
        scheme, _, rest = text.partition("://")
        scheme = scheme.lower()
        if scheme not in DEFAULT_PORTS:
            raise UrlError(f"unsupported scheme {scheme!r}")
        authority, slash, path_and_query = rest.partition("/")
        if not authority:
            raise UrlError(f"missing host in {text!r}")
        if "@" in authority:
            raise UrlError(f"userinfo not supported: {text!r}")
        host, _, port_text = authority.partition(":")
        if port_text:
            if not port_text.isdigit():
                raise UrlError(f"bad port in {text!r}")
            port = int(port_text)
            if not 1 <= port <= 65535:
                raise UrlError(f"port out of range in {text!r}")
        else:
            port = DEFAULT_PORTS[scheme]
        path_and_query = (slash + path_and_query) if slash else "/"
        path, _, query = path_and_query.partition("?")
        query, _, _fragment = query.partition("#")
        path, _, _frag2 = path.partition("#")
        return cls(scheme, _validate_host(host), port, path or "/", query)

    @classmethod
    def for_host(cls, host: str, scheme: str = "http") -> "Url":
        """Build the root URL for a bare hostname."""
        return cls(scheme, _validate_host(host), DEFAULT_PORTS[scheme], "/")

    def __str__(self) -> str:
        port = ""
        if self.port != DEFAULT_PORTS.get(self.scheme):
            port = f":{self.port}"
        query = f"?{self.query}" if self.query else ""
        return f"{self.scheme}://{self.host}{port}{self.path}{query}"

    @property
    def tld(self) -> str:
        """The final DNS label of the host (empty for IP-literal hosts)."""
        label = self.host.rsplit(".", 1)[-1]
        return "" if label.isdigit() else label

    @property
    def is_cctld(self) -> bool:
        return self.tld in COUNTRY_CODE_TLDS

    @property
    def registered_domain(self) -> str:
        """Best-effort registrable domain, e.g. ``a.b.example.com`` -> ``example.com``.

        Handles the common two-level ccTLD pattern (``example.co.uk``).
        """
        labels = self.host.split(".")
        if len(labels) <= 2:
            return self.host
        if labels[-1] in COUNTRY_CODE_TLDS and labels[-2] in (
            "co",
            "com",
            "net",
            "org",
            "gov",
            "edu",
            "ac",
        ):
            return ".".join(labels[-3:])
        return ".".join(labels[-2:])

    def with_path(self, path: str, query: str = "") -> "Url":
        if not path.startswith("/"):
            raise UrlError(f"path must start with '/': {path!r}")
        return Url(self.scheme, self.host, self.port, path, query)

    def query_params(self) -> Dict[str, str]:
        """Parse the query string into a dict (last value wins)."""
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for piece in self.query.split("&"):
            if not piece:
                continue
            key, _, value = piece.partition("=")
            params[key] = value
        return params


def hostname_key(url: Url) -> str:
    """Blocking key at hostname granularity (§4.6: whole host blocked)."""
    return url.host


def url_key(url: Url) -> str:
    """Blocking key at full-URL granularity (scheme/port insensitive)."""
    query = f"?{url.query}" if url.query else ""
    return f"{url.host}{url.path}{query}"


def split_host_port(authority: str) -> Tuple[str, Optional[int]]:
    """Split ``host[:port]`` into its parts; port is None when absent."""
    host, _, port_text = authority.partition(":")
    if not port_text:
        return host, None
    if not port_text.isdigit():
        raise UrlError(f"bad port in authority {authority!r}")
    return host, int(port_text)

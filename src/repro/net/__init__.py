"""Simulated network substrate: addresses, URLs, DNS, HTTP, fetches."""

from repro.net.errors import (
    AddressError,
    AllocationExhausted,
    ConnectionReset,
    ConnectionTimeout,
    DnsError,
    DnsTimeout,
    HostUnreachable,
    NetError,
    NxDomain,
    UrlError,
)
from repro.net.fetch import FetchOutcome, FetchResult, Fetcher, Hop
from repro.net.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    html_page,
    not_found_response,
    ok_response,
    redirect_response,
)
from repro.net.ip import (
    AddressPool,
    Ipv4Address,
    Ipv4Prefix,
    PrefixPool,
    PrefixTable,
)
from repro.net.url import (
    COUNTRY_CODE_TLDS,
    GENERIC_TLDS,
    Url,
    hostname_key,
    url_key,
)
from repro.net.dns import DnsRecord, DnsZone, Resolver

__all__ = [
    "AddressError",
    "AddressPool",
    "AllocationExhausted",
    "COUNTRY_CODE_TLDS",
    "ConnectionReset",
    "ConnectionTimeout",
    "DnsError",
    "DnsRecord",
    "DnsTimeout",
    "DnsZone",
    "FetchOutcome",
    "FetchResult",
    "Fetcher",
    "GENERIC_TLDS",
    "Headers",
    "Hop",
    "HostUnreachable",
    "HttpRequest",
    "HttpResponse",
    "Ipv4Address",
    "Ipv4Prefix",
    "NetError",
    "NxDomain",
    "PrefixPool",
    "PrefixTable",
    "Resolver",
    "Url",
    "UrlError",
    "hostname_key",
    "html_page",
    "not_found_response",
    "ok_response",
    "redirect_response",
    "url_key",
]

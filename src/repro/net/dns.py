"""Simulated DNS: a flat authoritative resolver for the world model.

The study never depends on DNS trickery (blocking in the measured ISPs is
performed by on-path HTTP middleboxes), but the substrate still resolves
hostnames to addresses so that fetches, banner grabs, and hosting all go
through one consistent name system. DNS-level censorship (a resolver that
lies for some names) is supported so the comparison layer can classify it
separately from block pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Set

from repro.net.errors import NxDomain
from repro.net.ip import Ipv4Address

#: A fault-injection hook: given the normalized name being resolved,
#: return an exception to raise (a chaos plan's injected DNS timeout or
#: NXDOMAIN flap) or None to let resolution proceed. Kept as a callable
#: so the net layer stays ignorant of the world's fault machinery.
FaultHook = Callable[[str], Optional[Exception]]


@dataclass
class DnsRecord:
    """An A record binding one hostname to one address."""

    name: str
    address: Ipv4Address


class DnsZone:
    """Authoritative name-to-address store for the whole simulated world."""

    def __init__(self) -> None:
        self._records: Dict[str, DnsRecord] = {}

    def register(self, name: str, address: Ipv4Address) -> DnsRecord:
        """Register (or re-point) an A record."""
        record = DnsRecord(name.lower().rstrip("."), address)
        self._records[record.name] = record
        return record

    def unregister(self, name: str) -> None:
        self._records.pop(name.lower().rstrip("."), None)

    def resolve(self, name: str) -> Ipv4Address:
        record = self._records.get(name.lower().rstrip("."))
        if record is None:
            raise NxDomain(name)
        return record.address

    def reverse(self, address: Ipv4Address) -> Optional[str]:
        """Best-effort PTR lookup (first name registered for the address)."""
        for record in self._records.values():
            if record.address == address:
                return record.name
        return None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower().rstrip(".") in self._records

    def __len__(self) -> int:
        return len(self._records)

    def names(self) -> Iterator[str]:
        return iter(self._records)


@dataclass
class Resolver:
    """A client-facing resolver, optionally poisoned for censored names.

    ``poisoned`` maps hostnames to the address the resolver lies with
    (commonly a block-page server); names in ``refused`` yield NXDOMAIN.
    """

    zone: DnsZone
    poisoned: Dict[str, Ipv4Address] = field(default_factory=dict)
    refused: Set[str] = field(default_factory=set)
    #: Optional chaos hook consulted before any lookup logic; may return
    #: an exception (injected timeout/flap) for this resolver to raise.
    fault_hook: Optional[FaultHook] = None

    def resolve(self, name: str) -> Ipv4Address:
        key = name.lower().rstrip(".")
        if self.fault_hook is not None:
            fault = self.fault_hook(key)
            if fault is not None:
                raise fault
        if key in self.refused:
            raise NxDomain(name)
        if key in self.poisoned:
            return self.poisoned[key]
        return self.zone.resolve(name)

    def poison(self, name: str, address: Ipv4Address) -> None:
        self.poisoned[name.lower().rstrip(".")] = address

    def refuse(self, name: str) -> None:
        self.refused.add(name.lower().rstrip("."))

"""Geolocation and whois substrates (MaxMind / Team Cymru analogues)."""

from repro.geo.cymru import WhoisRecord, WhoisService
from repro.geo.maxmind import GeoDatabase, GeoRecord

__all__ = ["GeoDatabase", "GeoRecord", "WhoisRecord", "WhoisService"]

"""MaxMind-style IP geolocation.

§3.1: "we use geolocation data from MaxMind to map the IP addresses
matching WhatWeb signatures to country-level location". Real GeoIP data
is imperfect, so the database supports a configurable per-prefix error
rate — mislocated prefixes get a country drawn from the registry — which
the identification pipeline must tolerate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.ip import Ipv4Address, Ipv4Prefix, PrefixTable
from repro.world.world import World


@dataclass
class GeoRecord:
    prefix: Ipv4Prefix
    country_code: str
    mislocated: bool = False


class GeoDatabase:
    """Prefix-to-country database with longest-prefix-match lookups."""

    def __init__(self) -> None:
        self._table = PrefixTable()
        self._records: List[GeoRecord] = []

    def add(self, prefix: Ipv4Prefix, country_code: str, mislocated: bool = False) -> None:
        record = GeoRecord(prefix, country_code.lower(), mislocated)
        self._records.append(record)
        self._table.add(prefix, record)

    def country_code(self, address: Ipv4Address) -> Optional[str]:
        record = self._table.lookup(address)
        return record.country_code if isinstance(record, GeoRecord) else None

    @property
    def records(self) -> List[GeoRecord]:
        return list(self._records)

    def error_count(self) -> int:
        return sum(1 for record in self._records if record.mislocated)

    @classmethod
    def build_from_world(
        cls,
        world: World,
        *,
        error_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> "GeoDatabase":
        """Derive a database from AS registrations, with optional noise.

        With ``error_rate`` > 0, that fraction of prefixes is tagged with
        a uniformly chosen wrong country — the kind of stale-allocation
        error real GeoIP data carries.
        """
        if error_rate and rng is None:
            raise ValueError("error_rate > 0 requires an rng")
        database = cls()
        codes = sorted(world.countries)
        for asn in sorted(world.autonomous_systems):
            autonomous_system = world.autonomous_systems[asn]
            true_code = autonomous_system.country.code
            for prefix in autonomous_system.prefixes:
                code = true_code
                mislocated = False
                if error_rate and rng is not None and rng.random() < error_rate:
                    wrong = [c for c in codes if c != true_code]
                    if wrong:
                        code = rng.choice(wrong)
                        mislocated = True
                database.add(prefix, code, mislocated)
        return database

"""Team Cymru-style IP-to-ASN mapping.

§3.1: "whois data from TeamCymru to map the IP addresses ... to
autonomous system (AS) number". Lookups return the origin ASN, the AS
name as whois publishes it, and the registered organization — the §3.2
analysis of *which kinds* of networks host filters (utilities, schools,
large ISPs, a military network) reads the org metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.ip import Ipv4Address, Ipv4Prefix, PrefixTable
from repro.world.entities import OrgKind
from repro.world.world import World


@dataclass(frozen=True)
class WhoisRecord:
    """One IP-to-ASN answer."""

    asn: int
    as_name: str
    org_name: str
    org_kind: OrgKind
    country_code: str
    prefix: Ipv4Prefix


class WhoisService:
    """Longest-prefix-match IP→ASN service."""

    def __init__(self) -> None:
        self._table = PrefixTable()
        self._records: List[WhoisRecord] = []

    def add(self, record: WhoisRecord) -> None:
        self._records.append(record)
        self._table.add(record.prefix, record)

    def lookup(self, address: Ipv4Address) -> Optional[WhoisRecord]:
        record = self._table.lookup(address)
        return record if isinstance(record, WhoisRecord) else None

    def asn(self, address: Ipv4Address) -> Optional[int]:
        record = self.lookup(address)
        return record.asn if record else None

    @property
    def records(self) -> List[WhoisRecord]:
        return list(self._records)

    @classmethod
    def build_from_world(cls, world: World) -> "WhoisService":
        """Derive the whois view from AS registrations."""
        service = cls()
        for asn in sorted(world.autonomous_systems):
            autonomous_system = world.autonomous_systems[asn]
            for prefix in autonomous_system.prefixes:
                service.add(
                    WhoisRecord(
                        asn=autonomous_system.asn,
                        as_name=autonomous_system.name,
                        org_name=autonomous_system.org.name,
                        org_kind=autonomous_system.org.kind,
                        country_code=autonomous_system.country.code,
                        prefix=prefix,
                    )
                )
        return service

"""repro.serve — read-only HTTP serving over the results store.

A stdlib-only threaded JSON API (:class:`ResultsServer`) with a
read-through LRU response cache and strong content-derived ETags; the
north-star serving story's first durable, indexed read path.
"""

from repro.serve.api import (
    ApiError,
    ApiResponse,
    DEFAULT_PAGE_SIZE,
    MAX_PAGE_SIZE,
    ResponseCache,
    ResultsServer,
    StoreApi,
)

__all__ = [
    "ApiError",
    "ApiResponse",
    "DEFAULT_PAGE_SIZE",
    "MAX_PAGE_SIZE",
    "ResponseCache",
    "ResultsServer",
    "StoreApi",
]

"""Read-only JSON serving API over a results store.

Stdlib-only: a :class:`http.server.ThreadingHTTPServer` front end over a
pure request-handling core (:class:`StoreApi`) that tests and the smoke
harness can also drive in-process. Endpoints::

    GET /healthz                              liveness + epoch count
    GET /metrics                              execution metrics snapshot
    GET /epochs                               paginated epoch listing
    GET /epochs/<id>                          one epoch's manifest
    GET /epochs/<id>/records/<kind>           paginated record rows
    GET /epochs/<id>/tables/<name>            canonical table rendering
    GET /epochs/<id>/countries/<cc>           per-country drill-down
    GET /epochs/<id>/products/<name>          per-product drill-down
    GET /diff?old=<id>&new=<id>               longitudinal diff (default:
                                              the two newest epochs)
    GET /monitor/status                       monitor fold (state, rounds,
                                              gaps, buffered, recovery)
    GET /monitor/targets                      paginated schedule table
    GET /monitor/alerts                       paginated alert ledger

The ``/monitor/*`` endpoints exist only when the server was given a
monitor directory (``repro serve --monitor DIR``); they fold the
monitor's durable journal and alert ledger on demand, so they serve a
live monitor, a killed one, and a finished one alike. Their ETags hash
the monitor files' bytes instead of the store digest, with identical
``If-None-Match``/304 semantics.

Epoch ids may be unique prefixes. Listing/record endpoints accept
``page`` / ``per_page`` plus the record-filter dimensions (``country``,
``asn``, ``product``, ``isp``, ``category``) and ``min_confidence`` (a
row-level floor on fused verdict confidence; rows committed without
confidence recording pass any floor).

Caching: every cacheable response carries a *strong* ETag derived from
epoch content hashes (epoch ids are SHA-256s of epoch content, so a
digest over the ids involved plus the request key is a digest of the
response's full provenance); ``If-None-Match`` short-circuits to 304
before any rendering. Below that sits a read-through LRU keyed by the
request, so a cold render happens once per (request, store state). Hit
rates, 304s, and request latencies are recorded through
:class:`repro.exec.metrics.Metrics`.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from repro.exec.journal import JOURNAL_FILENAME
from repro.exec.metrics import Metrics
from repro.monitor.alerts import ALERTS_FILENAME, read_alerts
from repro.monitor.status import read_status
from repro.query import QueryEngine, RecordFilter, TABLE_NAMES
from repro.store import RECORD_KINDS, ResultsStore, StoreError, UnknownEpoch

DEFAULT_PAGE_SIZE = 50
MAX_PAGE_SIZE = 500

_CONTENT_TYPE = "application/json; charset=utf-8"


class ApiError(Exception):
    """A request that cannot be served; maps to an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class ApiResponse:
    """One computed response, ready for the HTTP layer."""

    status: int
    body: bytes
    etag: Optional[str] = None

    @property
    def headers(self) -> List[Tuple[str, str]]:
        found = [
            ("Content-Type", _CONTENT_TYPE),
            ("Content-Length", str(len(self.body))),
        ]
        if self.etag is not None:
            found.append(("ETag", self.etag))
            found.append(("Cache-Control", "no-cache"))
        return found


class ResponseCache:
    """A small thread-safe LRU for rendered response bodies.

    Entries are validated against the current ETag on every hit: a new
    commit changes the store digest, changes the ETag, and silently
    invalidates every stale entry without any explicit purge.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[str, bytes]]" = OrderedDict()

    def get(self, key: str, etag: str) -> Optional[bytes]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != etag:
                return None
            self._entries.move_to_end(key)
            return entry[1]

    def put(self, key: str, etag: str, body: bytes) -> None:
        if self.size <= 0:
            return
        with self._lock:
            self._entries[key] = (etag, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _dump(document: Any) -> bytes:
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )


def _pagination(params: Dict[str, str]) -> Tuple[int, int]:
    try:
        page = int(params.get("page", "1"))
        per_page = int(params.get("per_page", str(DEFAULT_PAGE_SIZE)))
    except ValueError as exc:
        raise ApiError(400, f"bad pagination parameter: {exc}") from exc
    if page < 1:
        raise ApiError(400, "page must be >= 1")
    if not 1 <= per_page <= MAX_PAGE_SIZE:
        raise ApiError(400, f"per_page must be in [1, {MAX_PAGE_SIZE}]")
    return page, per_page


def _paginate(
    items: List[Any], params: Dict[str, str]
) -> Dict[str, Any]:
    page, per_page = _pagination(params)
    start = (page - 1) * per_page
    return {
        "page": page,
        "per_page": per_page,
        "total": len(items),
        "items": items[start : start + per_page],
    }


def _record_filter(params: Dict[str, str]) -> RecordFilter:
    asn: Optional[int] = None
    if "asn" in params:
        try:
            asn = int(params["asn"])
        except ValueError as exc:
            raise ApiError(400, f"bad asn parameter: {exc}") from exc
    min_confidence: Optional[float] = None
    if "min_confidence" in params:
        try:
            min_confidence = float(params["min_confidence"])
        except ValueError as exc:
            raise ApiError(
                400, f"bad min_confidence parameter: {exc}"
            ) from exc
        if not 0.0 <= min_confidence <= 1.0:
            raise ApiError(400, "min_confidence must be in [0, 1]")
    return RecordFilter(
        country=params.get("country"),
        asn=asn,
        product=params.get("product"),
        isp=params.get("isp"),
        category=params.get("category"),
        min_confidence=min_confidence,
    )


class StoreApi:
    """The HTTP-independent request core: route, cache, render."""

    def __init__(
        self,
        store: ResultsStore,
        *,
        monitor_dir: Optional[Union[str, Path]] = None,
        metrics: Optional[Metrics] = None,
        cache_size: int = 128,
    ) -> None:
        self.store = store
        self.engine = QueryEngine(store)
        self.monitor_dir = None if monitor_dir is None else Path(monitor_dir)
        self.metrics = metrics if metrics is not None else Metrics()
        self.cache = ResponseCache(cache_size)

    # ------------------------------------------------------------- request
    def handle(
        self, target: str, if_none_match: Optional[str] = None
    ) -> ApiResponse:
        """Serve one GET request target (path plus query string)."""
        self.metrics.incr("serve.requests")
        with self.metrics.timer("serve.request"):
            try:
                response = self._route(target, if_none_match)
            except ApiError as exc:
                response = ApiResponse(
                    status=exc.status,
                    body=_dump({"error": exc.message, "status": exc.status}),
                )
            except UnknownEpoch as exc:
                response = ApiResponse(
                    status=404, body=_dump({"error": str(exc), "status": 404})
                )
            except StoreError as exc:
                response = ApiResponse(
                    status=400, body=_dump({"error": str(exc), "status": 400})
                )
        self.metrics.incr(f"serve.responses.{response.status}")
        return response

    def _route(
        self, target: str, if_none_match: Optional[str]
    ) -> ApiResponse:
        split = urlsplit(target)
        raw_params = parse_qs(split.query, keep_blank_values=False)
        params = {key: values[-1] for key, values in raw_params.items()}
        parts = [unquote(part) for part in split.path.split("/") if part != ""]
        if parts == ["healthz"]:
            return ApiResponse(
                status=200,
                body=_dump(
                    {"status": "ok", "epochs": len(self.store.epoch_ids())}
                ),
            )
        if parts == ["metrics"]:
            # Timings are not deterministic; never cached, never ETagged.
            return ApiResponse(status=200, body=_dump(self.metrics.as_dict()))
        if not parts:
            raise ApiError(404, "no such endpoint; see /epochs")
        if parts[0] == "monitor":
            return self._route_monitor(parts, target, if_none_match, params)
        if parts[0] == "discover":
            return self._route_discover(parts, target, if_none_match, params)
        if parts[0] == "diff" and len(parts) == 1:
            return self._cached(target, if_none_match, self._render_diff, params)
        if parts[0] != "epochs":
            raise ApiError(404, f"no such endpoint: /{parts[0]}")
        if len(parts) == 1:
            return self._cached(
                target, if_none_match, self._render_epoch_list, params
            )
        epoch_id = self.store.resolve(parts[1])
        if len(parts) == 2:
            return self._cached(
                target, if_none_match, self._render_manifest, params, epoch_id
            )
        if len(parts) == 4 and parts[2] == "records":
            return self._cached(
                target,
                if_none_match,
                self._render_records,
                params,
                epoch_id,
                parts[3],
            )
        if len(parts) == 4 and parts[2] == "tables":
            return self._cached(
                target,
                if_none_match,
                self._render_table,
                params,
                epoch_id,
                parts[3],
            )
        if len(parts) == 4 and parts[2] == "countries":
            return self._cached(
                target,
                if_none_match,
                self._render_drilldown,
                params,
                epoch_id,
                "country",
                parts[3],
            )
        if len(parts) == 4 and parts[2] == "products":
            return self._cached(
                target,
                if_none_match,
                self._render_drilldown,
                params,
                epoch_id,
                "product",
                parts[3],
            )
        raise ApiError(404, f"no such endpoint: {split.path}")

    def _route_monitor(
        self,
        parts: List[str],
        target: str,
        if_none_match: Optional[str],
        params: Dict[str, str],
    ) -> ApiResponse:
        if self.monitor_dir is None:
            raise ApiError(
                404, "monitor surface not enabled; serve with --monitor DIR"
            )
        if len(parts) != 2 or parts[1] not in (
            "status",
            "targets",
            "alerts",
        ):
            raise ApiError(
                404,
                "no such monitor endpoint; one of /monitor/status, "
                "/monitor/targets, /monitor/alerts",
            )
        render = {
            "status": self._render_monitor_status,
            "targets": self._render_monitor_targets,
            "alerts": self._render_monitor_alerts,
        }[parts[1]]
        return self._cached(
            target, if_none_match, render, params, state=self._monitor_state()
        )

    # ------------------------------------------------------- cache plumbing
    def _monitor_state(self) -> str:
        """Content digest over the monitor's durable files.

        The journal and alert ledger are append-only, so hashing their
        bytes gives the same strong-ETag property the store digest gives
        the epoch endpoints: any monitor progress changes the ETag.
        """
        assert self.monitor_dir is not None
        digest = hashlib.sha256()
        for name in (JOURNAL_FILENAME, ALERTS_FILENAME):
            path = self.monitor_dir / name
            digest.update(name.encode("utf-8") + b"\x00")
            if path.exists():
                digest.update(path.read_bytes())
            digest.update(b"\x00")
        return "monitor:" + digest.hexdigest()

    def _etag(self, request_key: str, state: Optional[str] = None) -> str:
        state = state if state is not None else self.store.content_state()
        source = f"{state}|{request_key}"
        return '"' + hashlib.sha256(source.encode("utf-8")).hexdigest() + '"'

    def _cached(
        self,
        target: str,
        if_none_match: Optional[str],
        render,
        params: Dict[str, str],
        *args: Any,
        state: Optional[str] = None,
    ) -> ApiResponse:
        key = target
        etag = self._etag(key, state)
        if if_none_match is not None and etag in {
            candidate.strip()
            for candidate in if_none_match.split(",")
        }:
            self.metrics.incr("serve.not_modified")
            return ApiResponse(status=304, body=b"", etag=etag)
        body = self.cache.get(key, etag)
        if body is not None:
            self.metrics.incr("serve.cache.hits")
        else:
            self.metrics.incr("serve.cache.misses")
            with self.metrics.timer("serve.render"):
                body = _dump(render(params, *args))
            self.cache.put(key, etag, body)
        return ApiResponse(status=200, body=body, etag=etag)

    # ------------------------------------------------------------ renderers
    def _render_epoch_list(self, params: Dict[str, str]) -> Dict[str, Any]:
        manifests = self.engine.epochs(_record_filter(params))
        return _paginate([m.summary() for m in manifests], params)

    def _render_manifest(
        self, params: Dict[str, str], epoch_id: str
    ) -> Dict[str, Any]:
        manifest = self.store.manifest(epoch_id)
        document = manifest.to_document()
        document["tables"] = self.engine.tables_available(epoch=epoch_id)
        return document

    def _render_records(
        self, params: Dict[str, str], epoch_id: str, kind: str
    ) -> Dict[str, Any]:
        if kind not in RECORD_KINDS:
            raise ApiError(
                404, f"no such record kind {kind!r}; one of {list(RECORD_KINDS)}"
            )
        rows = self.engine.select(
            kind, epoch=epoch_id, record_filter=_record_filter(params)
        )
        document = _paginate(rows, params)
        document["epoch"] = epoch_id
        document["kind"] = kind
        return document

    def _render_table(
        self, params: Dict[str, str], epoch_id: str, name: str
    ) -> Dict[str, Any]:
        if name not in TABLE_NAMES:
            raise ApiError(
                404, f"no such table {name!r}; one of {list(TABLE_NAMES)}"
            )
        try:
            rendered = self.engine.table(name, epoch=epoch_id)
        except ValueError as exc:
            raise ApiError(404, str(exc)) from exc
        return {"epoch": epoch_id, "table": name, "rendered": rendered}

    def _render_drilldown(
        self,
        params: Dict[str, str],
        epoch_id: str,
        dimension: str,
        value: str,
    ) -> Dict[str, Any]:
        record_filter = (
            RecordFilter(country=value)
            if dimension == "country"
            else RecordFilter(product=value)
        )
        manifest = self.store.manifest(epoch_id)
        if value not in manifest.keys.get(dimension, ()):
            raise ApiError(
                404,
                f"epoch {manifest.short_id} has no {dimension} {value!r}",
            )
        document: Dict[str, Any] = {
            "epoch": epoch_id,
            dimension: value,
        }
        for kind in RECORD_KINDS:
            if kind not in manifest.segments:
                continue
            rows = self.engine.select(
                kind, epoch=epoch_id, record_filter=record_filter
            )
            document[kind] = rows
        return document

    def _render_diff(self, params: Dict[str, str]) -> Dict[str, Any]:
        diff = self.engine.diff(params.get("old"), params.get("new"))
        return diff.to_document()

    # --------------------------------------------------------- discovery
    def _route_discover(
        self,
        parts: List[str],
        target: str,
        if_none_match: Optional[str],
        params: Dict[str, str],
    ) -> ApiResponse:
        if len(parts) != 2 or parts[1] not in ("rounds", "candidates"):
            raise ApiError(
                404,
                "discovery endpoints: /discover/rounds, /discover/candidates",
            )
        kind = f"discovery_{parts[1]}"
        return self._cached(
            target, if_none_match, self._render_discover, params, kind
        )

    def _discovery_epoch(self, ref: Optional[str]) -> str:
        """The epoch to serve discovery rows from: ``ref`` or the newest."""
        if ref:
            epoch_id = self.store.resolve(ref)
            manifest = self.store.manifest(epoch_id)
            if "discovery_rounds" not in manifest.segments:
                raise ApiError(
                    404,
                    f"epoch {manifest.short_id} holds no discovery records",
                )
            return epoch_id
        for manifest in reversed(self.store.manifests()):
            if "discovery_rounds" in manifest.segments:
                return manifest.epoch_id
        raise ApiError(
            404,
            "no discovery epochs committed; run `repro discover --store`",
        )

    def _render_discover(
        self, params: Dict[str, str], kind: str
    ) -> Dict[str, Any]:
        epoch_id = self._discovery_epoch(params.get("epoch"))
        rows = self.engine.select(
            kind, epoch=epoch_id, record_filter=_record_filter(params)
        )
        document = _paginate(rows, params)
        document["epoch"] = epoch_id
        document["kind"] = kind
        return document

    def _monitor_status_doc(self) -> Dict[str, Any]:
        assert self.monitor_dir is not None
        status = read_status(self.monitor_dir)
        if status is None:
            raise ApiError(
                404, f"monitor has not started (no journal in {self.monitor_dir})"
            )
        return status

    def _render_monitor_status(self, params: Dict[str, str]) -> Dict[str, Any]:
        status = self._monitor_status_doc()
        status.pop("targets", None)  # /monitor/targets owns the table
        return status

    def _render_monitor_targets(
        self, params: Dict[str, str]
    ) -> Dict[str, Any]:
        status = self._monitor_status_doc()
        targets = [status["targets"][key] for key in sorted(status["targets"])]
        document = _paginate(targets, params)
        document["state"] = status["state"]
        return document

    def _render_monitor_alerts(
        self, params: Dict[str, str]
    ) -> Dict[str, Any]:
        self._monitor_status_doc()  # 404 before the monitor ever began
        assert self.monitor_dir is not None
        alerts = read_alerts(self.monitor_dir / ALERTS_FILENAME)
        return _paginate(alerts, params)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing around the shared :class:`StoreApi`."""

    api: StoreApi  # set by ResultsServer on the subclass

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate small writes; without this,
    # Nagle + delayed ACK stalls every keep-alive request ~40ms.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        response = self.api.handle(
            self.path, self.headers.get("If-None-Match")
        )
        try:
            self.send_response(response.status)
            for name, value in response.headers:
                if response.status == 304 and name == "Content-Length":
                    value = "0"
                self.send_header(name, value)
            self.end_headers()
            if response.status != 304 and response.body:
                self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response. That is their privilege,
            # not our stack trace: count it and drop the connection.
            self.api.metrics.incr("serve.client_disconnects")
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        # Request accounting goes through Metrics, not stderr.
        pass


class _QuietServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client disconnects as routine.

    A reset can surface outside ``do_GET`` (during the request read, or
    the keep-alive flush in ``finish``); the stock ``handle_error``
    dumps those to stderr as full stack traces. Disconnects are counted
    in metrics instead; every other error keeps the loud default.
    """

    api: StoreApi  # set by ResultsServer on the subclass

    def handle_error(self, request: Any, client_address: Any) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            self.api.metrics.incr("serve.client_disconnects")
            return
        super().handle_error(request, client_address)


class ResultsServer:
    """A threaded HTTP server bound to one store.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after ``start()``). Use as a context manager in tests::

        with ResultsServer(store) as server:
            http.client.HTTPConnection("127.0.0.1", server.port)
    """

    def __init__(
        self,
        store: ResultsStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        monitor_dir: Optional[Union[str, Path]] = None,
        metrics: Optional[Metrics] = None,
        cache_size: int = 128,
    ) -> None:
        self.api = StoreApi(
            store,
            monitor_dir=monitor_dir,
            metrics=metrics,
            cache_size=cache_size,
        )
        handler = type("_BoundHandler", (_Handler,), {"api": self.api})
        server_cls = type("_BoundServer", (_QuietServer,), {"api": self.api})
        self._server = server_cls((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def metrics(self) -> Metrics:
        return self.api.metrics

    def start(self) -> "ResultsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI (Ctrl-C to stop)."""
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()

    def __enter__(self) -> "ResultsServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

"""Longitudinal diffs between stored epochs.

Two epochs of the same study are two measurements of the same network
at different times; the diff is the paper's temporal story made
explicit — a product *appearing* in an ISP (Netsweeper spreading to new
deployments), *persisting* (SmartFilter re-confirmed in Etisalat in
9/2012 and 4/2013, §4.3), or being *withdrawn* (Websense cutting off
Yemen, Blue Coat dropping Syrian update support, §2.2). Installation
churn reproduces Figure 1's repeated-scan framing: which filter IPs
appeared or vanished between scans.

:func:`sequence_transitions` is the single transition rule; both the
epoch diff and :mod:`repro.core.monitor`'s in-memory series delegate to
it, so the store-backed and live views can never disagree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.store import EpochManifest, ResultsStore


class TransitionKind(enum.Enum):
    """What happened to a (product, ISP) pair between two epochs."""

    APPEARED = "appeared"  # not confirmed -> confirmed
    WITHDRAWN = "withdrawn"  # confirmed -> not confirmed
    PERSISTED = "persisted"  # confirmed in both epochs


def sequence_transitions(states: Sequence[bool]) -> List[Tuple[int, TransitionKind]]:
    """Transitions along a confirmed/not-confirmed timeline.

    Returns ``(index, kind)`` pairs where ``index`` is the position of
    the *later* state. Consecutive confirmations yield PERSISTED;
    not→not yields nothing (absence of evidence both times says nothing
    about change).
    """
    found: List[Tuple[int, TransitionKind]] = []
    for index in range(1, len(states)):
        earlier, later = states[index - 1], states[index]
        if earlier and later:
            found.append((index, TransitionKind.PERSISTED))
        elif later and not earlier:
            found.append((index, TransitionKind.APPEARED))
        elif earlier and not later:
            found.append((index, TransitionKind.WITHDRAWN))
    return found


@dataclass(frozen=True)
class PairTransition:
    """One (product, ISP) pair's transition between two epochs."""

    product: str
    isp: str
    kind: TransitionKind

    def to_document(self) -> Dict[str, Any]:
        return {
            "product": self.product,
            "isp": self.isp,
            "transition": self.kind.value,
        }


@dataclass(frozen=True)
class ChurnReport:
    """Installation churn between two scan epochs (Figure 1 framing)."""

    appeared: Tuple[Dict[str, Any], ...]
    withdrawn: Tuple[Dict[str, Any], ...]
    persisted_count: int

    def to_document(self) -> Dict[str, Any]:
        return {
            "appeared": list(self.appeared),
            "withdrawn": list(self.withdrawn),
            "appeared_count": len(self.appeared),
            "withdrawn_count": len(self.withdrawn),
            "persisted_count": self.persisted_count,
        }


@dataclass
class EpochDiff:
    """Everything that changed between an older and a newer epoch."""

    old: EpochManifest
    new: EpochManifest
    transitions: List[PairTransition] = field(default_factory=list)
    churn: Optional[ChurnReport] = None

    def to_document(self) -> Dict[str, Any]:
        return {
            "old": self.old.epoch_id,
            "new": self.new.epoch_id,
            "window": {
                "old": {
                    "start_minutes": self.old.window_start,
                    "end_minutes": self.old.window_end,
                },
                "new": {
                    "start_minutes": self.new.window_start,
                    "end_minutes": self.new.window_end,
                },
            },
            "transitions": [t.to_document() for t in self.transitions],
            "churn": None if self.churn is None else self.churn.to_document(),
        }

    def by_kind(self, kind: TransitionKind) -> List[PairTransition]:
        return [t for t in self.transitions if t.kind is kind]

    def summary_lines(self) -> List[str]:
        lines = [f"diff {self.old.short_id} -> {self.new.short_id}"]
        for kind in TransitionKind:
            pairs = self.by_kind(kind)
            if not pairs:
                continue
            rendered = ", ".join(f"{t.product} in {t.isp}" for t in pairs)
            lines.append(f"  {kind.value:10s} {rendered}")
        if not self.transitions:
            lines.append("  no (product, isp) transitions")
        if self.churn is not None:
            lines.append(
                f"  churn: {len(self.churn.appeared)} installation(s) "
                f"appeared, {len(self.churn.withdrawn)} withdrawn, "
                f"{self.churn.persisted_count} persisted"
            )
        return lines


def pair_states(rows: Sequence[Dict[str, Any]]) -> Dict[Tuple[str, str], bool]:
    """(product, isp) → confirmed, from stored confirmation rows.

    A pair measured more than once in one epoch (several Table 3
    categories) counts as confirmed if any measurement confirmed —
    matching :meth:`repro.core.pipeline.StudyReport.confirmed_pairs`.
    """
    states: Dict[Tuple[str, str], bool] = {}
    for row in rows:
        key = (row["product"], row["isp"])
        states[key] = states.get(key, False) or bool(row["confirmed"])
    return states


def _installation_keys(
    rows: Sequence[Dict[str, Any]]
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    return {
        (row["ip"], row["product"]): row
        for row in rows
    }


def installation_churn(
    old_rows: Sequence[Dict[str, Any]], new_rows: Sequence[Dict[str, Any]]
) -> ChurnReport:
    """IPs/installations appearing and disappearing between scans."""
    old_keys = _installation_keys(old_rows)
    new_keys = _installation_keys(new_rows)

    def _entry(row: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "ip": row["ip"],
            "product": row["product"],
            "country": row.get("country"),
            "asn": row.get("asn"),
        }

    appeared = tuple(
        _entry(new_keys[key])
        for key in sorted(set(new_keys) - set(old_keys))
    )
    withdrawn = tuple(
        _entry(old_keys[key])
        for key in sorted(set(old_keys) - set(new_keys))
    )
    persisted = len(set(old_keys) & set(new_keys))
    return ChurnReport(
        appeared=appeared, withdrawn=withdrawn, persisted_count=persisted
    )


def diff_epochs(store: ResultsStore, old_ref: str, new_ref: str) -> EpochDiff:
    """The longitudinal diff between two committed epochs."""
    old_id = store.resolve(old_ref)
    new_id = store.resolve(new_ref)
    old_manifest = store.manifest(old_id)
    new_manifest = store.manifest(new_id)
    old_states = pair_states(store.records(old_id, "confirmations"))
    new_states = pair_states(store.records(new_id, "confirmations"))
    transitions: List[PairTransition] = []
    for key in sorted(set(old_states) | set(new_states)):
        earlier = old_states.get(key, False)
        later = new_states.get(key, False)
        for _index, kind in sequence_transitions([earlier, later]):
            transitions.append(PairTransition(key[0], key[1], kind))
    churn: Optional[ChurnReport] = None
    has_scans = (
        "installations" in old_manifest.segments
        or "installations" in new_manifest.segments
    )
    if has_scans:
        churn = installation_churn(
            store.records(old_id, "installations"),
            store.records(new_id, "installations"),
        )
    return EpochDiff(
        old=old_manifest,
        new=new_manifest,
        transitions=transitions,
        churn=churn,
    )


def stored_states(
    store: ResultsStore, product: str, isp: str
) -> List[Tuple[int, bool]]:
    """(window start, confirmed) per epoch mentioning this pair.

    The store-backed equivalent of a monitoring series: epochs are
    located through the product and ISP indexes (never a full scan) and
    read in commit order.
    """
    candidates = [
        epoch_id
        for epoch_id in store.lookup("product", product)
        if epoch_id in set(store.lookup("isp", isp))
    ]
    timeline: List[Tuple[int, bool]] = []
    for epoch_id in candidates:
        states = pair_states(store.records(epoch_id, "confirmations"))
        confirmed = states.get((product, isp))
        if confirmed is None:
            continue
        timeline.append((store.manifest(epoch_id).window_start, confirmed))
    return timeline

"""Typed queries over a results store.

The engine is the read side of the longitudinal subsystem: filters and
aggregates over stored record rows, the table views, and the epoch
diffs. Epoch *selection* goes through the store's secondary indexes
(country, ASN, product, ISP, category) so a lookup touches only the
epochs that can possibly match; record-level filtering then happens on
the rows of those epochs alone.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.query.diff import EpochDiff, diff_epochs
from repro.query.views import available_tables, render_epoch_table
from repro.store import (
    EpochManifest,
    RECORD_KINDS,
    ResultsStore,
    StoreError,
)


@dataclass(frozen=True)
class RecordFilter:
    """A conjunctive record filter over the indexed dimensions."""

    country: Optional[str] = None
    asn: Optional[int] = None
    product: Optional[str] = None
    isp: Optional[str] = None
    category: Optional[str] = None
    #: Minimum fused verdict confidence. Not an indexed dimension: rows
    #: committed without ``record_confidence`` carry no confidence field
    #: and are treated as fully confident (1.0), so they always pass.
    min_confidence: Optional[float] = None

    def constraints(self) -> List[Tuple[str, str]]:
        """(dimension, value-as-string) for every set indexed field."""
        found = []
        for spec in fields(self):
            if spec.name == "min_confidence":
                continue
            value = getattr(self, spec.name)
            if value is not None:
                found.append((spec.name, str(value)))
        return found

    def matches(self, row: Dict[str, Any]) -> bool:
        for dimension, value in self.constraints():
            if str(row.get(dimension)) != value:
                return False
        if self.min_confidence is not None:
            if float(row.get("confidence", 1.0)) < self.min_confidence:
                return False
        return True

    @property
    def empty(self) -> bool:
        return not self.constraints() and self.min_confidence is None


class QueryEngine:
    """Filter / aggregate / diff operations over one results store."""

    def __init__(self, store: ResultsStore) -> None:
        self.store = store

    # ----------------------------------------------------------- selection
    def epoch_ids(
        self, record_filter: Optional[RecordFilter] = None
    ) -> List[str]:
        """Committed epoch ids (oldest first) matching the filter.

        Index-driven: each constraint narrows the candidate set via its
        secondary index; no epoch segment is ever scanned here.
        """
        candidates = self.store.epoch_ids()
        if record_filter is None or record_filter.empty:
            return candidates
        surviving = set(candidates)
        for dimension, value in record_filter.constraints():
            surviving &= set(self.store.lookup(dimension, value))
        return [epoch_id for epoch_id in candidates if epoch_id in surviving]

    def epochs(
        self, record_filter: Optional[RecordFilter] = None
    ) -> List[EpochManifest]:
        return [
            self.store.manifest(epoch_id)
            for epoch_id in self.epoch_ids(record_filter)
        ]

    def latest(self) -> EpochManifest:
        ids = self.store.epoch_ids()
        if not ids:
            raise StoreError(f"store {self.store.root} has no epochs")
        return self.store.manifest(ids[-1])

    def _resolve_epoch(self, epoch: Optional[str]) -> str:
        if epoch is None:
            return self.latest().epoch_id
        return self.store.resolve(epoch)

    # ------------------------------------------------------------- records
    def select(
        self,
        kind: str,
        *,
        epoch: Optional[str] = None,
        record_filter: Optional[RecordFilter] = None,
    ) -> List[Dict[str, Any]]:
        """Record rows of one kind from one epoch (default: newest)."""
        if kind not in RECORD_KINDS:
            raise StoreError(
                f"unknown record kind {kind!r}; one of {RECORD_KINDS}"
            )
        rows = self.store.records(self._resolve_epoch(epoch), kind)
        if record_filter is None or record_filter.empty:
            return rows
        return [row for row in rows if record_filter.matches(row)]

    def aggregate(
        self,
        kind: str,
        by: Sequence[str],
        *,
        epoch: Optional[str] = None,
        record_filter: Optional[RecordFilter] = None,
    ) -> List[Dict[str, Any]]:
        """Group-and-count rows by the given dimensions, sorted by key."""
        if not by:
            raise StoreError("aggregate needs at least one grouping field")
        counts: Dict[Tuple[str, ...], int] = {}
        for row in self.select(
            kind, epoch=epoch, record_filter=record_filter
        ):
            key = tuple(str(row.get(dimension)) for dimension in by)
            counts[key] = counts.get(key, 0) + 1
        return [
            {**dict(zip(by, key)), "count": count}
            for key, count in sorted(counts.items())
        ]

    # -------------------------------------------------------------- tables
    def table(self, name: str, *, epoch: Optional[str] = None) -> str:
        """A rendered table, byte-identical to the live renderers."""
        manifest = self.store.manifest(self._resolve_epoch(epoch))
        return render_epoch_table(self.store, manifest, name)

    def tables_available(self, *, epoch: Optional[str] = None) -> List[str]:
        return available_tables(self.store.manifest(self._resolve_epoch(epoch)))

    # ---------------------------------------------------------------- diff
    def diff(
        self, old: Optional[str] = None, new: Optional[str] = None
    ) -> EpochDiff:
        """Diff two epochs; defaults to the two most recent commits."""
        ids = self.store.epoch_ids()
        if old is None or new is None:
            if len(ids) < 2:
                raise StoreError(
                    "diff needs two committed epochs "
                    f"(store has {len(ids)})"
                )
            old = old if old is not None else ids[-2]
            new = new if new is not None else ids[-1]
        return diff_epochs(self.store, old, new)

    def churn_series(self) -> List[EpochDiff]:
        """Pairwise diffs across every consecutive epoch pair."""
        ids = self.store.epoch_ids()
        return [
            diff_epochs(self.store, earlier, later)
            for earlier, later in zip(ids, ids[1:])
        ]

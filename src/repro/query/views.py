"""Render stored epochs through the canonical table renderers.

The serving layer must never fork the presentation logic: a table
served from the store has to be byte-identical to the same table
rendered live by :mod:`repro.analysis.tables`. These views rebuild the
renderers' minimal input surface from stored rows (small shims exposing
exactly the attributes each renderer reads) and then call the *same*
render functions the live pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.tables import (
    render_category_probe,
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.measure.testlists import Table4Column
from repro.store import EpochManifest, ResultsStore

#: The table names the query engine and serving API expose.
TABLE_NAMES = (
    "table1",
    "table2",
    "figure1",
    "table3",
    "table4",
    "probe",
)


class _StoredIdentification:
    """Ducks the slice of IdentificationReport that render_figure1 reads."""

    def __init__(
        self, rows: Sequence[Dict[str, Any]], products: Tuple[str, ...]
    ) -> None:
        self._rows = rows
        self.products = products

    def countries(self, product: str) -> Set[str]:
        return {
            row["country"]
            for row in self._rows
            if row["product"] == product and row["country"]
        }


@dataclass(frozen=True)
class _StoredConfig:
    product_name: str
    isp_name: str
    category_label: str


class _StoredConfirmation:
    """Ducks the slice of ConfirmationResult that render_table3 reads."""

    def __init__(self, row: Dict[str, Any]) -> None:
        self.config = _StoredConfig(
            product_name=row["product"],
            isp_name=row["isp"],
            category_label=row["category"],
        )
        self.blocked_submitted = row["blocked_submitted"]
        self.submitted_outcomes = tuple(range(row["submitted_outcomes"]))
        self.confirmed = row["confirmed"]


class _StoredCharacterization:
    """Ducks the slice of CharacterizationResult render_table4 reads."""

    def __init__(self, rows: Sequence[Dict[str, Any]]) -> None:
        self._rows = rows

    def table4_columns(self) -> Set[Table4Column]:
        columns: Set[Table4Column] = set()
        for row in self._rows:
            if row["blocked"] > 0 and row.get("table4_column"):
                columns.add(Table4Column(row["table4_column"]))
        return columns


class _StoredProbe:
    """Ducks the slice of CategoryProbeResult render_category_probe reads."""

    def __init__(self, row: Dict[str, Any]) -> None:
        self.blocked_names = list(row["blocked"])
        self.tested = row["tested"]


def _epoch_products(manifest: EpochManifest) -> Optional[List[str]]:
    products = manifest.identity.get("products")
    if products is None:
        return None
    return list(products)


def render_epoch_table(
    store: ResultsStore, manifest: EpochManifest, name: str
) -> str:
    """One named table for one epoch, byte-identical to the live render."""
    if name not in TABLE_NAMES:
        raise ValueError(f"unknown table {name!r}; one of {TABLE_NAMES}")
    epoch_id = manifest.epoch_id
    if name == "table1":
        return render_table1()
    if name == "table2":
        return render_table2(_epoch_products(manifest))
    if name == "figure1":
        rows = store.records(epoch_id, "installations")
        products = _epoch_products(manifest)
        from repro.products.registry import default_registry

        names = (
            tuple(products)
            if products is not None
            else tuple(default_registry().default_names())
        )
        return render_figure1(_StoredIdentification(rows, names))
    if name == "table3":
        rows = store.records(epoch_id, "confirmations")
        return render_table3([_StoredConfirmation(row) for row in rows])
    if name == "table4":
        rows = store.records(epoch_id, "characterizations")
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for row in rows:
            grouped.setdefault(row["isp"], []).append(row)
        return render_table4(
            {
                isp: _StoredCharacterization(isp_rows)
                for isp, isp_rows in grouped.items()
            }
        )
    rows = store.records(epoch_id, "category_probe")
    if not rows:
        raise ValueError(f"epoch {manifest.short_id} has no category probe")
    return render_category_probe(_StoredProbe(rows[0]))


def available_tables(manifest: EpochManifest) -> List[str]:
    """Which table views this epoch's segments can back."""
    names = ["table1", "table2"]
    if "installations" in manifest.segments:
        names.append("figure1")
    if "confirmations" in manifest.segments:
        names.append("table3")
    if "characterizations" in manifest.segments:
        names.append("table4")
    if "category_probe" in manifest.segments:
        names.append("probe")
    return names

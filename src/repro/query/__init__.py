"""repro.query — filter/aggregate/diff over the longitudinal store.

The read side of :mod:`repro.store`: typed record filters, grouped
aggregates, canonical table views, and the APPEARED / WITHDRAWN /
PERSISTED epoch diffs that :mod:`repro.core.monitor` and the serving
API are built on.
"""

from repro.query.diff import (
    ChurnReport,
    EpochDiff,
    PairTransition,
    TransitionKind,
    diff_epochs,
    installation_churn,
    pair_states,
    sequence_transitions,
    stored_states,
)
from repro.query.engine import QueryEngine, RecordFilter
from repro.query.views import TABLE_NAMES, available_tables, render_epoch_table

__all__ = [
    "ChurnReport",
    "EpochDiff",
    "PairTransition",
    "QueryEngine",
    "RecordFilter",
    "TABLE_NAMES",
    "TransitionKind",
    "available_tables",
    "diff_epochs",
    "installation_churn",
    "pair_states",
    "render_epoch_table",
    "sequence_transitions",
    "stored_states",
]

"""Deployment layer: filter middleboxes, policies, stacked installs."""

from repro.middlebox.deploy import (
    deploy,
    deploy_stacked,
    register_vendor_infrastructure,
)
from repro.middlebox.filter_box import FilterMiddlebox
from repro.middlebox.policy import BlockMode, CUSTOM_CATEGORY, FilterPolicy

__all__ = [
    "BlockMode",
    "CUSTOM_CATEGORY",
    "FilterMiddlebox",
    "FilterPolicy",
    "deploy",
    "deploy_stacked",
    "register_vendor_infrastructure",
]

"""A deployed URL-filtering middlebox.

The box sits on an ISP's forwarding path (``ISP.devices``) and
implements the world's :class:`~repro.world.entities.OnPathDevice`
protocol. It separates two roles that §4.5 shows can diverge:

- the **appliance** product: what the box physically is, hence what its
  externally visible admin surface and banners look like (what Shodan
  indexes and WhatWeb fingerprints), and
- the **engine** product: whose categorization database actually decides
  blocking (Etisalat runs SmartFilter *atop* a Blue Coat ProxySG, so
  submissions to Blue Coat's database change nothing — Table 3's 0/3).

By default the two are the same product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.http import HttpRequest, HttpResponse
from repro.net.ip import Ipv4Address
from repro.products.base import (
    DeploymentContext,
    UrlFilterProduct,
    strip_signature_headers,
)
from repro.products.database import DatabaseSubscription
from repro.products.licensing import LicenseModel
from repro.products.registry import default_registry
from repro.middlebox.behaviors import plain_block_response
from repro.middlebox.policy import BlockMode, CUSTOM_CATEGORY, FilterPolicy
from repro.world.clock import SimTime
from repro.world.entities import Host, InterceptAction, InterceptKind


@dataclass
class FilterMiddlebox:
    """One installation of a URL-filtering product inside an ISP."""

    name: str
    appliance: UrlFilterProduct
    subscription: DatabaseSubscription
    policy: FilterPolicy
    box_ip: Ipv4Address
    box_hostname: str = ""
    engine: Optional[UrlFilterProduct] = None
    license: Optional[LicenseModel] = None
    externally_visible: bool = False
    enabled: bool = True
    world_host: Optional[Host] = field(default=None, repr=False)
    intercept_count: int = field(default=0, repr=False)
    block_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = self.appliance
        if self.subscription.master is not self.engine.database:
            raise ValueError(
                f"{self.name}: subscription must read the engine's database "
                f"({self.engine.vendor})"
            )

    # --------------------------------------------------------- durability
    def capture_state(self) -> dict:
        """Plain-data installation state for study checkpoints.

        Counters are output-visible through the monitoring surfaces;
        subscription cutoffs and the enabled flag normally change only
        at scenario build, but capturing them keeps a resumed world
        faithful even if an experiment script toggled them mid-run.
        """
        return {
            "intercepts": self.intercept_count,
            "blocks": self.block_count,
            "enabled": self.enabled,
            "subscription_active": self.subscription.active,
            "subscription_cutoff": (
                None
                if self.subscription.cutoff is None
                else self.subscription.cutoff.minutes
            ),
        }

    def restore_state(self, state: dict) -> None:
        self.intercept_count = state["intercepts"]
        self.block_count = state["blocks"]
        self.enabled = state["enabled"]
        self.subscription.active = state["subscription_active"]
        cutoff = state["subscription_cutoff"]
        self.subscription.cutoff = None if cutoff is None else SimTime(cutoff)

    # ------------------------------------------------------------ context
    def deployment_context(self) -> DeploymentContext:
        host = self.box_hostname or str(self.box_ip)
        return DeploymentContext(box_host=host, config=self.policy.block_page)

    def _is_self_traffic(self, request: HttpRequest) -> bool:
        target = request.url.host
        return target == self.box_hostname or target == str(self.box_ip)

    # ---------------------------------------------------------- intercept
    def intercept(self, request: HttpRequest, now: SimTime) -> InterceptAction:
        """Decide the fate of one outbound client request."""
        if not self.enabled:
            return InterceptAction.passthrough()
        if self._is_self_traffic(request):
            # Deny pages and the admin console must stay reachable.
            return InterceptAction.passthrough()
        if self.license is not None and not self.license.filtering_active(
            now, request.url.host
        ):
            # Fail-open license overflow (§4.4, Challenge 2).
            return InterceptAction.passthrough()
        self.intercept_count += 1
        engine = self.engine
        assert engine is not None
        url = request.url
        if self.policy.custom_blocks_host(url.host):
            return self._deny(request, CUSTOM_CATEGORY)
        if not self.policy.honor_category_test_pages and self._is_probe(url):
            return InterceptAction.passthrough()
        category = engine.decide(url, self.subscription, now)
        if category is not None and self.policy.blocks(category):
            return self._deny(request, category)
        engine.on_passthrough(url, now)
        return InterceptAction.passthrough()

    def _deny(self, request: HttpRequest, category) -> InterceptAction:
        """Apply the block mode and count what actually interfered.

        A plain PASS with no delay (e.g. SNI mode seeing an HTTP
        request it cannot touch) is not a block and must not inflate
        the counter the monitoring surfaces report.
        """
        action = self._block(request, category)
        if action.kind is not InterceptKind.PASS or action.delay_ms > 0:
            self.block_count += 1
        return action

    def _is_probe(self, url) -> bool:
        assert self.engine is not None
        test_host = self.engine.category_test_host
        return test_host is not None and url.host == test_host

    def _block(self, request: HttpRequest, category) -> InterceptAction:
        mode = self.policy.block_mode
        if mode is BlockMode.RESET:
            return InterceptAction(InterceptKind.RESET)
        if mode is BlockMode.DROP:
            return InterceptAction(InterceptKind.DROP)
        if mode is BlockMode.SNI_RESET:
            # SNI filtering only sees TLS handshakes; a plain-HTTP
            # request carries no server name to match on and sails by.
            if request.url.scheme == "https":
                return InterceptAction(InterceptKind.TLS_RESET)
            return InterceptAction.passthrough()
        if mode is BlockMode.RST_INJECT:
            return InterceptAction(InterceptKind.RST_INJECT)
        if mode is BlockMode.THROTTLE:
            return InterceptAction(
                InterceptKind.PASS, delay_ms=self.policy.throttle_delay_ms
            )
        if mode is BlockMode.HTTP200_PLAIN:
            return InterceptAction(
                InterceptKind.RESPOND, plain_block_response(request)
            )
        assert self.engine is not None
        response = self.engine.block_response(
            request, category, self.deployment_context()
        )
        if self.policy.block_page.strip_signature_headers:
            response = strip_signature_headers(response)
        return InterceptAction(InterceptKind.RESPOND, response)

    # ----------------------------------------------------------- annotate
    def annotate_response(
        self, request: HttpRequest, response: HttpResponse
    ) -> HttpResponse:
        """Stamp forwarded responses the way a proxy appliance would.

        Each spec's ``proxy_annotation`` is the Via-style header its
        appliance adds to everything it forwards — the on-wire residue
        Netalyzr-style fingerprinting (§1, §7) picks up. Masked
        deployments (§6.1) stamp a generic token instead — a proxy is
        still detectable, but not attributable.
        """
        if not self.enabled or self._is_self_traffic(request):
            return response
        annotations = default_registry().proxy_annotations()
        annotation = annotations.get(self.appliance.vendor)
        if annotation is None:
            return response
        headers = response.headers.copy()
        if self.policy.block_page.strip_signature_headers:
            headers.add("Via", "1.1 gateway")
        else:
            headers.add(*annotation)
        return HttpResponse(response.status, headers, response.body)

    # ------------------------------------------------------------ surface
    def make_host(self) -> Host:
        """The box's externally reachable Host (admin console, deny pages).

        Built from the *appliance* product — the surface a scanner sees
        is the appliance's, even when a different engine decides policy.
        """
        host = Host(
            ip=self.box_ip,
            hostname=self.box_hostname,
            tags=["middlebox", self.appliance.vendor],
        )
        for port, app in self.appliance.admin_apps(self.deployment_context()).items():
            host.add_service(port, app)
        # The engine's deny pages must be served from this box too when
        # the engine differs (deny redirects point at the box).
        if self.engine is not self.appliance:
            assert self.engine is not None
            for port, app in self.engine.admin_apps(self.deployment_context()).items():
                if port not in host.services:
                    host.add_service(port, app)
        return host

    def hide(self) -> None:
        """§6.1 evasion: stop exposing the box to the global Internet.

        Deny pages stay reachable for in-network clients; external
        scanners lose sight of the box.
        """
        self.externally_visible = False
        if self.world_host is not None:
            self.world_host.internal_only = True

    def expose(self) -> None:
        """Re-expose the box (the §3.1 misconfiguration)."""
        self.externally_visible = True
        if self.world_host is not None:
            self.world_host.internal_only = False

    def __str__(self) -> str:
        engine = self.engine.vendor if self.engine else "?"
        if engine != self.appliance.vendor:
            return f"{self.name} [{self.appliance.vendor} + {engine} engine]"
        return f"{self.name} [{self.appliance.vendor}]"

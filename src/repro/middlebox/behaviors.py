"""Censorship behaviors beyond vendor block pages.

The paper's products all serve explicit block pages; real deployments
also censor in ways no block-page regex can see. This module builds the
responses/actions for those modes (:class:`~repro.middlebox.policy.BlockMode`
HTTP200_PLAIN, SNI_RESET, RST_INJECT, THROTTLE) — the cases only the
evidence-based verdict path (:mod:`repro.measure.classifiers`) can
classify correctly.
"""

from __future__ import annotations

from repro.net.http import HttpRequest, HttpResponse, ok_response

#: Body of the unbranded HTTP-200 censorship page. Deliberately free of
#: every vendor marker in the §5 corpus: nothing here is attributable.
PLAIN_BLOCK_BODY = (
    "<h1>Access denied</h1>"
    "<p>The requested web resource is unavailable on this network "
    "by order of the competent authority.</p>"
)


def plain_block_response(request: HttpRequest) -> HttpResponse:
    """An HTTP-200 censorship page that spoofs the origin's title.

    Status 200, no vendor strings, and an ``<title>`` equal to the
    requested host (the origin's usual title): invisible to status-code
    anomaly checks, to the block-page corpus, and to any comparator
    whose content check short-circuits on matching titles. Only a body
    structure/word comparison against the lab view reveals it.
    """
    return ok_response(request.url.host, PLAIN_BLOCK_BODY)

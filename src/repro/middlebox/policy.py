"""Per-deployment filtering policy.

A product ships a taxonomy; the *network operator* chooses which
categories to deny (§2.1). The policy also controls block-page
presentation (branding removal, §2.2), the blocking mechanism, and
whether Netsweeper's diagnostic category-test pages are honored (§4.4:
the probe "is only viable in networks where the tool has not been
disabled").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.products.base import BlockPageConfig
from repro.products.categories import Taxonomy, VendorCategory


class BlockMode(enum.Enum):
    """How the deployment denies a request."""

    BLOCKPAGE = "blockpage"  # explicit block page (the products studied)
    RESET = "reset"  # inject TCP RST (other censorship styles)
    DROP = "drop"  # silently drop (client times out)
    #: Serve an unbranded HTTP-200 censorship page that even spoofs the
    #: origin's title — invisible to status-code checks and to any
    #: comparator that trusts matching titles.
    HTTP200_PLAIN = "http200_plain"
    #: Tear down TLS handshakes on the server name; plain HTTP passes.
    SNI_RESET = "sni_reset"
    #: Fire an RST at the client while the origin's content races it;
    #: the page usually arrives intact.
    RST_INJECT = "rst_inject"
    #: Let the page through, but hold the flow — soft censorship by
    #: delay rather than denial.
    THROTTLE = "throttle"


#: The pseudo-category used for operator custom lists (§2.1: products
#: offer "the ability to create custom categories for blocking"). Number
#: 0 never collides with vendor taxonomies (they start at 1), so the
#: §4.4 category probe — which enumerates *vendor* categories — cannot
#: see custom blocking.
CUSTOM_CATEGORY = VendorCategory(0, "Custom Category")


@dataclass
class FilterPolicy:
    """The operator-facing configuration of one installation."""

    blocked_categories: FrozenSet[str] = frozenset()
    custom_blocked_hosts: FrozenSet[str] = frozenset()
    block_page: BlockPageConfig = field(default_factory=BlockPageConfig)
    block_mode: BlockMode = BlockMode.BLOCKPAGE
    honor_category_test_pages: bool = True
    #: Flow hold applied per hop under :data:`BlockMode.THROTTLE`, in
    #: model milliseconds (world latency units, not wall clock).
    throttle_delay_ms: float = 2000.0

    def custom_blocks_host(self, host: str) -> bool:
        return host.lower() in self.custom_blocked_hosts

    @classmethod
    def blocking(
        cls, taxonomy: Taxonomy, category_names: Iterable[str], **kwargs
    ) -> "FilterPolicy":
        """Build a policy, validating category names against the taxonomy."""
        validated = frozenset(
            taxonomy.by_name(name).name.lower() for name in category_names
        )
        return cls(blocked_categories=validated, **kwargs)

    def blocks(self, category: VendorCategory) -> bool:
        return category.name.lower() in self.blocked_categories

    def with_categories(
        self, taxonomy: Taxonomy, category_names: Iterable[str]
    ) -> "FilterPolicy":
        """A copy of this policy denying a different category set."""
        return FilterPolicy(
            blocked_categories=frozenset(
                taxonomy.by_name(name).name.lower() for name in category_names
            ),
            custom_blocked_hosts=self.custom_blocked_hosts,
            block_page=self.block_page,
            block_mode=self.block_mode,
            honor_category_test_pages=self.honor_category_test_pages,
            throttle_delay_ms=self.throttle_delay_ms,
        )

"""Deployment helpers: install filter boxes into ISPs.

These wire together a product, a policy, an ISP, and the world: allocate
a box address from the ISP's AS, register the admin surface as a world
host when the installation is (mis)configured to be externally visible,
and append the box to the ISP's on-path device stack.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.middlebox.filter_box import FilterMiddlebox
from repro.middlebox.policy import FilterPolicy
from repro.products.base import UrlFilterProduct
from repro.products.licensing import LicenseModel
from repro.world.entities import ISP
from repro.world.world import World


def deploy(
    world: World,
    isp: ISP,
    product: UrlFilterProduct,
    blocked_categories: Iterable[str],
    *,
    name: Optional[str] = None,
    engine: Optional[UrlFilterProduct] = None,
    policy: Optional[FilterPolicy] = None,
    license_model: Optional[LicenseModel] = None,
    externally_visible: bool = True,
    box_hostname: str = "",
) -> FilterMiddlebox:
    """Install ``product`` in ``isp`` blocking the named categories.

    ``engine`` (when given) supplies the categorization database while
    ``product`` remains the appliance — the §4.5 stacked configuration.
    ``externally_visible`` leaves the admin surface reachable from the
    open Internet, the misconfiguration §3 exploits; production-grade
    operators pass False.
    """
    decision_product = engine or product
    if policy is None:
        policy = FilterPolicy.blocking(
            decision_product.taxonomy, blocked_categories
        )
    else:
        policy = policy.with_categories(
            decision_product.taxonomy, blocked_categories
        )
    box_ip = world.allocate_ip(isp.asn)
    box = FilterMiddlebox(
        name=name or f"{product.vendor} @ {isp.name}",
        appliance=product,
        engine=decision_product,
        subscription=decision_product.subscription(),
        policy=policy,
        box_ip=box_ip,
        box_hostname=box_hostname,
        license=license_model,
        externally_visible=externally_visible,
    )
    # The box's host is always registered so deny-page redirects resolve
    # for in-network clients; only externally visible installations are
    # reachable (and hence scannable) from the open Internet.
    box_host = box.make_host()
    box_host.internal_only = not externally_visible
    box.world_host = box_host
    world.add_host(box_host)
    isp.add_device(box)
    return box


def deploy_stacked(
    world: World,
    isp: ISP,
    appliance: UrlFilterProduct,
    engine: UrlFilterProduct,
    blocked_categories: Iterable[str],
    **kwargs,
) -> FilterMiddlebox:
    """§4.5: a proxy appliance (e.g. Blue Coat ProxySG) whose filtering
    decisions come from a different vendor's engine (e.g. SmartFilter).
    """
    return deploy(
        world, isp, appliance, blocked_categories, engine=engine, **kwargs
    )


def register_vendor_infrastructure(
    world: World, product: UrlFilterProduct, hosting_asn: int
) -> None:
    """Register the vendor's public web properties (cfauth, denypagetests)."""
    from repro.world.entities import Host

    for domain, app in product.infrastructure_apps().items():
        if domain in world.zone:
            continue
        ip = world.allocate_ip(hosting_asn)
        host = Host(ip=ip, hostname=domain, tags=["vendor-infra"])
        host.add_service(80, app)
        host.add_service(443, app)
        world.add_host(host)

"""World entities: countries, organizations, ASes, hosts, sites, ISPs.

The entities deliberately mirror the nouns of the paper: ISPs identified
by AS number (Table 3 lists e.g. Etisalat AS 5384), hosts that may be
visible on the global Internet (the §3 identification assumption), and
on-path devices that can intercept a client's HTTP traffic (the URL
filters themselves).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from repro.net.http import HttpRequest, HttpResponse, not_found_response, ok_response
from repro.net.ip import Ipv4Address, Ipv4Prefix
from repro.world.clock import SimTime
from repro.world.content import ContentClass


@dataclass(frozen=True)
class Country:
    """A country identified by its ISO 3166-1 alpha-2 code."""

    code: str
    name: str
    region: str = ""

    def __post_init__(self) -> None:
        if len(self.code) != 2 or not self.code.islower():
            raise ValueError(f"country code must be 2 lowercase letters: {self.code!r}")


class OrgKind(enum.Enum):
    """The kind of organization operating a network (§3.2 diversity)."""

    NATIONAL_ISP = "national_isp"
    ISP = "isp"
    TELECOM = "telecom"
    UTILITY = "utility"
    EDUCATION = "education"
    MILITARY = "military"
    GOVERNMENT = "government"
    HOSTING = "hosting"
    ENTERPRISE = "enterprise"
    UNIVERSITY = "university"


@dataclass(frozen=True)
class Organization:
    name: str
    kind: OrgKind
    country: Country


@dataclass
class AutonomousSystem:
    """An AS: a number, a name (as whois would report it), and prefixes."""

    asn: int
    name: str
    org: Organization
    prefixes: List[Ipv4Prefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.asn <= 4_294_967_295:
            raise ValueError(f"bad AS number {self.asn}")

    @property
    def country(self) -> Country:
        return self.org.country

    def owns(self, address: Ipv4Address) -> bool:
        return any(address in prefix for prefix in self.prefixes)

    def __hash__(self) -> int:
        return hash(self.asn)


class InterceptKind(enum.Enum):
    """What an on-path device does with a flow it inspects."""

    PASS = "pass"  # let the request continue toward the origin
    RESPOND = "respond"  # synthesize a response (block page / redirect)
    RESET = "reset"  # inject a TCP RST
    DROP = "drop"  # silently drop packets (client sees a timeout)
    #: Tear down the TLS handshake on the server name (SNI filtering);
    #: the TCP connection itself completed, no HTTP exchange happens.
    TLS_RESET = "tls_reset"
    #: Fire an RST at the client but let the origin's packets race it;
    #: when the content wins, the page arrives with an on-wire RST as
    #: the only evidence of interference.
    RST_INJECT = "rst_inject"


@dataclass
class InterceptAction:
    """A device's decision plus any latency it imposed on the flow.

    ``delay_ms`` composes with PASS for throttling middleboxes: the
    request continues toward the origin, but the device holds the flow —
    soft censorship the verdict layer reads from fetch timings.
    """

    kind: InterceptKind
    response: Optional[HttpResponse] = None
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is InterceptKind.RESPOND and self.response is None:
            raise ValueError("RESPOND action requires a response")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")

    @classmethod
    def passthrough(cls) -> "InterceptAction":
        return cls(InterceptKind.PASS)


class OnPathDevice(Protocol):
    """Anything deployed on an ISP's forwarding path (a filter middlebox)."""

    def intercept(self, request: HttpRequest, now: SimTime) -> InterceptAction:
        """Inspect one outbound client request and decide its fate."""
        ...  # pragma: no cover


# A service is a callable handling HTTP requests on one (host, port).
ServiceApp = Callable[[HttpRequest], HttpResponse]


@dataclass
class Host:
    """A reachable endpoint on the simulated Internet.

    A host exposes one or more HTTP services keyed by port. Filtering
    middleboxes that are misconfigured to be externally visible register
    a Host for their admin/proxy interfaces, which is exactly what Shodan
    indexes (§3.1).
    """

    ip: Ipv4Address
    hostname: str = ""
    services: Dict[int, ServiceApp] = field(default_factory=dict)
    tags: List[str] = field(default_factory=list)
    #: Internal hosts are reachable only from vantages inside the owning
    #: AS — a correctly configured middlebox that external scans cannot
    #: see (the complement of the §3.1 misconfiguration).
    internal_only: bool = False

    def add_service(self, port: int, app: ServiceApp) -> None:
        if not 1 <= port <= 65535:
            raise ValueError(f"bad port {port}")
        self.services[port] = app

    def open_ports(self) -> List[int]:
        return sorted(self.services)

    def serve(self, request: HttpRequest) -> HttpResponse:
        app = self.services.get(request.url.port)
        if app is None:
            return not_found_response()
        return app(request)


@dataclass
class WebSite:
    """An origin website: a hostname, content pages, and a content class.

    The content class is ground truth used by vendor categorization
    reviewers — a reviewer who "visits" the site sees what it hosts.
    """

    domain: str
    content_class: ContentClass
    ip: Ipv4Address
    title: str = ""
    pages: Dict[str, HttpResponse] = field(default_factory=dict)
    language: str = "en"
    operator_country: Optional[Country] = None

    def __post_init__(self) -> None:
        if not self.title:
            self.title = self.domain
        if "/" not in self.pages:
            self.pages["/"] = ok_response(
                self.title,
                f"<h1>{self.title}</h1><p>{self.content_class.value} content</p>",
            )

    @staticmethod
    def canonical_path(path: str) -> str:
        """Normalize a page path to its canonical stored form.

        Crawler-extracted self-links often carry a trailing ``?query``
        or doubled slashes; both variants must resolve to the page they
        reference instead of 404ing. Rejects paths without a leading
        slash (the caller passed a relative or malformed reference).
        """
        if not path.startswith("/"):
            raise ValueError(f"path must start with '/': {path!r}")
        path = path.split("?", 1)[0].split("#", 1)[0]
        while "//" in path:
            path = path.replace("//", "/")
        return path or "/"

    def add_page(self, path: str, response: HttpResponse) -> None:
        self.pages[self.canonical_path(path)] = response

    def app(self, request: HttpRequest) -> HttpResponse:
        try:
            path = self.canonical_path(request.url.path)
        except ValueError:
            return not_found_response()
        response = self.pages.get(path)
        if response is None:
            return not_found_response()
        return response

    def as_host(self) -> Host:
        host = Host(ip=self.ip, hostname=self.domain, tags=["website"])
        host.add_service(80, self.app)
        host.add_service(443, self.app)
        return host


@dataclass
class ISP:
    """An access network: the vantage point for in-country measurement.

    ``devices`` is the ordered on-path middlebox stack every client
    request traverses (§4.5's stacked SmartFilter-on-ProxySG deployment
    is two coordinated entries resolved inside the middlebox layer).
    """

    name: str
    autonomous_system: AutonomousSystem
    client_prefix: Ipv4Prefix
    devices: List[OnPathDevice] = field(default_factory=list)
    upstream_asns: List[int] = field(default_factory=list)
    #: DNS-level censorship: names the ISP resolver lies about (answering
    #: with the given address, typically a block-page server) or refuses
    #: (NXDOMAIN). The products studied block over HTTP, but the
    #: comparator must be able to tell DNS tampering apart (§4.1).
    dns_poisoned: Dict[str, Ipv4Address] = field(default_factory=dict)
    dns_refused: List[str] = field(default_factory=list)

    @property
    def asn(self) -> int:
        return self.autonomous_system.asn

    @property
    def country(self) -> Country:
        return self.autonomous_system.country

    def add_device(self, device: OnPathDevice) -> None:
        self.devices.append(device)

    def client_ip(self, index: int = 10) -> Ipv4Address:
        """A client address inside this ISP's access prefix."""
        return self.client_prefix.address_at(index)

    def __str__(self) -> str:
        return f"{self.name} (AS {self.asn}, {self.country.code.upper()})"

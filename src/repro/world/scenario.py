"""The IMC 2013 scenario: the ground-truth world the paper measured.

Everything the paper *found* is encoded here as world state — filter
deployments, their policies, their visibility — so that the methodology
pipelines in :mod:`repro.core` must re-derive the published tables from
measurements. Ground truth comes from Tables 1 and 3, the §3.2 network
narrative, §4.4's YemenNet category probe, and §5/Table 4.

Where the paper's record is ambiguous (exact Table 4 cells are partially
illegible in the source text) the targets encoded here are documented
reconstructions; see EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.middlebox.deploy import (
    deploy,
    deploy_stacked,
    register_vendor_infrastructure,
)
from repro.middlebox.filter_box import FilterMiddlebox
from repro.middlebox.policy import FilterPolicy
from repro.net.http import Headers, HttpRequest, HttpResponse, html_page, ok_response
from repro.net.ip import Ipv4Prefix, PrefixPool
from repro.products.base import UrlFilterProduct
from repro.products.licensing import LicenseModel
from repro.products.netsweeper import Netsweeper
from repro.products.registry import (
    BLUE_COAT,
    NETSWEEPER,
    SMARTFILTER,
    WEBSENSE,
    ProductSpec,
    default_registry,
)
from repro.products.submission import ReviewPolicy
from repro.products.websense import Websense
from repro.world.clock import SimTime
from repro.world.content import ContentClass
from repro.world.entities import Host, OrgKind, WebSite
from repro.world.population import PopulationConfig, populate
from repro.world.rng import derive_rng
from repro.world.weave import weave_content
from repro.world.world import World

#: The calibrated default: under this seed the stochastic components
#: (submission review draws, license fluctuations) land on the paper's
#: exact Table 3 counts (Du 5/6, YemenNet 6/6, Ooredoo 6/6). Any seed
#: reproduces the *shape*; this one reproduces the published cells.
DEFAULT_SEED = 2013

#: Content classes the Yemeni operator custom-blocks (drives Table 4's
#: political marks for YemenNet without touching vendor categories, so
#: the §4.4 category probe still reports exactly five vendor categories).
YEMEN_CUSTOM_CLASSES = (
    ContentClass.HUMAN_RIGHTS,
    ContentClass.POLITICAL_REFORM,
    ContentClass.POLITICAL_OPPOSITION,
    ContentClass.MEDIA_FREEDOM,
    ContentClass.INDEPENDENT_MEDIA,
)

#: §4.4: the five vendor categories the YemenNet probe found blocked.
YEMEN_NETSWEEPER_CATEGORIES = (
    "Adult Images",
    "Phishing",
    "Pornography",
    "Proxy Anonymizer",
    "Search Keywords",
)


@dataclass
class ScenarioConfig:
    """Knobs for world construction."""

    population_size: int = 1600
    vendor_db_coverage: Dict[str, float] = field(
        default_factory=lambda: {
            BLUE_COAT: 0.93,
            SMARTFILTER: 0.93,
            NETSWEEPER: 0.90,
            WEBSENSE: 0.92,
        }
    )
    netsweeper_queue_days: Tuple[float, float] = (5.0, 10.0)
    netsweeper_accept_rate: float = 0.90
    yemen_license_seats: int = 2000
    yemen_license_mean: float = 1500.0
    yemen_license_stddev: float = 300.0
    start_date: Tuple[int, int, int] = (2012, 8, 1)


@dataclass
class Scenario:
    """A built world plus handles to its products and deployments."""

    world: World
    config: ScenarioConfig
    products: Dict[str, UrlFilterProduct]
    deployments: Dict[str, FilterMiddlebox]
    hosting_asns: List[int]
    population: List[WebSite]

    @property
    def bluecoat(self) -> UrlFilterProduct:
        return self.products[BLUE_COAT]

    @property
    def smartfilter(self) -> UrlFilterProduct:
        return self.products[SMARTFILTER]

    @property
    def netsweeper(self) -> Netsweeper:
        product = self.products[NETSWEEPER]
        assert isinstance(product, Netsweeper)
        return product

    @property
    def websense(self) -> Websense:
        product = self.products[WEBSENSE]
        assert isinstance(product, Websense)
        return product

    def content_oracle(self, host: str) -> Optional[ContentClass]:
        """What a vendor analyst sees when visiting ``host``."""
        site = self.world.websites.get(host)
        return site.content_class if site else None

    def hosting_oracle(self, host: str) -> Optional[str]:
        """The AS name hosting ``host`` (for submission-evasion checks)."""
        site = self.world.websites.get(host)
        if site is None:
            return None
        owner = self.world.owner_of(site.ip)
        return owner.name if owner else None


# ---------------------------------------------------------------------------
# Static ground-truth tables
# ---------------------------------------------------------------------------

_COUNTRIES: Sequence[Tuple[str, str, str]] = (
    ("us", "United States", "North America"),
    ("ca", "Canada", "North America"),
    ("ae", "United Arab Emirates", "MENA"),
    ("sa", "Saudi Arabia", "MENA"),
    ("qa", "Qatar", "MENA"),
    ("ye", "Yemen", "MENA"),
    ("sy", "Syria", "MENA"),
    ("kw", "Kuwait", "MENA"),
    ("eg", "Egypt", "MENA"),
    ("bh", "Bahrain", "MENA"),
    ("om", "Oman", "MENA"),
    ("tn", "Tunisia", "MENA"),
    ("ir", "Iran", "MENA"),
    ("il", "Israel", "MENA"),
    ("lb", "Lebanon", "MENA"),
    ("pk", "Pakistan", "South Asia"),
    ("in", "India", "South Asia"),
    ("mm", "Burma", "Southeast Asia"),
    ("th", "Thailand", "Southeast Asia"),
    ("ph", "Philippines", "Southeast Asia"),
    ("tw", "Taiwan", "East Asia"),
    ("jp", "Japan", "East Asia"),
    ("kr", "South Korea", "East Asia"),
    ("ar", "Argentina", "South America"),
    ("cl", "Chile", "South America"),
    ("br", "Brazil", "South America"),
    ("fi", "Finland", "Europe"),
    ("se", "Sweden", "Europe"),
    ("de", "Germany", "Europe"),
    ("nl", "Netherlands", "Europe"),
    ("gb", "United Kingdom", "Europe"),
    ("fr", "France", "Europe"),
    ("tr", "Turkey", "Europe"),
    ("ru", "Russia", "Europe"),
    ("au", "Australia", "Oceania"),
    ("za", "South Africa", "Africa"),
    ("ng", "Nigeria", "Africa"),
    ("mx", "Mexico", "North America"),
)

# (isp key, AS number, AS name, org name, org kind, country)
_NETWORKS: Sequence[Tuple[str, int, str, str, OrgKind, str]] = (
    # --- the paper's case-study ISPs (Table 3 AS numbers) ---
    ("etisalat", 5384, "EMIRATES-INTERNET", "Etisalat", OrgKind.NATIONAL_ISP, "ae"),
    ("du", 15802, "DU-AS1", "Du (EITC)", OrgKind.ISP, "ae"),
    ("ooredoo", 42298, "OOREDOO-AS", "Ooredoo Qatar", OrgKind.NATIONAL_ISP, "qa"),
    ("bayanat", 48237, "BAYANAT-AL-OULA", "Bayanat Al-Oula", OrgKind.ISP, "sa"),
    ("nournet", 29684, "NOURNET", "Nour Communication Co.", OrgKind.ISP, "sa"),
    ("yemennet", 12486, "YEMENNET", "Public Telecom Corp. Yemen", OrgKind.NATIONAL_ISP, "ye"),
    # --- §3.2: North American networks ---
    ("tx-utility-1", 64601, "TX-PWR-NORTH", "Texas Utility North", OrgKind.UTILITY, "us"),
    ("tx-utility-2", 64602, "TX-PWR-SOUTH", "Texas Utility South", OrgKind.UTILITY, "us"),
    ("wv-edu", 64611, "WVNET-EDU", "West Virginia Education Network", OrgKind.EDUCATION, "us"),
    ("ok-edu", 64612, "ONENET-EDU", "Oklahoma Education Network", OrgKind.EDUCATION, "us"),
    ("mo-edu", 64613, "MORENET-EDU", "Missouri Education Network", OrgKind.EDUCATION, "us"),
    ("global-crossing", 3549, "GBLX", "Global Crossing", OrgKind.ISP, "us"),
    ("att", 7018, "ATT-INTERNET4", "AT&T Services", OrgKind.ISP, "us"),
    ("verizon", 701, "UUNET", "Verizon Business", OrgKind.ISP, "us"),
    ("bellsouth", 6389, "BELLSOUTH-NET-BLK", "BellSouth.net", OrgKind.ISP, "us"),
    ("comcast", 7922, "COMCAST-7922", "Comcast Cable", OrgKind.ISP, "us"),
    ("sprint", 1239, "SPRINTLINK", "Sprint", OrgKind.ISP, "us"),
    ("usaisc", 721, "DOD-NIC", "US Army Information Systems Command", OrgKind.MILITARY, "us"),
    ("us-enterprise", 64620, "ACME-CORP", "Acme Manufacturing", OrgKind.ENTERPRISE, "us"),
    # --- Blue Coat's new countries (§3.2) + previously observed ---
    ("ar-isp", 64631, "AR-TELCO", "Telecom Argentina Norte", OrgKind.ISP, "ar"),
    ("cl-isp", 64632, "CL-TELCO", "Chile Conexion", OrgKind.ISP, "cl"),
    ("fi-isp", 64633, "FI-TELCO", "Suomi Verkko", OrgKind.ISP, "fi"),
    ("se-isp", 64634, "SE-TELCO", "Svenska Natet", OrgKind.ISP, "se"),
    ("ph-isp", 64635, "PH-TELCO", "Philippine Long Distance", OrgKind.ISP, "ph"),
    ("th-isp", 64636, "TH-TELCO", "Thai Communications", OrgKind.ISP, "th"),
    ("tw-isp", 64637, "TW-TELCO", "Taiwan Broadband", OrgKind.ISP, "tw"),
    ("il-isp", 64638, "IL-TELCO", "Israel NetLines", OrgKind.ISP, "il"),
    ("lb-isp", 64639, "LB-TELCO", "Liban Telecom", OrgKind.ISP, "lb"),
    ("sy-isp", 29256, "STE-AS", "Syrian Telecom", OrgKind.NATIONAL_ISP, "sy"),
    ("mm-isp", 64641, "MM-PTT", "Myanmar Posts and Telecom", OrgKind.NATIONAL_ISP, "mm"),
    ("eg-isp", 64642, "EG-TELCO", "Egypt Data", OrgKind.ISP, "eg"),
    ("kw-isp", 64643, "KW-TELCO", "Kuwait Qualitynet", OrgKind.ISP, "kw"),
    ("sa-stc", 64644, "SAUDINET-STC", "Saudi Telecom Company", OrgKind.NATIONAL_ISP, "sa"),
    # --- SmartFilter previously-observed region (hidden installations) ---
    ("ir-isp", 64651, "IR-TELCO", "Iran Dadeh", OrgKind.NATIONAL_ISP, "ir"),
    ("bh-isp", 64652, "BH-TELCO", "Bahrain Batelco", OrgKind.NATIONAL_ISP, "bh"),
    ("om-isp", 64653, "OM-TELCO", "Omantel", OrgKind.NATIONAL_ISP, "om"),
    ("tn-isp", 64654, "TN-ATI", "Agence Tunisienne Internet", OrgKind.NATIONAL_ISP, "tn"),
    ("pk-ptcl", 17557, "PKTELECOM-AS-PK", "Pakistan Telecom", OrgKind.NATIONAL_ISP, "pk"),
    # --- unfiltered networks (vantage realism / noise) ---
    ("de-isp", 64661, "DE-TELCO", "Deutsche Netz", OrgKind.ISP, "de"),
    ("gb-isp", 64662, "GB-TELCO", "Albion Internet", OrgKind.ISP, "gb"),
    ("jp-isp", 64663, "JP-TELCO", "Nippon Net", OrgKind.ISP, "jp"),
    ("br-isp", 64664, "BR-TELCO", "Brasil Conecta", OrgKind.ISP, "br"),
    ("in-isp", 64665, "IN-TELCO", "Bharat Online", OrgKind.ISP, "in"),
    ("tr-isp", 64666, "TR-TELCO", "Anadolu Net", OrgKind.ISP, "tr"),
)

# (asn, as name, org, country) — content hosting providers.
_HOSTING: Sequence[Tuple[int, str, str, str]] = (
    (14061, "CLOUD-ATLANTIC", "Atlantic Cloud Hosting", "us"),
    (16509, "MEGA-CLOUD", "MegaCloud Compute", "us"),
    (24940, "RHEIN-HOSTING", "Rhein Hosting GmbH", "de"),
    (16276, "LOWLANDS-DC", "Lowlands Datacenter", "nl"),
    (13335, "EDGE-CDN", "Edge CDN Inc.", "ca"),
)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def build_scenario(
    seed: int = DEFAULT_SEED, config: Optional[ScenarioConfig] = None
) -> Scenario:
    """Construct the full IMC'13 ground-truth world.

    Deterministic in (seed, config): same inputs, same world, same
    measurement results.
    """
    config = config or ScenarioConfig()
    world = World(seed=seed)
    world.clock.advance_to(SimTime.from_date(*config.start_date))

    for code, name, region in _COUNTRIES:
        world.add_country(code, name, region)

    pool = PrefixPool(Ipv4Prefix.parse("20.0.0.0/6"), 16)
    for _key, asn, as_name, org, kind, country in _NETWORKS:
        world.add_autonomous_system(
            asn, as_name, org, kind, world.country(country), [pool.allocate()]
        )
    hosting_asns: List[int] = []
    for asn, as_name, org, country in _HOSTING:
        world.add_autonomous_system(
            asn, as_name, org, OrgKind.HOSTING, world.country(country),
            [pool.allocate()],
        )
        hosting_asns.append(asn)
    isps = {
        key: world.add_isp(key, world.autonomous_systems[asn])
        for key, asn, *_rest in _NETWORKS
    }

    population = populate(
        world,
        hosting_asns,
        PopulationConfig(site_count=config.population_size),
    )
    population.extend(_add_local_content(world, hosting_asns))
    # Content substrate for the discovery workload: token vocabularies
    # and a cross-site link graph, woven before vendor infrastructure
    # registers so only the content population gets pages.
    weave_content(world)

    scenario = Scenario(
        world=world,
        config=config,
        products={},
        deployments={},
        hosting_asns=hosting_asns,
        population=population,
    )
    _build_products(scenario)
    _seed_vendor_databases(scenario)
    _deploy_installations(scenario, isps)
    _add_noise_hosts(world, isps)
    # Researcher-side reference host for Netalyzr-style fingerprinting.
    from repro.measure.netalyzr import install_reference_server

    install_reference_server(world, hosting_asns[0])
    return scenario


def _add_local_content(world: World, hosting_asns: List[int]) -> List[WebSite]:
    """Locally relevant sites for the measured countries (local lists)."""
    rng = derive_rng(world.seed, "local-content")
    local_classes = (
        ContentClass.HUMAN_RIGHTS,
        ContentClass.POLITICAL_REFORM,
        ContentClass.POLITICAL_OPPOSITION,
        ContentClass.MEDIA_FREEDOM,
        ContentClass.INDEPENDENT_MEDIA,
        ContentClass.LGBT,
        ContentClass.RELIGIOUS_CRITICISM,
        ContentClass.MINORITY_RELIGION,
        ContentClass.MINORITY_GROUPS,
        ContentClass.NEWS,
        ContentClass.GOVERNMENT,
        ContentClass.SHOPPING,
        ContentClass.PROXY_ANONYMIZER,
        ContentClass.EDUCATION,
    )
    from repro.world.population import DomainSynthesizer

    synthesizer = DomainSynthesizer(rng)
    for domain in world.websites:
        synthesizer.reserve(domain)
    sites: List[WebSite] = []
    for code in ("ae", "sa", "qa", "ye"):
        country = world.country(code)
        for content_class in local_classes:
            for _ in range(2):
                domain = synthesizer.filler(code)
                site = world.register_website(
                    domain, content_class, rng.choice(hosting_asns),
                    language="ar",
                )
                site.operator_country = country
                sites.append(site)
    return sites


def _vendor_kwargs(spec: ProductSpec, config: ScenarioConfig) -> Dict[str, object]:
    """Scenario-calibrated constructor kwargs for one vendor.

    Review policies are built fresh per scenario (evasion tactics mutate
    them) and are never stored on the spec. Vendors without an explicit
    calibration get the generic policy, so a registry-only product (e.g.
    FortiGuard) can still be instantiated through the same path.
    """
    if spec.name == SMARTFILTER:
        return {"review_policy": ReviewPolicy(3.0, 4.5, 1.0)}
    if spec.name == NETSWEEPER:
        return {
            "review_policy": ReviewPolicy(
                2.5, 4.0, config.netsweeper_accept_rate
            ),
            "queue_min_days": config.netsweeper_queue_days[0],
            "queue_max_days": config.netsweeper_queue_days[1],
        }
    return {"review_policy": ReviewPolicy(3.0, 5.0, 1.0)}


def _build_products(scenario: Scenario) -> None:
    world = scenario.world
    config = scenario.config
    oracle = scenario.content_oracle
    hosting = scenario.hosting_oracle

    for spec in default_registry().defaults():
        factory = spec.factory
        assert factory is not None, f"{spec.name} spec has no factory"
        product = factory(
            oracle,
            derive_rng(world.seed, "vendor", spec.slug),
            hosting_oracle=hosting,
            **_vendor_kwargs(spec, config),
        )
        scenario.products[product.vendor] = product
        world.clock.on_tick(product.tick)
        register_vendor_infrastructure(
            world, product, scenario.hosting_asns[0]
        )


def _seed_vendor_databases(scenario: Scenario) -> None:
    """Pre-categorize the web population into each vendor's master DB."""
    world = scenario.world
    for vendor, product in scenario.products.items():
        coverage = scenario.config.vendor_db_coverage.get(vendor, 0.9)
        rng = derive_rng(world.seed, "db-seed", vendor)
        for domain in sorted(world.websites):
            site = world.websites[domain]
            if rng.random() > coverage:
                continue
            category = product.taxonomy.classify(site.content_class)
            if category is not None:
                product.database.add(domain, category, world.now, source="seed")


def _deploy_installations(scenario: Scenario, isps: Dict[str, object]) -> None:
    world = scenario.world
    config = scenario.config
    bluecoat = scenario.bluecoat
    smartfilter = scenario.smartfilter
    netsweeper = scenario.netsweeper
    websense = scenario.websense

    def _remember(box: FilterMiddlebox) -> FilterMiddlebox:
        scenario.deployments[box.name] = box
        return box

    # ---- UAE: Etisalat = SmartFilter engine atop a Blue Coat ProxySG
    # (§4.3, §4.5). Policy reconstructed from Tables 3 and 4.
    _remember(
        deploy_stacked(
            world, isps["etisalat"], bluecoat, smartfilter,
            ["Anonymizers", "Pornography", "Nudity",
             "Sexual Materials", "Religion/Ideology", "News"],
            name="etisalat-stack",
        )
    )

    # ---- UAE: Du runs Netsweeper (§4.4, Table 4).
    _remember(
        deploy(
            world, isps["du"], netsweeper,
            ["Proxy Anonymizer", "Pornography", "Politics",
             "Lifestyle", "Occult"],
            name="du-netsweeper",
        )
    )

    # ---- Qatar: Ooredoo runs Netsweeper; a Blue Coat proxy is present
    # for traffic management only (Table 3's 0/3 negative).
    _remember(
        deploy(
            world, isps["ooredoo"], netsweeper,
            ["Proxy Anonymizer", "Pornography", "Adult Images",
             "Lifestyle", "Intolerance"],
            name="ooredoo-netsweeper",
        )
    )
    _remember(
        deploy(
            world, isps["ooredoo"], bluecoat, [],
            name="ooredoo-bluecoat-proxy",
        )
    )

    # ---- Saudi Arabia: centralized SmartFilter policy; the proxy
    # category is NOT used (§4.3, Challenge 1).
    for key, label in (("bayanat", "bayanat-smartfilter"),
                       ("nournet", "nournet-smartfilter")):
        _remember(
            deploy(
                world, isps[key], smartfilter,
                ["Pornography", "Nudity", "Gambling", "Drugs"],
                name=label,
            )
        )
    # STC carries the previously observed Blue Coat (Table 1).
    _remember(
        deploy(
            world, isps["sa-stc"], bluecoat,
            ["Pornography", "Proxy Avoidance"],
            name="sa-stc-bluecoat",
        )
    )

    # ---- Yemen: Netsweeper with license fail-open (§4.4) and an
    # operator custom list of political/media hosts (Table 4).
    yemen_license = LicenseModel(
        seats=config.yemen_license_seats,
        mean_load=config.yemen_license_mean,
        load_stddev=config.yemen_license_stddev,
        seed=world.seed,
        label="yemennet-license",
    )
    custom_hosts = frozenset(
        domain
        for domain in sorted(world.websites)
        if world.websites[domain].content_class in YEMEN_CUSTOM_CLASSES
    )
    yemen_policy = FilterPolicy(custom_blocked_hosts=custom_hosts)
    _remember(
        deploy(
            world, isps["yemennet"], netsweeper,
            list(YEMEN_NETSWEEPER_CATEGORIES),
            name="yemennet-netsweeper",
            policy=yemen_policy,
            license_model=yemen_license,
        )
    )
    # Pre-2009 Websense, update support withdrawn (§2.2) — stale, hidden.
    stale = deploy(
        world, isps["yemennet"], websense, ["Proxy Avoidance", "Sex"],
        name="yemennet-websense-stale",
        externally_visible=False,
    )
    stale.subscription.withdraw(world.now)
    stale.enabled = False
    _remember(stale)

    # ---- North American networks (§3.2).
    for key, label in (("tx-utility-1", "tx-utility-1-websense"),
                       ("tx-utility-2", "tx-utility-2-websense")):
        _remember(
            deploy(
                world, isps[key], websense,
                ["Proxy Avoidance", "Sex", "Gambling"],
                name=label,
            )
        )
    for key in ("wv-edu", "ok-edu", "mo-edu", "global-crossing", "att",
                "verizon", "bellsouth"):
        _remember(
            deploy(
                world, isps[key], netsweeper,
                ["Pornography", "Phishing", "Malware"],
                name=f"{key}-netsweeper",
            )
        )
    for key in ("comcast", "sprint", "usaisc"):
        _remember(
            deploy(
                world, isps[key], bluecoat,
                ["Phishing", "Malicious Sources"],
                name=f"{key}-bluecoat",
            )
        )
    _remember(
        deploy(
            world, isps["us-enterprise"], smartfilter,
            ["Pornography", "Gambling", "Anonymizers"],
            name="us-enterprise-smartfilter",
        )
    )

    # ---- Blue Coat's wide footprint (§3.2 / Figure 1).
    for key in ("ar-isp", "cl-isp", "fi-isp", "se-isp", "ph-isp", "th-isp",
                "tw-isp", "il-isp", "lb-isp", "sy-isp", "mm-isp", "eg-isp",
                "kw-isp"):
        _remember(
            deploy(
                world, isps[key], bluecoat,
                ["Proxy Avoidance", "Pornography"],
                name=f"{key}-bluecoat",
            )
        )

    # ---- SmartFilter's previously observed region: installed but NOT
    # externally visible (identified historically via user reports, so
    # the §3 scan must miss them — the method's stated limitation).
    for key in ("ir-isp", "bh-isp", "om-isp", "tn-isp"):
        _remember(
            deploy(
                world, isps[key], smartfilter,
                ["Anonymizers", "Pornography"],
                name=f"{key}-smartfilter-hidden",
                externally_visible=False,
            )
        )
    # Pakistan: visible SmartFilter (Figure 1).
    _remember(
        deploy(
            world, isps["pk-ptcl"], smartfilter,
            ["Pornography", "Anonymizers"],
            name="pk-ptcl-smartfilter",
        )
    )


def _add_noise_hosts(world: World, isps: Dict[str, object]) -> None:
    """Keyword-colliding services that are NOT filter products.

    These exercise §3.1's two-stage design: the non-conservative keyword
    search surfaces them; WhatWeb validation rejects them.
    """

    def router_console(request: HttpRequest) -> HttpResponse:
        if request.url.path.startswith("/webadmin"):
            headers = Headers()
            headers.set("Server", "mini_httpd/1.19")
            headers.set("Content-Type", "text/html; charset=utf-8")
            return HttpResponse(
                200,
                headers,
                html_page(
                    "Router WebAdmin Console",
                    "<h1>Broadband Router Configuration</h1>",
                ),
            )
        headers = Headers()
        headers.set("Location", "/webadmin/")
        headers.set("Server", "mini_httpd/1.19")
        return HttpResponse(302, headers, "")

    def blog_about_filters(request: HttpRequest) -> HttpResponse:
        return ok_response(
            "What to do when you see a URL Blocked message",
            "<h1>URL Blocked?</h1><p>A guide to corporate web filters, "
            "blockpage.cgi screens, and proxy avoidance.</p>",
        )

    def squid_proxy(request: HttpRequest) -> HttpResponse:
        headers = Headers()
        headers.set("Server", "squid/3.1.20")
        headers.set("Via", "1.1 cache01 (squid/3.1.20)")
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            400, headers, html_page("ERROR", "<h1>Invalid URL</h1>")
        )

    noise_specs = (
        ("de-isp", 8080, router_console, "router-webadmin.example-noise.de"),
        ("gb-isp", 8080, router_console, "office-gw.example-noise.gb"),
        ("jp-isp", 80, blog_about_filters, "proxysg-tips.example-noise.jp"),
        ("br-isp", 3128, squid_proxy, "cache01.example-noise.br"),
        ("in-isp", 8080, router_console, "campus-router.example-noise.in"),
        ("tr-isp", 80, blog_about_filters, "blockpage-cgi-faq.example-noise.tr"),
    )
    for isp_key, port, app, hostname in noise_specs:
        isp = isps[isp_key]
        ip = world.allocate_ip(isp.asn)  # type: ignore[attr-defined]
        host = Host(ip=ip, hostname=hostname, tags=["noise"])
        host.add_service(port, app)
        world.add_host(host)

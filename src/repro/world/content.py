"""Content vocabulary: what a site *actually* hosts.

This is the ground-truth language shared by origin servers, vendor
categorization reviewers, and test lists. Each :class:`ContentClass` is
what a human (or a vendor's categorization analyst) would conclude after
looking at the site — vendor products then map content classes into their
own proprietary category taxonomies (:mod:`repro.products.categories`).

The classes cover the paper's needs: proxy/anonymizer sites built on the
Glype script (§4.3, §4.4), pornography and standalone adult images
(Saudi case study, §4.3), and the §5 characterization themes (human
rights, political reform, LGBT, religious criticism, minority religions,
independent media).
"""

from __future__ import annotations

import enum


class ContentClass(enum.Enum):
    """Ground-truth content hosted by a website."""

    # Internet tools
    PROXY_ANONYMIZER = "proxy_anonymizer"
    VPN_TOOLS = "vpn_tools"
    TRANSLATION = "translation"
    SEARCH_ENGINE = "search_engine"
    EMAIL_PROVIDER = "email_provider"
    HOSTING_SERVICE = "hosting_service"

    # Social / adult
    PORNOGRAPHY = "pornography"
    ADULT_IMAGES = "adult_images"
    DATING = "dating"
    LGBT = "lgbt"
    GAMBLING = "gambling"
    ALCOHOL_DRUGS = "alcohol_drugs"
    SOCIAL_MEDIA = "social_media"

    # Political
    POLITICAL_OPPOSITION = "political_opposition"
    POLITICAL_REFORM = "political_reform"
    HUMAN_RIGHTS = "human_rights"
    MEDIA_FREEDOM = "media_freedom"
    INDEPENDENT_MEDIA = "independent_media"
    RELIGIOUS_CRITICISM = "religious_criticism"
    MINORITY_RELIGION = "minority_religion"
    MINORITY_GROUPS = "minority_groups"
    WOMENS_RIGHTS = "womens_rights"

    # Conflict / security
    MILITANT = "militant"
    PHISHING = "phishing"
    MALWARE = "malware"
    WEAPONS = "weapons"

    # Everyday
    NEWS = "news"
    EDUCATION = "education"
    GOVERNMENT = "government"
    RELIGION_MAINSTREAM = "religion_mainstream"
    SHOPPING = "shopping"
    SPORTS = "sports"
    TECHNOLOGY = "technology"
    ENTERTAINMENT = "entertainment"
    HEALTH = "health"
    BENIGN = "benign"

    @property
    def is_sensitive(self) -> bool:
        """Content commonly targeted by national censorship policies."""
        return self in _SENSITIVE

    @property
    def is_rights_protected(self) -> bool:
        """Speech protected by international human-rights norms (§5).

        These are the classes whose blocking the paper flags as
        contradicting Article 19 of the Universal Declaration of Human
        Rights: political speech, rights advocacy, independent media,
        LGBT content, and religious discussion.
        """
        return self in _RIGHTS_PROTECTED


_SENSITIVE = frozenset(
    {
        ContentClass.PROXY_ANONYMIZER,
        ContentClass.VPN_TOOLS,
        ContentClass.PORNOGRAPHY,
        ContentClass.ADULT_IMAGES,
        ContentClass.DATING,
        ContentClass.LGBT,
        ContentClass.GAMBLING,
        ContentClass.ALCOHOL_DRUGS,
        ContentClass.POLITICAL_OPPOSITION,
        ContentClass.POLITICAL_REFORM,
        ContentClass.HUMAN_RIGHTS,
        ContentClass.MEDIA_FREEDOM,
        ContentClass.INDEPENDENT_MEDIA,
        ContentClass.RELIGIOUS_CRITICISM,
        ContentClass.MINORITY_RELIGION,
        ContentClass.MINORITY_GROUPS,
        ContentClass.MILITANT,
        ContentClass.PHISHING,
        ContentClass.MALWARE,
    }
)

_RIGHTS_PROTECTED = frozenset(
    {
        ContentClass.POLITICAL_OPPOSITION,
        ContentClass.POLITICAL_REFORM,
        ContentClass.HUMAN_RIGHTS,
        ContentClass.MEDIA_FREEDOM,
        ContentClass.INDEPENDENT_MEDIA,
        ContentClass.LGBT,
        ContentClass.RELIGIOUS_CRITICISM,
        ContentClass.MINORITY_RELIGION,
        ContentClass.MINORITY_GROUPS,
        ContentClass.WOMENS_RIGHTS,
    }
)

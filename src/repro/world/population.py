"""Synthetic website population.

Builds the background web the study operates against: thousands of sites
spread over hosting ASes, each with a ground-truth content class. Vendor
databases pre-categorize a (vendor-specific) fraction of the population,
mirroring how real products ship large pre-categorized URL databases
(§2.1).

Two population models live here:

- :func:`populate` — the original materialized model: every site is a
  full :class:`~repro.world.entities.WebSite` registered in world DNS.
  Right for the paper-scale scenario (~2k sites), too heavy for
  internet-scale scans.
- :class:`ShardedPopulation` — a lazy, sharded host population for the
  streaming scan engine (:mod:`repro.scan.stream`). Every host is a
  pure function of ``(seed, global host index)`` — *not* of the shard
  count — so shard *k* built in isolation is exactly the slice
  ``[shard_bounds(k))`` of a full build, a full build equals the
  concatenation of per-shard builds, and the committed scan epoch is
  identical at any shard count. Nothing is materialized until asked
  for, so peak memory is a function of batch size, not host count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.net.http import ok_response
from repro.net.ip import Ipv4Address
from repro.world.content import ContentClass
from repro.world.rng import derive_rng
from repro.world.words import SYLLABLES, WORDS_A, WORDS_B
from repro.world.world import World
from repro.world.entities import WebSite

# Relative frequency of content classes in the synthetic web. Sensitive
# classes are rarer than everyday content, as on the real web.
DEFAULT_CLASS_MIX: Dict[ContentClass, float] = {
    ContentClass.NEWS: 8.0,
    ContentClass.SHOPPING: 8.0,
    ContentClass.TECHNOLOGY: 7.0,
    ContentClass.ENTERTAINMENT: 7.0,
    ContentClass.SPORTS: 5.0,
    ContentClass.EDUCATION: 5.0,
    ContentClass.HEALTH: 4.0,
    ContentClass.BENIGN: 10.0,
    ContentClass.SOCIAL_MEDIA: 3.0,
    ContentClass.GOVERNMENT: 2.0,
    ContentClass.RELIGION_MAINSTREAM: 2.0,
    ContentClass.SEARCH_ENGINE: 1.0,
    ContentClass.EMAIL_PROVIDER: 1.0,
    ContentClass.HOSTING_SERVICE: 1.5,
    ContentClass.TRANSLATION: 0.5,
    ContentClass.PROXY_ANONYMIZER: 2.0,
    ContentClass.VPN_TOOLS: 1.0,
    ContentClass.PORNOGRAPHY: 4.0,
    ContentClass.ADULT_IMAGES: 1.5,
    ContentClass.DATING: 1.5,
    ContentClass.LGBT: 1.0,
    ContentClass.GAMBLING: 2.0,
    ContentClass.ALCOHOL_DRUGS: 1.0,
    ContentClass.POLITICAL_OPPOSITION: 1.0,
    ContentClass.POLITICAL_REFORM: 1.0,
    ContentClass.HUMAN_RIGHTS: 1.0,
    ContentClass.MEDIA_FREEDOM: 0.7,
    ContentClass.INDEPENDENT_MEDIA: 1.2,
    ContentClass.RELIGIOUS_CRITICISM: 0.6,
    ContentClass.MINORITY_RELIGION: 0.7,
    ContentClass.MINORITY_GROUPS: 0.7,
    ContentClass.WOMENS_RIGHTS: 0.6,
    ContentClass.MILITANT: 0.4,
    ContentClass.PHISHING: 0.8,
    ContentClass.MALWARE: 0.6,
    ContentClass.WEAPONS: 0.4,
}

_TLD_CHOICES = ["com", "net", "org", "info"]


@dataclass
class PopulationConfig:
    """Knobs for the synthetic web."""

    site_count: int = 2000
    class_mix: Dict[ContentClass, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_MIX)
    )
    local_tld_fraction: float = 0.15  # sites under a ccTLD


class DomainSynthesizer:
    """Generates unique, plausible domain names."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set = set()

    def two_word(self, tld: str = "info") -> str:
        """A "two random non-profane words" domain as used in §4.3."""
        for _attempt in range(10_000):
            name = self._rng.choice(WORDS_A) + self._rng.choice(WORDS_B)
            domain = f"{name}.{tld}"
            if domain not in self._used:
                self._used.add(domain)
                return domain
        raise RuntimeError("two-word domain space exhausted")

    def filler(self, tld: str) -> str:
        """A syllable-soup domain for the background population."""
        for _attempt in range(10_000):
            syllables = self._rng.randint(2, 4)
            name = "".join(self._rng.choice(SYLLABLES) for _ in range(syllables))
            domain = f"{name}.{tld}"
            if domain not in self._used:
                self._used.add(domain)
                return domain
        raise RuntimeError("filler domain space exhausted")

    def reserve(self, domain: str) -> None:
        """Mark an externally chosen domain as used."""
        self._used.add(domain)


def _page_body(content_class: ContentClass, domain: str) -> str:
    descriptions = {
        ContentClass.PROXY_ANONYMIZER: (
            "Browse the web anonymously. Enter a URL below to surf through "
            "our free web proxy and bypass filters."
        ),
        ContentClass.PORNOGRAPHY: "Explicit adult content. 18+ only.",
        ContentClass.ADULT_IMAGES: "Adult image gallery. 18+ only.",
        ContentClass.HUMAN_RIGHTS: (
            "Documenting human rights violations and advocating for "
            "freedom of expression."
        ),
        ContentClass.INDEPENDENT_MEDIA: "Independent news and analysis.",
        ContentClass.LGBT: "Community resources and support.",
    }
    text = descriptions.get(
        content_class, f"Welcome to {domain} ({content_class.value})."
    )
    return f"<h1>{domain}</h1><p>{text}</p>"


def populate(
    world: World,
    hosting_asns: Sequence[int],
    config: Optional[PopulationConfig] = None,
    *,
    rng_label: str = "population",
) -> List[WebSite]:
    """Fill the world with a synthetic website population.

    Sites are spread round-robin-with-jitter across ``hosting_asns`` and
    registered in world DNS. Returns the created sites in creation order.
    """
    if not hosting_asns:
        raise ValueError("need at least one hosting AS")
    config = config or PopulationConfig()
    rng = derive_rng(world.seed, rng_label)
    synthesizer = DomainSynthesizer(rng)
    for domain in world.websites:
        synthesizer.reserve(domain)

    classes = list(config.class_mix)
    weights = [config.class_mix[c] for c in classes]
    cctlds = sorted(world.countries)
    sites: List[WebSite] = []
    for _index in range(config.site_count):
        content_class = rng.choices(classes, weights=weights, k=1)[0]
        if cctlds and rng.random() < config.local_tld_fraction:
            tld = rng.choice(cctlds)
        else:
            tld = rng.choice(_TLD_CHOICES)
        domain = synthesizer.filler(tld)
        asn = rng.choice(list(hosting_asns))
        site = world.register_website(domain, content_class, asn)
        site.add_page(
            "/", ok_response(domain, _page_body(content_class, domain))
        )
        sites.append(site)
    return sites


# --------------------------------------------------------------------------
# Sharded lazy population (internet-scale scans)
# --------------------------------------------------------------------------

#: First address of the sharded host space (100.0.0.0/8): disjoint from
#: the scenario pool (20.0.0.0/6) and the builder pool (24.0.0.0/6), so
#: synthetic scan targets can never collide with world hosts.
SHARDED_ADDRESS_BASE = 100 << 24

#: One /8 of room — the hard ceiling on ``host_count``.
SHARDED_ADDRESS_CAPACITY = 1 << 24

#: Private-use AS number range the synthetic ASN universe draws from.
SHARDED_ASN_BASE = 64512

#: Marker every genuine product console banner carries; the validation
#: stage requires it, which is what rejects keyword-colliding decoys.
CONSOLE_MARKER = "deployment console ready"

#: Server strings for background (non-product) hosts. None may contain
#: a registry keyword, or the false-positive rate stops being the
#: decoys' job.
_BACKGROUND_SERVERS = (
    "nginx/1.4.1",
    "Apache/2.2.22 (Unix)",
    "Microsoft-IIS/6.0",
    "lighttpd/1.4.28",
    "squid/3.1.10",
)

#: ccTLD spread for scanner-side geolocation tags, weighted toward the
#: paper's study region by listing its codes first (selection is
#: uniform; the tuple just fixes the universe).
_DEFAULT_SCAN_COUNTRIES = (
    "ae", "ye", "qa", "kw", "sa", "bh", "om", "eg", "tn", "sy",
    "in", "pk", "id", "tr", "ma", "us", "gb", "de", "ca", "fr",
)

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a cheap, platform-stable 64-bit mixer.

    Host generation needs a few uniform draws per host at million-host
    scale; SHA-256 per host would dominate the scan's CPU budget, while
    this stays in small-int arithmetic. Determinism across Python
    versions holds because only integer ops are involved.
    """
    value &= _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def _draw(seed: int, index: int, salt: int) -> int:
    """One 64-bit draw addressed by (seed, host index, purpose salt)."""
    return _mix64(
        seed * 0x9E3779B97F4A7C15
        + index * 0xD1B54A32D192ED03
        + salt * 0x8CB92BA72F3D8DD7
        + 0x2545F4914F6CDD1D
    )


@dataclass(frozen=True)
class ShardedPopulationConfig:
    """Knobs for the lazy sharded host population.

    ``shard_count`` controls build partitioning only — it is excluded
    from :meth:`identity` because host content must be (and is)
    invariant to it. ``install_rate``/``decoy_rate`` are per-host
    probabilities: installs answer with a genuine product console
    banner, decoys carry a product keyword without the console marker
    (the false positives §3.2 validates away).
    """

    host_count: int = 100_000
    shard_count: int = 16
    install_rate: float = 0.012
    decoy_rate: float = 0.02
    country_codes: Tuple[str, ...] = _DEFAULT_SCAN_COUNTRIES
    asn_count: int = 512
    products: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.host_count < 0:
            raise ValueError("host_count must be >= 0")
        if self.host_count > SHARDED_ADDRESS_CAPACITY:
            raise ValueError(
                f"host_count exceeds the /8 host space "
                f"({SHARDED_ADDRESS_CAPACITY})"
            )
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        for name in ("install_rate", "decoy_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.install_rate + self.decoy_rate > 1.0:
            raise ValueError("install_rate + decoy_rate must be <= 1")
        if not self.country_codes:
            raise ValueError("country_codes must not be empty")
        if self.asn_count < 1:
            raise ValueError("asn_count must be >= 1")

    def identity(self) -> Dict[str, object]:
        """The content-determining knobs (deliberately not shard_count)."""
        return {
            "host_count": self.host_count,
            "install_rate": self.install_rate,
            "decoy_rate": self.decoy_rate,
            "country_codes": list(self.country_codes),
            "asn_count": self.asn_count,
            "products": (
                None if self.products is None else list(self.products)
            ),
        }

    @classmethod
    def from_identity(
        cls,
        identity: Mapping[str, object],
        *,
        shard_count: int = 16,
    ) -> "ShardedPopulationConfig":
        """Rebuild a config from a persisted :meth:`identity` document.

        Coordination layers durably record ``identity()`` (not the
        config object) because identity is exactly the set of knobs
        host content depends on; ``shard_count`` is execution policy
        and is supplied separately. Round-trips exactly::

            cls.from_identity(cfg.identity(), shard_count=cfg.shard_count)
            == cfg

        Raises ``ValueError`` on unknown or missing keys so a worker
        attaching to a coordinator written by an incompatible version
        fails loudly instead of scanning a subtly different world.
        """
        expected = {
            "host_count",
            "install_rate",
            "decoy_rate",
            "country_codes",
            "asn_count",
            "products",
        }
        unknown = sorted(set(identity) - expected)
        if unknown:
            raise ValueError(f"unknown identity keys: {unknown}")
        missing = sorted(expected - set(identity))
        if missing:
            raise ValueError(f"missing identity keys: {missing}")
        products = identity["products"]
        return cls(
            host_count=int(identity["host_count"]),  # type: ignore[call-overload]
            shard_count=shard_count,
            install_rate=float(identity["install_rate"]),  # type: ignore[arg-type]
            decoy_rate=float(identity["decoy_rate"]),  # type: ignore[arg-type]
            country_codes=tuple(identity["country_codes"]),  # type: ignore[arg-type]
            asn_count=int(identity["asn_count"]),  # type: ignore[call-overload]
            products=None if products is None else tuple(products),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SyntheticHost:
    """One lazily generated scan target (plain data, picklable)."""

    index: int
    ip: int  # raw IPv4 value; `address` wraps it on demand
    port: int
    country_code: str
    asn: int
    banner: str
    product: Optional[str] = None
    keyword: Optional[str] = None

    @property
    def host_id(self) -> str:
        """Globally unique host identifier (index-addressed)."""
        return f"host-{self.index}"

    @property
    def address(self) -> Ipv4Address:
        return Ipv4Address(self.ip)

    @property
    def is_install(self) -> bool:
        return self.product is not None


@dataclass(frozen=True)
class _ProductProfile:
    """Registry-derived banner ingredients for one product (picklable)."""

    name: str
    keyword: str  # primary Shodan keyword, quotes stripped
    port: int
    all_keywords: Tuple[str, ...]


def _product_profiles(
    products: Optional[Tuple[str, ...]],
) -> Tuple[_ProductProfile, ...]:
    """Build per-product banner profiles from the registry.

    Imported lazily: ``repro.world`` loads this module at package init,
    and a top-level registry import would close the world <-> products
    import cycle.
    """
    from repro.products.registry import default_registry

    profiles = []
    for spec in default_registry().resolve(
        None if products is None else list(products)
    ):
        keywords = tuple(kw.strip('"') for kw in spec.shodan_keywords)
        port = spec.probe_endpoints[0][0] if spec.probe_endpoints else 8080
        profiles.append(
            _ProductProfile(
                name=spec.name,
                keyword=keywords[0],
                port=port,
                all_keywords=keywords,
            )
        )
    return tuple(profiles)


class ShardedPopulation:
    """A lazy host population generated shard-by-shard from ``(seed, k)``.

    Every host attribute is a pure function of ``(seed, global index)``
    via counter-based hashing — no sequential RNG stream — so any index
    range can be generated independently, in any order, on any process.
    Shards are contiguous, balanced index ranges; ``shard(k)`` in
    isolation equals the same slice of a full build by construction.
    """

    def __init__(
        self, seed: int, config: Optional[ShardedPopulationConfig] = None
    ) -> None:
        self.seed = seed
        self.config = config or ShardedPopulationConfig()
        self._profiles = _product_profiles(self.config.products)

    def __len__(self) -> int:
        return self.config.host_count

    @property
    def shard_count(self) -> int:
        return self.config.shard_count

    def identity(self) -> Dict[str, object]:
        """What scan output is a function of: seed + content knobs."""
        return {"seed": self.seed, "population": self.config.identity()}

    # ---------------------------------------------------------- sharding
    def shard_bounds(self, shard: int) -> Tuple[int, int]:
        """The contiguous ``[start, stop)`` index range of one shard."""
        count = self.config.shard_count
        if not 0 <= shard < count:
            raise IndexError(f"shard {shard} out of range [0, {count})")
        base, extra = divmod(self.config.host_count, count)
        start = shard * base + min(shard, extra)
        stop = start + base + (1 if shard < extra else 0)
        return start, stop

    def iter_shard(self, shard: int) -> Iterator[SyntheticHost]:
        start, stop = self.shard_bounds(shard)
        return self.iter_range(start, stop)

    def shard(self, shard: int) -> List[SyntheticHost]:
        return list(self.iter_shard(shard))

    def iter_range(self, start: int, stop: int) -> Iterator[SyntheticHost]:
        if start < 0 or stop > self.config.host_count:
            raise IndexError(
                f"range [{start}, {stop}) outside population "
                f"[0, {self.config.host_count})"
            )
        for index in range(start, stop):
            yield self.host_at(index)

    def iter_hosts(self) -> Iterator[SyntheticHost]:
        return self.iter_range(0, self.config.host_count)

    # --------------------------------------------------------- generation
    def raw_at(
        self, index: int
    ) -> Tuple[int, int, int, str, int, str, Optional[str], Optional[str]]:
        """Host ``index`` as a plain tuple — the million-host hot path.

        Returns ``(index, ip, port, country, asn, banner, product,
        keyword)``; the scan engine works from this directly to avoid
        paying frozen-dataclass construction per background host.
        """
        config = self.config
        if not 0 <= index < config.host_count:
            raise IndexError(f"host index {index} out of range")
        seed = self.seed
        role_word = _draw(seed, index, 1)
        geo_word = _draw(seed, index, 2)
        pick_word = _draw(seed, index, 3)
        country = config.country_codes[geo_word % len(config.country_codes)]
        asn = SHARDED_ASN_BASE + (geo_word >> 16) % config.asn_count
        ip = SHARDED_ADDRESS_BASE + index
        fraction = role_word / 18446744073709551616.0  # / 2**64
        profiles = self._profiles
        if profiles and fraction < config.install_rate:
            profile = profiles[pick_word % len(profiles)]
            banner = (
                f"HTTP/1.1 200 OK\nServer: {profile.keyword}\n"
                f"Content-Type: text/html\n"
                f"{profile.keyword} {CONSOLE_MARKER}"
            )
            return (
                index, ip, profile.port, country, asn, banner,
                profile.name, profile.keyword,
            )
        if profiles and fraction < config.install_rate + config.decoy_rate:
            profile = profiles[pick_word % len(profiles)]
            keywords = profile.all_keywords
            keyword = keywords[(pick_word >> 32) % len(keywords)]
            server = _BACKGROUND_SERVERS[
                (pick_word >> 48) % len(_BACKGROUND_SERVERS)
            ]
            banner = (
                f"HTTP/1.1 200 OK\nServer: {server}\n"
                f"Content-Type: text/html\n"
                f"surplus {keyword} unit price list"
            )
            return (index, ip, 80, country, asn, banner, None, None)
        server = _BACKGROUND_SERVERS[pick_word % len(_BACKGROUND_SERVERS)]
        banner = (
            f"HTTP/1.1 200 OK\nServer: {server}\n"
            f"Content-Type: text/html\nwelcome index page"
        )
        return (index, ip, 80, country, asn, banner, None, None)

    def host_at(self, index: int) -> SyntheticHost:
        """Generate host ``index`` — pure in (seed, index, config)."""
        (
            index, ip, port, country, asn, banner, product, keyword
        ) = self.raw_at(index)
        return SyntheticHost(
            index=index,
            ip=ip,
            port=port,
            country_code=country,
            asn=asn,
            banner=banner,
            product=product,
            keyword=keyword,
        )


def shard_bounds_for(
    host_count: int, shard_count: int, shard: int
) -> Tuple[int, int]:
    """Balanced contiguous bounds, reusable without a population object."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if not 0 <= shard < shard_count:
        raise IndexError(f"shard {shard} out of range [0, {shard_count})")
    base, extra = divmod(host_count, shard_count)
    start = shard * base + min(shard, extra)
    stop = start + base + (1 if shard < extra else 0)
    return start, stop


def populate_sharded(
    world: World,
    hosting_asns: Sequence[int],
    config: Optional[PopulationConfig] = None,
    *,
    shard_count: int,
    shards: Optional[Iterable[int]] = None,
    rng_label: str = "population",
) -> List[WebSite]:
    """Fill a world with websites generated shard-by-shard.

    Each shard draws from its own ``derive_rng(seed, label, shard-k)``
    stream with a fresh domain synthesizer, so shard *k*'s domain/class/
    AS choices depend only on ``(seed, k)`` — a partial build (``shards``
    selects which) produces exactly the same sites for those shards as
    a full build does. Domains are shard-qualified (``name-sK.tld``) so
    cross-shard uniqueness is structural, not coordinated. IP addresses
    still come from the world's sequential AS pools, so isolation
    equality covers (domain, class, ASN) — the generation choices — not
    the allocator cursor.
    """
    if not hosting_asns:
        raise ValueError("need at least one hosting AS")
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    config = config or PopulationConfig()
    wanted = sorted(set(shards)) if shards is not None else range(shard_count)
    classes = list(config.class_mix)
    weights = [config.class_mix[c] for c in classes]
    cctlds = sorted(world.countries)
    asn_list = list(hosting_asns)
    sites: List[WebSite] = []
    for shard in wanted:
        start, stop = shard_bounds_for(config.site_count, shard_count, shard)
        rng = derive_rng(world.seed, rng_label, f"shard-{shard}")
        synthesizer = DomainSynthesizer(rng)
        for _index in range(start, stop):
            content_class = rng.choices(classes, weights=weights, k=1)[0]
            if cctlds and rng.random() < config.local_tld_fraction:
                tld = rng.choice(cctlds)
            else:
                tld = rng.choice(_TLD_CHOICES)
            name, _, tld = synthesizer.filler(tld).partition(".")
            domain = f"{name}-s{shard}.{tld}"
            asn = rng.choice(asn_list)
            site = world.register_website(domain, content_class, asn)
            site.add_page(
                "/", ok_response(domain, _page_body(content_class, domain))
            )
            sites.append(site)
    return sites

"""Synthetic website population.

Builds the background web the study operates against: thousands of sites
spread over hosting ASes, each with a ground-truth content class. Vendor
databases pre-categorize a (vendor-specific) fraction of the population,
mirroring how real products ship large pre-categorized URL databases
(§2.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.net.http import ok_response
from repro.world.content import ContentClass
from repro.world.rng import derive_rng
from repro.world.words import SYLLABLES, WORDS_A, WORDS_B
from repro.world.world import World
from repro.world.entities import WebSite

# Relative frequency of content classes in the synthetic web. Sensitive
# classes are rarer than everyday content, as on the real web.
DEFAULT_CLASS_MIX: Dict[ContentClass, float] = {
    ContentClass.NEWS: 8.0,
    ContentClass.SHOPPING: 8.0,
    ContentClass.TECHNOLOGY: 7.0,
    ContentClass.ENTERTAINMENT: 7.0,
    ContentClass.SPORTS: 5.0,
    ContentClass.EDUCATION: 5.0,
    ContentClass.HEALTH: 4.0,
    ContentClass.BENIGN: 10.0,
    ContentClass.SOCIAL_MEDIA: 3.0,
    ContentClass.GOVERNMENT: 2.0,
    ContentClass.RELIGION_MAINSTREAM: 2.0,
    ContentClass.SEARCH_ENGINE: 1.0,
    ContentClass.EMAIL_PROVIDER: 1.0,
    ContentClass.HOSTING_SERVICE: 1.5,
    ContentClass.TRANSLATION: 0.5,
    ContentClass.PROXY_ANONYMIZER: 2.0,
    ContentClass.VPN_TOOLS: 1.0,
    ContentClass.PORNOGRAPHY: 4.0,
    ContentClass.ADULT_IMAGES: 1.5,
    ContentClass.DATING: 1.5,
    ContentClass.LGBT: 1.0,
    ContentClass.GAMBLING: 2.0,
    ContentClass.ALCOHOL_DRUGS: 1.0,
    ContentClass.POLITICAL_OPPOSITION: 1.0,
    ContentClass.POLITICAL_REFORM: 1.0,
    ContentClass.HUMAN_RIGHTS: 1.0,
    ContentClass.MEDIA_FREEDOM: 0.7,
    ContentClass.INDEPENDENT_MEDIA: 1.2,
    ContentClass.RELIGIOUS_CRITICISM: 0.6,
    ContentClass.MINORITY_RELIGION: 0.7,
    ContentClass.MINORITY_GROUPS: 0.7,
    ContentClass.WOMENS_RIGHTS: 0.6,
    ContentClass.MILITANT: 0.4,
    ContentClass.PHISHING: 0.8,
    ContentClass.MALWARE: 0.6,
    ContentClass.WEAPONS: 0.4,
}

_TLD_CHOICES = ["com", "net", "org", "info"]


@dataclass
class PopulationConfig:
    """Knobs for the synthetic web."""

    site_count: int = 2000
    class_mix: Dict[ContentClass, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_MIX)
    )
    local_tld_fraction: float = 0.15  # sites under a ccTLD


class DomainSynthesizer:
    """Generates unique, plausible domain names."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set = set()

    def two_word(self, tld: str = "info") -> str:
        """A "two random non-profane words" domain as used in §4.3."""
        for _attempt in range(10_000):
            name = self._rng.choice(WORDS_A) + self._rng.choice(WORDS_B)
            domain = f"{name}.{tld}"
            if domain not in self._used:
                self._used.add(domain)
                return domain
        raise RuntimeError("two-word domain space exhausted")

    def filler(self, tld: str) -> str:
        """A syllable-soup domain for the background population."""
        for _attempt in range(10_000):
            syllables = self._rng.randint(2, 4)
            name = "".join(self._rng.choice(SYLLABLES) for _ in range(syllables))
            domain = f"{name}.{tld}"
            if domain not in self._used:
                self._used.add(domain)
                return domain
        raise RuntimeError("filler domain space exhausted")

    def reserve(self, domain: str) -> None:
        """Mark an externally chosen domain as used."""
        self._used.add(domain)


def _page_body(content_class: ContentClass, domain: str) -> str:
    descriptions = {
        ContentClass.PROXY_ANONYMIZER: (
            "Browse the web anonymously. Enter a URL below to surf through "
            "our free web proxy and bypass filters."
        ),
        ContentClass.PORNOGRAPHY: "Explicit adult content. 18+ only.",
        ContentClass.ADULT_IMAGES: "Adult image gallery. 18+ only.",
        ContentClass.HUMAN_RIGHTS: (
            "Documenting human rights violations and advocating for "
            "freedom of expression."
        ),
        ContentClass.INDEPENDENT_MEDIA: "Independent news and analysis.",
        ContentClass.LGBT: "Community resources and support.",
    }
    text = descriptions.get(
        content_class, f"Welcome to {domain} ({content_class.value})."
    )
    return f"<h1>{domain}</h1><p>{text}</p>"


def populate(
    world: World,
    hosting_asns: Sequence[int],
    config: Optional[PopulationConfig] = None,
    *,
    rng_label: str = "population",
) -> List[WebSite]:
    """Fill the world with a synthetic website population.

    Sites are spread round-robin-with-jitter across ``hosting_asns`` and
    registered in world DNS. Returns the created sites in creation order.
    """
    if not hosting_asns:
        raise ValueError("need at least one hosting AS")
    config = config or PopulationConfig()
    rng = derive_rng(world.seed, rng_label)
    synthesizer = DomainSynthesizer(rng)
    for domain in world.websites:
        synthesizer.reserve(domain)

    classes = list(config.class_mix)
    weights = [config.class_mix[c] for c in classes]
    cctlds = sorted(world.countries)
    sites: List[WebSite] = []
    for _index in range(config.site_count):
        content_class = rng.choices(classes, weights=weights, k=1)[0]
        if cctlds and rng.random() < config.local_tld_fraction:
            tld = rng.choice(cctlds)
        else:
            tld = rng.choice(_TLD_CHOICES)
        domain = synthesizer.filler(tld)
        asn = rng.choice(list(hosting_asns))
        site = world.register_website(domain, content_class, asn)
        site.add_page(
            "/", ok_response(domain, _page_body(content_class, domain))
        )
        sites.append(site)
    return sites

"""Deterministic randomness discipline.

Every stochastic component derives its own :class:`random.Random` stream
from the experiment seed plus a path of names, so adding a new consumer
of randomness never perturbs the draws seen by existing ones. This is
what makes the benchmark tables stable across runs and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(seed: int, *path: str) -> int:
    """Derive a child seed from a parent seed and a name path."""
    digest = hashlib.sha256()
    digest.update(str(seed).encode("utf-8"))
    for name in path:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *path: str) -> random.Random:
    """A fresh Random stream addressed by ``seed`` and a name path."""
    return random.Random(derive_seed(seed, *path))


def stable_shuffle(items: Sequence[T], rng: random.Random) -> List[T]:
    """Return a shuffled copy without mutating the input."""
    copied = list(items)
    rng.shuffle(copied)
    return copied


def stable_sample(items: Sequence[T], k: int, rng: random.Random) -> List[T]:
    """Sample ``k`` items without replacement (ValueError if too few)."""
    if k > len(items):
        raise ValueError(f"cannot sample {k} from {len(items)} items")
    return rng.sample(list(items), k)


def weighted_choice(
    items: Iterable[T], weights: Iterable[float], rng: random.Random
) -> T:
    """Choose one item with the given relative weights."""
    item_list = list(items)
    weight_list = list(weights)
    if len(item_list) != len(weight_list):
        raise ValueError("items and weights length mismatch")
    if not item_list:
        raise ValueError("cannot choose from empty sequence")
    total = sum(weight_list)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    threshold = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(item_list, weight_list):
        cumulative += weight
        if threshold < cumulative:
            return item
    return item_list[-1]

"""The simulated Internet: registries, routing, and vantage points.

A :class:`World` owns the clock, DNS zone, address registries, ISPs,
hosts, and websites. A :class:`Vantage` binds a client address inside an
ISP (or the unfiltered lab network) to the world and implements the
:class:`repro.net.Fetcher` protocol: every request from an ISP vantage
traverses that ISP's on-path middlebox stack, which is where URL filters
act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.net.dns import DnsZone, Resolver
from repro.net.errors import NxDomain
from repro.net.fetch import FetchOutcome, FetchResult, Hop
from repro.net.http import HttpRequest
from repro.net.ip import AddressPool, Ipv4Address, Ipv4Prefix, PrefixTable
from repro.net.url import Url
from repro.world.clock import SimClock, SimTime
from repro.world.content import ContentClass
from repro.world.faults import NO_FAULTS, FaultPlan, InjectedFault
from repro.world.entities import (
    AutonomousSystem,
    Country,
    Host,
    InterceptKind,
    ISP,
    OrgKind,
    Organization,
    WebSite,
)

MAX_REDIRECTS = 8

#: Deterministic per-hop latency (ms) of the simulated path. Every
#: request/redirect exchange costs one base unit; on-path devices add
#: their :attr:`~repro.world.entities.InterceptAction.delay_ms` on top.
#: Purely model time — unrelated to the wall-clock ``link_latency`` the
#: measurement client sleeps, and never touched by chaos fault plans
#: (injected faults raise, so a fault can never masquerade as
#: throttling).
HOP_BASE_MS = 40.0


def _is_ip_literal(host: str) -> bool:
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)


class World:
    """Container and router for the whole simulated Internet."""

    def __init__(self, seed: int = 0, faults: Optional[FaultPlan] = None) -> None:
        self.seed = seed
        self.faults = faults if faults is not None else NO_FAULTS
        self.clock = SimClock()
        self.zone = DnsZone()
        self.countries: Dict[str, Country] = {}
        self.autonomous_systems: Dict[int, AutonomousSystem] = {}
        self.isps: Dict[str, ISP] = {}
        self.hosts: Dict[int, Host] = {}
        self.websites: Dict[str, WebSite] = {}
        self._pools: Dict[int, AddressPool] = {}
        self._prefix_owners = PrefixTable()
        self.lab_country: Optional[Country] = None
        self._dns_cache = None  # Optional[repro.exec.cache.MemoCache]

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear, with None) a chaos fault plan.

        Injected faults surface as :class:`repro.world.faults.InjectedFault`
        exceptions out of :meth:`fetch`, never as fetch outcomes, so the
        comparator can never mistake infrastructure noise for blocking.
        """
        self.faults = plan if plan is not None else NO_FAULTS

    def enable_dns_cache(self, cache) -> None:
        """Memoize authoritative DNS answers through ``cache``.

        ISP-level poisoning/refusal is checked before the cache, so a
        censored resolver never pollutes (or reads) the shared answers.
        Entries are invalidated whenever a host (de)registers, which is
        how §4 campaign domains appear and disappear.
        """
        self._dns_cache = cache

    # ----------------------------------------------------------- registry
    def add_country(self, code: str, name: str, region: str = "") -> Country:
        country = Country(code, name, region)
        self.countries[code] = country
        return country

    def country(self, code: str) -> Country:
        return self.countries[code]

    def add_autonomous_system(
        self,
        asn: int,
        name: str,
        org_name: str,
        kind: OrgKind,
        country: Country,
        prefixes: List[Ipv4Prefix],
    ) -> AutonomousSystem:
        if asn in self.autonomous_systems:
            raise ValueError(f"AS {asn} already registered")
        org = Organization(org_name, kind, country)
        autonomous_system = AutonomousSystem(asn, name, org, list(prefixes))
        self.autonomous_systems[asn] = autonomous_system
        for prefix in prefixes:
            self._prefix_owners.add(prefix, autonomous_system)
            if prefix.num_addresses >= 4:
                self._pools.setdefault(asn, AddressPool(prefix))
        return autonomous_system

    def add_isp(
        self,
        name: str,
        autonomous_system: AutonomousSystem,
        client_prefix: Optional[Ipv4Prefix] = None,
    ) -> ISP:
        if name in self.isps:
            raise ValueError(f"ISP {name!r} already registered")
        if client_prefix is None:
            if not autonomous_system.prefixes:
                raise ValueError(f"AS {autonomous_system.asn} has no prefixes")
            client_prefix = autonomous_system.prefixes[0]
        isp = ISP(name, autonomous_system, client_prefix)
        self.isps[name] = isp
        return isp

    def allocate_ip(self, asn: int) -> Ipv4Address:
        """Allocate a fresh host address from an AS's pool."""
        pool = self._pools.get(asn)
        if pool is None:
            raise KeyError(f"AS {asn} has no address pool")
        return pool.allocate()

    def add_host(self, host: Host) -> Host:
        self.hosts[host.ip.value] = host
        if host.hostname:
            self.zone.register(host.hostname, host.ip)
            self._invalidate_dns(host.hostname)
        return host

    def remove_host(self, ip: Ipv4Address) -> None:
        host = self.hosts.pop(ip.value, None)
        if host is not None and host.hostname:
            self.zone.unregister(host.hostname)
            self._invalidate_dns(host.hostname)

    def _invalidate_dns(self, hostname: str) -> None:
        if self._dns_cache is not None:
            self._dns_cache.invalidate(hostname.lower().rstrip("."))

    def host_at(self, ip: Ipv4Address) -> Optional[Host]:
        return self.hosts.get(ip.value)

    def register_website(
        self,
        domain: str,
        content_class: ContentClass,
        hosting_asn: int,
        title: str = "",
        language: str = "en",
    ) -> WebSite:
        """Register a new website hosted in ``hosting_asn`` (DNS + host)."""
        if domain in self.websites:
            raise ValueError(f"domain {domain!r} already registered")
        ip = self.allocate_ip(hosting_asn)
        site = WebSite(domain, content_class, ip, title=title, language=language)
        self.websites[domain] = site
        self.add_host(site.as_host())
        return site

    def unregister_website(self, domain: str) -> None:
        site = self.websites.pop(domain, None)
        if site is not None:
            self.remove_host(site.ip)

    # --------------------------------------------------------- durability
    def capture_state(self, baseline_domains: frozenset) -> dict:
        """Plain-data world delta for study checkpoints.

        The world itself is deliberately unpicklable (noise hosts and
        vendor infrastructure are closures), so checkpoints capture the
        *difference* from a freshly built scenario: the clock position,
        campaign-registered websites (the §4 test domains persist for
        the life of the study), removed baseline domains, and the
        per-AS address-pool cursors that allocated the campaign IPs.
        """
        return {
            "clock": self.clock.now.minutes,
            "pools": {asn: pool._next for asn, pool in self._pools.items()},
            "added_sites": [
                self.websites[domain]
                for domain in self.websites
                if domain not in baseline_domains
            ],
            "removed_domains": sorted(
                domain
                for domain in baseline_domains
                if domain not in self.websites
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply a captured delta onto a freshly built world.

        Order matters: pool cursors first (adopted sites carry their
        already-allocated IPs and must not re-allocate), then site
        adoption/removal (which fixes DNS), then the clock — restored
        without tick callbacks, because every queue the ticks would
        mature is restored to its exact captured state separately.
        """
        for asn, cursor in state["pools"].items():
            pool = self._pools.get(asn)
            if pool is not None:
                pool._next = cursor
        for domain in state["removed_domains"]:
            self.unregister_website(domain)
        for site in state["added_sites"]:
            self.adopt_website(site)
        self.clock.restore(SimTime(state["clock"]))

    def adopt_website(self, site: WebSite) -> WebSite:
        """Install an already-allocated website (checkpoint restore)."""
        if site.domain in self.websites:
            raise ValueError(f"domain {site.domain!r} already registered")
        self.websites[site.domain] = site
        self.add_host(site.as_host())
        return site

    def owner_of(self, address: Ipv4Address) -> Optional[AutonomousSystem]:
        """Ground-truth AS owning an address (registries may have errors)."""
        owner = self._prefix_owners.lookup(address)
        return owner if isinstance(owner, AutonomousSystem) else None

    def country_of(self, address: Ipv4Address) -> Optional[Country]:
        owner = self.owner_of(address)
        return owner.country if owner else None

    def all_websites(self) -> Iterator[WebSite]:
        return iter(self.websites.values())

    # ------------------------------------------------------------ routing
    @property
    def now(self) -> SimTime:
        return self.clock.now

    def advance_days(self, days: float) -> SimTime:
        return self.clock.advance_days(days)

    def vantage(self, isp_name: str, client_index: int = 10) -> "Vantage":
        """A measurement vantage inside a named ISP (§4.1 "field")."""
        isp = self.isps[isp_name]
        return Vantage(self, isp, isp.client_ip(client_index))

    def lab_vantage(self) -> "Vantage":
        """The unfiltered lab vantage (University of Toronto in the paper)."""
        return Vantage(self, None, Ipv4Address.parse("198.51.100.7"))

    def _same_network(self, isp: Optional[ISP], host: Host) -> bool:
        """True when the vantage sits in the AS that owns the host."""
        if isp is None:
            return False
        owner = self.owner_of(host.ip)
        return owner is not None and owner.asn == isp.asn

    def _vantage_label(self, isp: Optional[ISP]) -> str:
        return isp.name if isp is not None else "lab"

    def _resolve(self, isp: Optional[ISP], hostname: str) -> Ipv4Address:
        if _is_ip_literal(hostname):
            return Ipv4Address.parse(hostname)
        key = hostname.lower().rstrip(".")
        faults = self.faults
        if isp is not None and (isp.dns_poisoned or isp.dns_refused):
            # The fault hook fires before the poisoned/refused tables so
            # a flap can hit censored names too (and before the shared
            # cache below, which must never see injected answers).
            resolver = Resolver(self.zone)
            if faults.active:
                resolver.fault_hook = lambda name: faults.dns_fault(
                    self._vantage_label(isp), name
                )
            resolver.poisoned.update(isp.dns_poisoned)
            resolver.refused.update(isp.dns_refused)
            return resolver.resolve(hostname)
        if faults.active:
            fault = faults.dns_fault(self._vantage_label(isp), key)
            if fault is not None:
                raise fault
        if self._dns_cache is not None:
            # NxDomain is never cached: a later registration must be
            # seen immediately.
            return self._dns_cache.get_or_compute(
                key, lambda: self.zone.resolve(hostname)
            )
        return self.zone.resolve(hostname)

    def fetch(
        self,
        isp: Optional[ISP],
        url: Url,
        client_ip: Optional[Ipv4Address] = None,
        *,
        follow_redirects: bool = True,
    ) -> FetchResult:
        """Fetch ``url`` from inside ``isp`` (or the open Internet if None).

        Each hop (including redirect targets) traverses the ISP's on-path
        devices, so a filter sees and can block redirect destinations too.

        Injected faults (an active :class:`~repro.world.faults.FaultPlan`)
        raise :class:`~repro.world.faults.InjectedFault` exceptions out of
        this method rather than returning failure outcomes: infrastructure
        noise is the retry layer's problem and must never reach the
        field/lab comparator disguised as a censorship signal.
        """
        faults = self.faults
        if faults.active:
            faults.raise_fetch_faults(
                self._vantage_label(isp), url.host, self.clock.now
            )
        hops: List[Hop] = []
        current = url
        elapsed = 0.0
        rst_injected = False

        def done(
            outcome: FetchOutcome, error: Optional[str] = None
        ) -> FetchResult:
            return FetchResult(
                url,
                outcome,
                hops,
                error,
                elapsed_ms=elapsed,
                rst_injected=rst_injected,
            )

        for _hop_index in range(MAX_REDIRECTS + 1):
            elapsed += HOP_BASE_MS
            try:
                destination = self._resolve(isp, current.host)
            except InjectedFault:
                raise
            except NxDomain as exc:
                return done(FetchOutcome.DNS_FAILURE, str(exc))
            request = HttpRequest.get(current, client_ip)
            response = None
            if isp is not None:
                for device in isp.devices:
                    action = device.intercept(request, self.clock.now)
                    elapsed += action.delay_ms
                    if action.kind is InterceptKind.PASS:
                        continue
                    if action.kind is InterceptKind.RESET:
                        return done(FetchOutcome.TCP_RESET, "connection reset")
                    if action.kind is InterceptKind.DROP:
                        return done(FetchOutcome.TIMEOUT, "connection timed out")
                    if action.kind is InterceptKind.TLS_RESET:
                        return done(
                            FetchOutcome.TLS_RESET, "tls handshake reset"
                        )
                    if action.kind is InterceptKind.RST_INJECT:
                        # The injected RST lost the race with the origin's
                        # content: record the wire evidence, keep going.
                        rst_injected = True
                        continue
                    response = action.response
                    break
            if response is None:
                host = self.hosts.get(destination.value)
                if host is None:
                    return done(
                        FetchOutcome.UNREACHABLE, f"no route to {destination}"
                    )
                if host.internal_only and not self._same_network(isp, host):
                    return done(
                        FetchOutcome.UNREACHABLE,
                        f"{destination} not externally reachable",
                    )
                response = host.serve(request)
                if isp is not None:
                    # Proxies on the return path may annotate responses
                    # (Via headers etc.) — the signal Netalyzr-style
                    # fingerprinting reads.
                    for device in isp.devices:
                        annotate = getattr(device, "annotate_response", None)
                        if annotate is not None:
                            response = annotate(request, response)
            hops.append(Hop(request, response))
            if not (follow_redirects and response.is_redirect):
                return done(FetchOutcome.OK)
            location = response.location or ""
            try:
                if "://" in location:
                    current = Url.parse(location)
                elif location.startswith("/"):
                    current = current.with_path(location)
                else:
                    return done(FetchOutcome.OK)
            except Exception:
                return done(FetchOutcome.OK)
        return done(FetchOutcome.TOO_MANY_REDIRECTS, "redirect loop")


@dataclass
class Vantage:
    """A client location bound to the world; implements the Fetcher protocol."""

    world: World
    isp: Optional[ISP]
    client_ip: Ipv4Address

    def fetch(self, url: Url, *, follow_redirects: bool = True) -> FetchResult:
        return self.world.fetch(
            self.isp, url, self.client_ip, follow_redirects=follow_redirects
        )

    @property
    def location(self) -> str:
        if self.isp is None:
            return "lab"
        return str(self.isp)

    @property
    def is_lab(self) -> bool:
        return self.isp is None

"""Fluent builder for custom worlds.

``build_scenario()`` gives you the paper's world; this builder is for
everyone else — construct your own countries, ISPs, product deployments
and populations with a few chained calls, and get back a
:class:`CustomScenario` exposing the same handles the IMC'13 scenario
does, so every pipeline in :mod:`repro.core` runs unchanged against it.

Example::

    scenario = (
        WorldBuilder(seed=7)
        .country("xx", "Examplestan", region="Test")
        .country("ca", "Canada", region="North America")
        .hosting_as(65100, "HOSTCO", "Host Co", "ca")
        .isp("examplenet", 65000, "EXAMPLENET", "Examplestan Telecom", "xx",
             national=True)
        .population(300)
        .product("Netsweeper")
        .deploy("Netsweeper", "examplenet",
                blocked=["Proxy Anonymizer", "Pornography"])
        .build()
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.middlebox.deploy import deploy as _deploy
from repro.middlebox.deploy import register_vendor_infrastructure
from repro.middlebox.filter_box import FilterMiddlebox
from repro.middlebox.policy import FilterPolicy
from repro.net.ip import Ipv4Prefix, PrefixPool
from repro.products.base import UrlFilterProduct
from repro.products.licensing import LicenseModel
from repro.products.registry import default_registry
from repro.products.submission import ReviewPolicy
from repro.world.content import ContentClass
from repro.world.entities import OrgKind
from repro.world.population import (
    PopulationConfig,
    populate,
    populate_sharded,
)
from repro.world.rng import derive_rng
from repro.world.world import World


@dataclass
class CustomScenario:
    """A built custom world with the handles the pipelines expect."""

    world: World
    products: Dict[str, UrlFilterProduct]
    deployments: Dict[str, FilterMiddlebox]
    hosting_asns: List[int]

    def content_oracle(self, host: str) -> Optional[ContentClass]:
        site = self.world.websites.get(host)
        return site.content_class if site else None

    def hosting_oracle(self, host: str) -> Optional[str]:
        site = self.world.websites.get(host)
        if site is None:
            return None
        owner = self.world.owner_of(site.ip)
        return owner.name if owner else None


class WorldBuilder:
    """Chainable world construction; call :meth:`build` once at the end."""

    def __init__(
        self,
        seed: int = 0,
        *,
        address_space: str = "24.0.0.0/6",
        prefix_length: int = 16,
    ) -> None:
        self._world = World(seed=seed)
        self._pool = PrefixPool(Ipv4Prefix.parse(address_space), prefix_length)
        self._hosting_asns: List[int] = []
        self._population_size = 0
        self._population_shards: Optional[int] = None
        self._seed_coverage: Dict[str, float] = {}
        self._product_specs: List[Tuple[str, ReviewPolicy]] = []
        self._deploy_specs: List[dict] = []
        self._built = False

    # ---------------------------------------------------------- topology
    def country(self, code: str, name: str, region: str = "") -> "WorldBuilder":
        self._world.add_country(code, name, region)
        return self

    def hosting_as(
        self, asn: int, as_name: str, org_name: str, country_code: str
    ) -> "WorldBuilder":
        self._world.add_autonomous_system(
            asn, as_name, org_name, OrgKind.HOSTING,
            self._world.country(country_code), [self._pool.allocate()],
        )
        self._hosting_asns.append(asn)
        return self

    def isp(
        self,
        name: str,
        asn: int,
        as_name: str,
        org_name: str,
        country_code: str,
        *,
        national: bool = False,
        kind: Optional[OrgKind] = None,
    ) -> "WorldBuilder":
        org_kind = kind or (OrgKind.NATIONAL_ISP if national else OrgKind.ISP)
        autonomous_system = self._world.add_autonomous_system(
            asn, as_name, org_name, org_kind,
            self._world.country(country_code), [self._pool.allocate()],
        )
        self._world.add_isp(name, autonomous_system)
        return self

    # ------------------------------------------------------------ content
    def population(
        self, site_count: int, *, shards: Optional[int] = None
    ) -> "WorldBuilder":
        """Request a synthetic web of ``site_count`` sites.

        With ``shards``, generation is sharded: each shard's sites are a
        pure function of ``(seed, shard)``, so partial builds agree with
        full builds shard-for-shard (see :func:`populate_sharded`).
        """
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        self._population_size = site_count
        self._population_shards = shards
        return self

    def website(
        self, domain: str, content_class: ContentClass, hosting_asn: Optional[int] = None
    ) -> "WorldBuilder":
        if hosting_asn is None:
            if not self._hosting_asns:
                raise ValueError("declare a hosting AS before adding websites")
            hosting_asn = self._hosting_asns[0]
        self._world.register_website(domain, content_class, hosting_asn)
        return self

    # ----------------------------------------------------------- products
    def product(
        self,
        vendor: str,
        *,
        review_policy: Optional[ReviewPolicy] = None,
        db_coverage: float = 0.9,
    ) -> "WorldBuilder":
        registry = default_registry()
        if vendor not in registry:
            raise KeyError(
                f"unknown vendor {vendor!r}; choose from "
                f"{sorted(registry.names())}"
            )
        self._product_specs.append(
            (vendor, review_policy or ReviewPolicy())
        )
        self._seed_coverage[vendor] = db_coverage
        return self

    def deploy(
        self,
        vendor: str,
        isp_name: str,
        *,
        blocked: Sequence[str] = (),
        engine_vendor: Optional[str] = None,
        visible: bool = True,
        policy: Optional[FilterPolicy] = None,
        license_model: Optional[LicenseModel] = None,
        name: Optional[str] = None,
    ) -> "WorldBuilder":
        self._deploy_specs.append(
            dict(
                vendor=vendor,
                isp_name=isp_name,
                blocked=list(blocked),
                engine_vendor=engine_vendor,
                visible=visible,
                policy=policy,
                license_model=license_model,
                name=name,
            )
        )
        return self

    # -------------------------------------------------------------- build
    def build(self) -> CustomScenario:
        if self._built:
            raise RuntimeError("build() may only be called once")
        self._built = True
        world = self._world
        if not self._hosting_asns and (
            self._population_size or self._deploy_specs
        ):
            raise ValueError("declare at least one hosting AS")

        if self._population_size:
            config = PopulationConfig(site_count=self._population_size)
            if self._population_shards is not None:
                populate_sharded(
                    world,
                    self._hosting_asns,
                    config,
                    shard_count=self._population_shards,
                )
            else:
                populate(world, self._hosting_asns, config)

        scenario = CustomScenario(
            world=world,
            products={},
            deployments={},
            hosting_asns=list(self._hosting_asns),
        )

        registry = default_registry()
        for vendor, review_policy in self._product_specs:
            factory = registry.get(vendor).factory
            assert factory is not None, f"{vendor} spec has no factory"
            product = factory(
                scenario.content_oracle,
                derive_rng(world.seed, "custom-vendor", vendor),
                review_policy=review_policy,
                hosting_oracle=scenario.hosting_oracle,
            )
            scenario.products[vendor] = product
            world.clock.on_tick(product.tick)
            register_vendor_infrastructure(
                world, product, self._hosting_asns[0]
            )
            coverage = self._seed_coverage.get(vendor, 0.9)
            rng = derive_rng(world.seed, "custom-db-seed", vendor)
            for domain in sorted(world.websites):
                site = world.websites[domain]
                if rng.random() > coverage:
                    continue
                category = product.taxonomy.classify(site.content_class)
                if category is not None:
                    product.database.add(domain, category, world.now)

        for spec in self._deploy_specs:
            vendor = spec["vendor"]
            if vendor not in scenario.products:
                raise KeyError(
                    f"deploy({vendor!r}): declare the product first"
                )
            engine = None
            if spec["engine_vendor"] is not None:
                engine = scenario.products[spec["engine_vendor"]]
            box = _deploy(
                world,
                world.isps[spec["isp_name"]],
                scenario.products[vendor],
                spec["blocked"],
                engine=engine,
                policy=spec["policy"],
                license_model=spec["license_model"],
                externally_visible=spec["visible"],
                name=spec["name"],
            )
            scenario.deployments[box.name] = box

        from repro.measure.netalyzr import install_reference_server

        if self._hosting_asns:
            install_reference_server(world, self._hosting_asns[0])
        return scenario

"""Word lists for domain synthesis.

The confirmation methodology registers fresh domains "of two random
(non-profane) words registered with the .info top-level domain (e.g.
starwasher.info)" (§4.3). These lists feed that generator and the
website population builder. All words are deliberately neutral.
"""

from __future__ import annotations

from typing import List

# Two pools so generated names read noun-ish + noun-ish like "starwasher".
WORDS_A: List[str] = [
    "star", "moon", "river", "cloud", "stone", "maple", "cedar", "amber",
    "silver", "copper", "violet", "crimson", "golden", "winter", "summer",
    "autumn", "spring", "north", "south", "east", "west", "ocean", "desert",
    "meadow", "harbor", "garden", "forest", "valley", "canyon", "prairie",
    "island", "summit", "lantern", "beacon", "compass", "anchor", "harvest",
    "willow", "aspen", "birch", "clover", "coral", "crystal", "ember",
    "falcon", "heron", "osprey", "otter", "badger", "marten", "lynx",
    "tundra", "glacier", "breeze", "thunder", "drizzle", "sunrise", "sunset",
    "twilight", "midnight", "morning", "evening", "quartz", "granite",
    "basalt", "marble", "pepper", "saffron", "vanilla", "cinnamon", "ginger",
    "walnut", "almond", "hazel", "pecan", "orchard", "vineyard", "pasture",
]

WORDS_B: List[str] = [
    "washer", "runner", "keeper", "finder", "maker", "weaver", "builder",
    "rider", "walker", "singer", "dancer", "painter", "writer", "reader",
    "planner", "helper", "guide", "scout", "pilot", "sailor", "ranger",
    "trader", "miller", "baker", "smith", "mason", "carver", "potter",
    "tailor", "cobbler", "gardener", "farmer", "fisher", "hunter", "tracker",
    "watcher", "listener", "dreamer", "thinker", "seeker", "wanderer",
    "voyager", "explorer", "pioneer", "settler", "crafter", "printer",
    "binder", "folder", "sender", "carrier", "courier", "porter", "bridge",
    "tower", "castle", "cottage", "cabin", "lodge", "haven", "refuge",
    "shelter", "station", "depot", "junction", "crossing", "passage",
    "gateway", "archway", "terrace", "plaza", "avenue", "boulevard", "lane",
]

# Syllables for filler site names in the background population.
SYLLABLES: List[str] = [
    "an", "ar", "ba", "bel", "cor", "dan", "del", "el", "far", "gal",
    "han", "il", "jor", "kan", "kel", "lor", "mar", "mel", "nor", "or",
    "pel", "qar", "ran", "rel", "san", "sel", "tan", "tel", "ur", "van",
    "vel", "wan", "xen", "yor", "zan", "zel", "mon", "dor", "fin", "gar",
]

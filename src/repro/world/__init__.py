"""World model: simulated clock, entities, topology, and population."""

from repro.world.clock import MINUTES_PER_DAY, SimClock, SimTime
from repro.world.content import ContentClass
from repro.world.entities import (
    AutonomousSystem,
    Country,
    Host,
    InterceptAction,
    InterceptKind,
    ISP,
    OnPathDevice,
    Organization,
    OrgKind,
    WebSite,
)
from repro.world.population import (
    DEFAULT_CLASS_MIX,
    DomainSynthesizer,
    PopulationConfig,
    populate,
)
from repro.world.builder import CustomScenario, WorldBuilder
from repro.world.rng import (
    derive_rng,
    derive_seed,
    stable_sample,
    stable_shuffle,
    weighted_choice,
)
from repro.world.world import MAX_REDIRECTS, Vantage, World

__all__ = [
    "AutonomousSystem",
    "ContentClass",
    "CustomScenario",
    "WorldBuilder",
    "Country",
    "DEFAULT_CLASS_MIX",
    "DomainSynthesizer",
    "Host",
    "ISP",
    "InterceptAction",
    "InterceptKind",
    "MAX_REDIRECTS",
    "MINUTES_PER_DAY",
    "OnPathDevice",
    "Organization",
    "OrgKind",
    "PopulationConfig",
    "SimClock",
    "SimTime",
    "Vantage",
    "WebSite",
    "World",
    "derive_rng",
    "derive_seed",
    "populate",
    "stable_sample",
    "stable_shuffle",
    "weighted_choice",
]

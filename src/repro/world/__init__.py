"""World model: simulated clock, entities, topology, and population."""

from repro.world.clock import MINUTES_PER_DAY, SimClock, SimTime
from repro.world.content import ContentClass
from repro.world.entities import (
    AutonomousSystem,
    Country,
    Host,
    InterceptAction,
    InterceptKind,
    ISP,
    OnPathDevice,
    Organization,
    OrgKind,
    WebSite,
)
from repro.world.population import (
    DEFAULT_CLASS_MIX,
    DomainSynthesizer,
    PopulationConfig,
    ShardedPopulation,
    ShardedPopulationConfig,
    SyntheticHost,
    populate,
    populate_sharded,
    shard_bounds_for,
)
from repro.world.rng import (
    derive_rng,
    derive_seed,
    stable_sample,
    stable_shuffle,
    weighted_choice,
)
from repro.world.world import MAX_REDIRECTS, Vantage, World


def __getattr__(name: str):
    # The builder pulls in repro.middlebox (deployments), whose modules
    # import repro.products, whose base classes import this package —
    # importing it lazily keeps repro.world importable from either side
    # of that cycle.
    if name in ("CustomScenario", "WorldBuilder"):
        from repro.world import builder

        return getattr(builder, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AutonomousSystem",
    "ContentClass",
    "CustomScenario",
    "WorldBuilder",
    "Country",
    "DEFAULT_CLASS_MIX",
    "DomainSynthesizer",
    "Host",
    "ISP",
    "InterceptAction",
    "InterceptKind",
    "MAX_REDIRECTS",
    "MINUTES_PER_DAY",
    "OnPathDevice",
    "Organization",
    "OrgKind",
    "PopulationConfig",
    "ShardedPopulation",
    "ShardedPopulationConfig",
    "SimClock",
    "SimTime",
    "SyntheticHost",
    "Vantage",
    "WebSite",
    "World",
    "derive_rng",
    "derive_seed",
    "populate",
    "populate_sharded",
    "shard_bounds_for",
    "stable_sample",
    "stable_shuffle",
    "weighted_choice",
]

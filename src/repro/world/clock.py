"""Simulated time.

Everything time-dependent in the model — vendor review delays (§4.2's
"after 3-5 days, we retest"), Netsweeper's categorization queue, database
update pushes, the 30-day window between confirmation and content
characterization (§5) — reads from one :class:`SimClock`. Nothing in the
library reads wall-clock time, which keeps experiments reproducible.

Time is stored as integer minutes since a simulation epoch. The epoch is
nominally 2012-01-01 00:00 so that dates in the paper's Table 3 (9/2012
through 8/2013) can be expressed as calendar stamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR

_EPOCH_YEAR = 2012
_DAYS_IN_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


@dataclass(frozen=True, order=True)
class SimTime:
    """An instant in simulated time (minutes since the 2012-01-01 epoch)."""

    minutes: int

    @classmethod
    def from_days(cls, days: float) -> "SimTime":
        return cls(int(round(days * MINUTES_PER_DAY)))

    @classmethod
    def from_date(cls, year: int, month: int, day: int) -> "SimTime":
        """Build a SimTime from a calendar date at midnight."""
        if year < _EPOCH_YEAR:
            raise ValueError(f"year {year} precedes simulation epoch {_EPOCH_YEAR}")
        if not 1 <= month <= 12:
            raise ValueError(f"bad month {month}")
        days = 0
        for y in range(_EPOCH_YEAR, year):
            days += 366 if _is_leap(y) else 365
        for m in range(1, month):
            days += _DAYS_IN_MONTH[m - 1]
            if m == 2 and _is_leap(year):
                days += 1
        month_len = _DAYS_IN_MONTH[month - 1] + (
            1 if month == 2 and _is_leap(year) else 0
        )
        if not 1 <= day <= month_len:
            raise ValueError(f"bad day {day} for {year}-{month:02d}")
        days += day - 1
        return cls(days * MINUTES_PER_DAY)

    @property
    def days(self) -> float:
        return self.minutes / MINUTES_PER_DAY

    def plus_days(self, days: float) -> "SimTime":
        return SimTime(self.minutes + int(round(days * MINUTES_PER_DAY)))

    def plus_minutes(self, minutes: int) -> "SimTime":
        return SimTime(self.minutes + minutes)

    def __sub__(self, other: "SimTime") -> int:
        """Difference in minutes."""
        return self.minutes - other.minutes

    def calendar(self) -> str:
        """Render as ``YYYY-MM-DD`` for reports."""
        days = self.minutes // MINUTES_PER_DAY
        year = _EPOCH_YEAR
        while True:
            year_days = 366 if _is_leap(year) else 365
            if days < year_days:
                break
            days -= year_days
            year += 1
        month = 1
        while True:
            month_len = _DAYS_IN_MONTH[month - 1] + (
                1 if month == 2 and _is_leap(year) else 0
            )
            if days < month_len:
                break
            days -= month_len
            month += 1
        return f"{year}-{month:02d}-{days + 1:02d}"

    def __str__(self) -> str:
        return self.calendar()


class SimClock:
    """The world's single mutable clock.

    Components that need to react to the passage of time register tick
    callbacks; :meth:`advance_days` invokes them after moving the time
    forward, letting queues (vendor review, Netsweeper categorization)
    mature pending work.
    """

    def __init__(self, start: SimTime = SimTime(0)) -> None:
        self._now = start
        self._tick_callbacks: List[Callable[[SimTime], None]] = []

    @property
    def now(self) -> SimTime:
        return self._now

    def on_tick(self, callback: Callable[[SimTime], None]) -> None:
        """Register a callback invoked after every time advance."""
        self._tick_callbacks.append(callback)

    def advance_days(self, days: float) -> SimTime:
        if days < 0:
            raise ValueError("time cannot move backwards")
        return self.advance_to(self._now.plus_days(days))

    def restore(self, when: SimTime) -> SimTime:
        """Set the clock without firing tick callbacks.

        Used only by checkpoint restore: the components the callbacks
        would mature (portals, vendor queues) are restored to their
        exact captured state separately, so a tick here would replay
        maturation against times that already elapsed.
        """
        if when < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {when}"
            )
        self._now = when
        return self._now

    def advance_to(self, when: SimTime) -> SimTime:
        if when < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {when}"
            )
        self._now = when
        for callback in self._tick_callbacks:
            callback(self._now)
        return self._now
